/**
 * @file
 * Persist-timing engine: the paper's evaluation methodology
 * (Section 7, "Persist Timing Simulation").
 *
 * The engine consumes a trace (as a TraceSink) and assigns every
 * atomic persist piece a completion time that respects the ordering
 * constraints of the configured persistency model, assuming infinite
 * bandwidth and banks. The maximum assigned time is the persist
 * ordering constraint critical path: the implementation-independent
 * lower bound on how long the trace's persists must take.
 *
 * Timing propagates through thread and memory state as tagged
 * timestamps:
 *
 *  - each thread (each strand, under strand persistency) carries
 *    `epoch_dep` (persists that must precede its current-epoch
 *    persists) and `accum_dep` (dependences observed during the
 *    current epoch, folded into epoch_dep at each persist barrier;
 *    under strict persistency the fold is immediate);
 *  - each tracking-granularity block carries `store_tag`/`load_tag`,
 *    the persists ordered (in persistent memory order) before the
 *    last conflicting store/load of that block;
 *  - each atomic-granularity block carries the time of its last
 *    persist, implementing strong persist atomicity and coalescing:
 *    a persist coalesces iff its dependences complete strictly before
 *    the block's previous persist.
 *
 * Two clocks are provided: discrete levels (critical path counted in
 * units of persist latency; coalescing-optimistic best case used for
 * the paper's results) and a stochastic clock (each persist adds an
 * exponential delay), which yields a random realization of persist
 * completion times used for failure injection in src/recovery/.
 *
 * Hot-path layout (DESIGN.md Section 11): tags are 40-byte PODs, and
 * per-block state lives in struct-of-arrays banks backed by a common
 * Arena and indexed through ShardedIndexMap, so steady-state replay
 * performs no per-event heap allocation and no node-based hash
 * walks. When tracking and atomic granularity coincide (the default)
 * the two banks share one index and each persist piece costs a
 * single hash probe. Dependence-id sets (record_deps only) live in
 * an arena-backed DepSetPool referenced by 32-bit handles instead of
 * shared_ptr-counted vectors. Log records are staged in a fixed POD
 * buffer and appended to the PersistLog in batches. All of this is
 * bit-identical to the original scalar formulation — asserted by
 * tests/persistency/golden_replay_test.cc against frozen
 * pre-refactor outputs.
 */

#ifndef PERSIM_PERSISTENCY_TIMING_ENGINE_HH
#define PERSIM_PERSISTENCY_TIMING_ENGINE_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "common/arena.hh"
#include "common/flat_map.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "memtrace/sink.hh"
#include "persistency/model.hh"
#include "persistency/persist_log.hh"

namespace persim {

class AnalysisPlugin;
struct AccessInfo;
struct FlushInfo;
enum class FenceEvent : std::uint8_t;

/** How persist completion times advance. */
enum class ClockMode : std::uint8_t {
    /** Discrete levels: each non-coalesced persist is +1. */
    Levels,
    /** Each non-coalesced persist adds Exp(mean) random latency. */
    Stochastic,
};

/**
 * Test-only engine fault injection: deliberately broken variants used
 * to prove the differential fuzzer and golden tests can actually
 * detect an engine bug (ISSUE 4). Never enable outside tests.
 */
enum class EngineMutant : std::uint8_t {
    None = 0,

    /**
     * Persist barriers do not fold accum_dep into epoch_dep: epoch
     * and strand persistency lose all inter-epoch ordering and keep
     * only conflict/atomicity order. Caught by the golden tests
     * (frozen critical paths change) and by the differential fuzzer
     * (on strand-free programs epoch must equal strand exactly).
     */
    ElideEpochBarrier,
};

/** Timing engine configuration. */
struct TimingConfig
{
    ModelConfig model;

    ClockMode clock = ClockMode::Levels;

    /** Seed for the stochastic clock. */
    std::uint64_t seed = 1;

    /** Mean persist latency (stochastic clock), in latency units. */
    double mean_latency = 1.0;

    /** Record a PersistRecord per atomic persist piece. */
    bool record_log = false;

    /**
     * Record each persist's complete direct-dependence set
     * (PersistRecord::deps), not just the binding argmax. The scalar
     * analysis keeps only the latest dependence per state because
     * only the max matters for timing; exhaustive crash-state
     * enumeration needs every constraint edge. Implies the cost of
     * carrying id sets through every tag merge — enable it only for
     * bounded model-checking runs, not the big sweeps. Requires
     * record_log.
     */
    bool record_deps = false;

    /**
     * Detect persist-epoch races (paper Section 5.2): alongside the
     * model analysis, a shadow propagation tracks, per thread, the
     * latest *foreign* persist that precedes the thread's execution
     * in SC volatile memory order (through any chain of conflicting
     * accesses). A persist whose model constraints do not cover that
     * foreign persist is "astonishingly" unordered with it despite
     * the program's synchronization — a persist-epoch race. The
     * conservative barrier discipline produces none; racing-epoch
     * and strand annotations produce them intentionally.
     */
    bool detect_races = false;

    /**
     * Coalescing window in issued persists (0 = unbounded). With
     * finite persist buffering, a pending persist eventually drains
     * to the device and can no longer absorb writes; this models that
     * by forbidding coalescing with a pending persist once more than
     * `coalesce_window` persists have been issued since that pending
     * persist was first created. The paper's best-case measure
     * corresponds to 0 (unbounded).
     */
    std::uint64_t coalesce_window = 0;

    /** Deliberate engine breakage for harness validation (tests). */
    EngineMutant mutant = EngineMutant::None;

    /**
     * Analysis plugins notified at persist/flush/fence/access and
     * end-of-trace boundaries (analysis_plugin.hh). Non-owning: the
     * plugins must outlive the engine. An empty list costs one
     * untaken branch per hook site.
     */
    std::vector<AnalysisPlugin *> plugins;
};

/** Aggregate results of one timing analysis. */
struct TimingResult
{
    /** Persist ordering constraint critical path (max persist time). */
    double critical_path = 0.0;

    /** Atomic persist pieces assigned a time (incl. coalesced). */
    std::uint64_t persists = 0;

    /** Pieces that coalesced into a previous persist. */
    std::uint64_t coalesced = 0;

    /** Coalescing attempts rejected by the finite window. */
    std::uint64_t window_blocked = 0;

    /** Persist-epoch races (persists unordered with an SC-preceding
        foreign persist); requires TimingConfig::detect_races. */
    std::uint64_t races = 0;

    /** Operations completed (OpEnd markers). */
    std::uint64_t ops = 0;

    /** Total trace events consumed. */
    std::uint64_t events = 0;

    /** Persist barriers seen. */
    std::uint64_t barriers = 0;

    /** NewStrand events seen. */
    std::uint64_t strands = 0;

    /** clflush/clflushopt/clwb events seen (Px86 persists them). */
    std::uint64_t flushes = 0;

    /** sfence/mfence events seen. */
    std::uint64_t fences = 0;

    /** Px86 only: dirty pieces still unflushed at end of trace —
        stores that never became durable because no flush covered
        them. Always 0 under the SC-persistency models. */
    std::uint64_t unflushed = 0;

    /** Average critical path per completed operation. */
    double criticalPathPerOp() const;
};

/** Streaming persist-timing analysis for one persistency model. */
class PersistTimingEngine : public TraceSink
{
  public:
    explicit PersistTimingEngine(const TimingConfig &config);

    void onEvent(const TraceEvent &event) override;
    void onBatch(const TraceEvent *events, std::size_t count) override;
    void onFinish() override;

    const TimingConfig &config() const { return config_; }
    const TimingResult &result() const { return result_; }

    /** One example persist-epoch race. */
    struct RaceSample
    {
        SeqNum seq = 0;          //!< Trace position of the racy persist.
        ThreadId thread = 0;     //!< Thread issuing it.
        PersistId persist = invalid_persist;
        PersistId foreign = invalid_persist; //!< The persist it races.
    };

    /** Up to 16 example races (requires detect_races). */
    const std::vector<RaceSample> &raceSamples() const
    {
        return race_samples_;
    }

    /** The persist log; empty unless record_log was set. */
    const PersistLog &log() const
    {
        flushStage();
        materializeDeferred();
        return log_;
    }

    /** Move the log out (for handing to recovery analyses). */
    PersistLog takeLog()
    {
        flushStage();
        materializeDeferred();
        return std::move(log_);
    }

  private:
    /**
     * Intra-trace parallel replay (segment_replay.cc) compiles trace
     * segments into micro-ops in parallel, then executes them through
     * this engine's own piece handlers in serial trace order so the
     * results stay bit-identical to plain replay.
     */
    friend class SegmentReplayer;

    /**
     * Compiled-trace replay (compiled_replay.cc) executes persisted
     * micro-op columns straight out of an mmap through the inline
     * handlers below, with every slot pre-resolved at compile time.
     */
    friend class CompiledReplayer;

    /** Handle into the DepSetPool; 0 is the empty set. */
    using DepSetRef = std::uint32_t;

    /**
     * Tagged timestamp summarizing a set of persist dependences.
     *
     * `t`/`src`/`block` identify the latest dependence: its time, a
     * witness persist id, and the atomic block of the coalescing
     * group it belongs to (a group is all persists that merged into
     * one atomic persist: same block, same time). `oth` is the
     * maximum time of dependences *outside* that group.
     *
     * The distinction drives exact coalescing: a persist may merge
     * into its block's pending persist iff every dependence outside
     * that pending group completes strictly earlier — i.e. dep.t is
     * below the pending time, or the top dependence *is* the pending
     * group itself and dep.oth is below it. This is what lets strict
     * persistency benefit from large atomic persists (Figure 4): a
     * serialized sequence of stores into one block collapses into a
     * single atomic persist, while a dependence on a concurrent
     * persist in another block correctly blocks the merge.
     *
     * Trivially copyable on purpose: tags are merged and copied on
     * the hottest path, and `deps` (the full dependence-id set,
     * record_deps only) is a pool handle rather than a shared_ptr.
     */
    struct Tag
    {
        double t = 0.0;
        double oth = 0.0;
        PersistId src = invalid_persist;
        std::uint64_t block = ~0ULL;
        DepSetRef deps = 0;
    };

    /**
     * Immutable sorted persist-id sets, stored as spans in one
     * arena-backed id array and referenced by dense handles. Sets are
     * never freed individually (the pool lives exactly as long as one
     * analysis), matching the shared immutable-vector semantics of
     * the original formulation without per-merge refcount traffic.
     */
    class DepSetPool
    {
      public:
        explicit DepSetPool(Arena &arena) : ids_(arena)
        {
            spans_.push_back(Span{0, 0}); // ref 0 = the empty set
        }

        DepSetRef singleton(PersistId id)
        {
            const std::uint64_t off = ids_.appendSpan(&id, 1);
            spans_.push_back(Span{off, 1});
            return static_cast<DepSetRef>(spans_.size() - 1);
        }

        /** Sorted-unique union (standing in for unionDeps). */
        DepSetRef unionOf(DepSetRef a, DepSetRef b);

        const PersistId *data(DepSetRef ref) const
        {
            return ids_.data() + spans_[ref].off;
        }

        std::uint32_t size(DepSetRef ref) const
        {
            return spans_[ref].len;
        }

      private:
        struct Span
        {
            std::uint64_t off;
            std::uint32_t len;
        };

        ArenaVector<PersistId> ids_;
        std::vector<Span> spans_;
        std::vector<PersistId> scratch_;
    };

    /** Per-thread (per-strand) persistency state. */
    struct ThreadState
    {
        Tag epoch_dep;
        Tag accum_dep;
        std::uint64_t op = no_operation;
        PersistRole role = PersistRole::None;
        /** Shadow: latest foreign persist SC-ordered before here. */
        Tag shadow;
        /** Latest persist time this thread itself issued. */
        Tag own_persist;
        /** Px86: persists of the thread's clflushes — strongly
            ordered before its younger stores and flushes; folded into
            epoch_dep at fences (weak flushes go to accum_dep). */
        Tag strong_dep;
        /** Px86: atomic slots this thread dirtied since its last
            persist barrier (so barriers can replay as flush-all +
            sfence, the canonical epoch->x86 compilation). */
        std::vector<std::uint32_t> dirty_lines;
    };

    /** One staged (not yet published) persist-log record, POD. */
    struct StagedRecord
    {
        PersistId id;
        SeqNum seq;
        Addr addr;
        std::uint64_t value;
        double time;
        double start;
        std::uint64_t op;
        PersistId binding;
        ThreadId thread;
        DepSetRef deps;
        PersistRole role;
        DepSource binding_source;
        std::uint8_t size;
    };

    static constexpr std::size_t stage_capacity = 256;

    /**
     * Merge dependence summary @p cand into @p dst in place: the
     * result's top group is the later of the two (first wins ties
     * across distinct groups, which is conservative: a tie between
     * different groups lands in `oth` and correctly blocks
     * coalescing); everything else folds into `oth`. Merges whose
     * result equals @p dst — the candidate is a dead dependence edge,
     * dominated by what @p dst already carries — are pruned to a
     * no-op (except under record_deps, where the id sets must still
     * union).
     *
     * Defined here (not in the .cc) and force-inlined deliberately:
     * the profiler shows the merge as the single hottest call on the
     * replay path, and plain -O2 leaves it out of line.
     */
    [[gnu::always_inline]] inline void
    mergeInto(Tag &dst, const Tag &cand)
    {
        if (cand.src == invalid_persist)
            return;
        if (dst.src == invalid_persist) {
            dst = cand;
            return;
        }
        if (dst.block == cand.block && dst.t == cand.t) {
            // Same coalescing group: keep the newest witness.
            if (cand.src > dst.src)
                dst.src = cand.src;
            if (cand.oth > dst.oth)
                dst.oth = cand.oth;
            if (record_deps_)
                dst.deps = deps_.unionOf(dst.deps, cand.deps);
            return;
        }
        if (cand.t > dst.t) {
            // The candidate wins; the old top group folds into oth.
            const double oth = std::max({cand.oth, dst.t, dst.oth});
            const DepSetRef deps =
                record_deps_ ? deps_.unionOf(cand.deps, dst.deps) : 0;
            dst = cand;
            dst.oth = oth;
            dst.deps = deps;
            return;
        }
        // dst wins (first wins ties across distinct groups). When the
        // candidate raises nothing — a dead dependence edge, already
        // dominated by dst's group and oth — prune the merge entirely.
        const double oth = std::max({dst.oth, cand.t, cand.oth});
        if (record_deps_)
            dst.deps = deps_.unionOf(dst.deps, cand.deps);
        else if (oth == dst.oth)
            return;
        dst.oth = oth;
    }

    /** Advance the clock strictly past @p base. */
    double nextTime(double base)
    {
        if (config_.clock == ClockMode::Levels)
            return base + 1.0;
        return base + rng_.nextExponential(config_.mean_latency);
    }

    ThreadState &threadState(ThreadId tid)
    {
        if (tid >= threads_.size())
            threads_.resize(tid + 1);
        return threads_[tid];
    }

    /** Non-virtual event dispatch shared by onEvent and onBatch. */
    void process(const TraceEvent &event);

    /**
     * @name Centralized non-access event handlers
     *
     * Both process() and the segment-replay stitch dispatch barriers,
     * fences, flushes, and strand switches through these, so the
     * counters, the model folds, and the analysis-plugin hooks are
     * guaranteed to behave identically on the serial and parallel
     * replay paths (previously the stitch re-implemented the arms).
     */
    ///@{
    void handleBarrierEvent(SeqNum seq, ThreadId tid,
                            ThreadState &thread);
    void handleFenceEvent(bool full, ThreadId tid, ThreadState &thread);
    void handleFlushEvent(bool strong, SeqNum seq, ThreadId tid,
                          ThreadState &thread, Addr addr,
                          std::uint32_t aslot_hint);
    void handleStrandEvent(ThreadId tid, ThreadState &thread);
    ///@}

    /** Build a PersistInfo and fire the issue/complete hooks. */
    void notifyPersist(SeqNum seq, ThreadId tid, Addr addr,
                       unsigned size, std::uint64_t value, double time,
                       double start, double race_bound, PersistId id,
                       PersistId binding, DepSource binding_source,
                       std::uint64_t op, bool coalesced,
                       DepSetRef record_ref);

    /** Slot of a tracking block, extending the SoA banks on insert. */
    std::uint32_t trackSlot(std::uint64_t key);

    /** Slot of an atomic block (non-unified), extending on insert. */
    std::uint32_t atomicSlot(std::uint64_t block);

    /** "No pre-resolved atomic slot" sentinel for *At handlers. */
    static constexpr std::uint32_t no_slot_hint = ~0u;

    /** Process one <=8-byte piece of an access event. */
    void handlePiece(const TraceEvent &event, ThreadState &thread,
                     Addr addr, unsigned size, std::uint64_t value,
                     bool is_write);

    /**
     * Piece body after the tracking probe: everything handlePiece
     * does once the slot is known. Split out so the segment-replay
     * stitch can feed pre-resolved slots; @p aslot_hint is the
     * pre-resolved atomic slot (no_slot_hint to probe on demand,
     * ignored in unified mode).
     */
    void handlePieceAt(std::uint32_t track_slot,
                       std::uint32_t aslot_hint, SeqNum seq,
                       ThreadId tid, ThreadState &thread, Addr addr,
                       unsigned size, std::uint64_t value,
                       bool is_write);

    /** Record the shadow SC tag on a block after an access. */
    void recordScTag(std::uint32_t track_slot, ThreadState &thread,
                     ThreadId tid);

    /** Handle a persist piece (timing, coalescing, logging). */
    void persistPieceAt(SeqNum seq, ThreadId tid, ThreadState &thread,
                        std::uint32_t track_slot,
                        std::uint32_t aslot_hint, Addr addr,
                        unsigned size, std::uint64_t value,
                        const Tag &dep, DepSource dep_source);

    /** @name Px86 operational model (DESIGN.md Section 13) */
    ///@{

    /**
     * Px86 persistent store: dirties the cache line (records the
     * piece in the line's dirty list and folds @p dep into the line
     * context) without issuing any persist. Durability happens only
     * when a flush covers the line.
     */
    void px86StorePiece(std::uint32_t track_slot,
                        std::uint32_t aslot_hint, ThreadId tid,
                        ThreadState &thread, Addr addr, unsigned size,
                        std::uint64_t value, const Tag &dep);

    /**
     * clflush (@p strong) or clflushopt/clwb (weak) of the line
     * holding @p addr: issue one asynchronous persist per dirty piece
     * of the line (they coalesce into a single atomic persist), then
     * mark the line clean. The persist's completion routes to
     * strong_dep (clflush: ordered before the thread's younger stores)
     * or accum_dep (weak: ordered only by the next fence). A clean
     * line is a no-op. @p aslot_hint as in handlePieceAt.
     */
    void handleFlushAt(bool strong, SeqNum seq, ThreadId tid,
                       ThreadState &thread, Addr addr,
                       std::uint32_t aslot_hint);

    /** sfence/mfence: fold pending flush order into epoch_dep. */
    void px86Fence(ThreadState &thread);

    /**
     * PersistBarrier replayed under Px86 as its canonical x86
     * compilation: weak-flush every line the thread has dirtied,
     * then sfence.
     */
    void px86Barrier(SeqNum seq, ThreadId tid, ThreadState &thread);

    ///@}

    /**
     * @name Out-of-line plugin fan-out
     *
     * The handlers below are defined inline (after the class) so the
     * interpreted, segment-stitch, and compiled execution paths all
     * inline them; the plugin loops stay out of line behind these
     * helpers so the inline bodies need no AnalysisPlugin definition
     * and the no-plugin hot path pays one predicted-untaken branch.
     */
    ///@{
    void notifyAccessPlugins(SeqNum seq, Addr addr, std::uint64_t value,
                             ThreadId tid, unsigned size, bool is_write,
                             bool persistent);
    void notifyFlushPlugins(SeqNum seq, ThreadId tid, bool strong,
                            bool line_dirty, Addr line_base);
    void notifyBarrierPlugins(ThreadId tid);
    void notifyFencePlugins(bool full, ThreadId tid);
    void notifyStrandPlugins(ThreadId tid);
    ///@}

    /** Publish staged records into log_ (const: called from log()). */
    void flushStage() const;

    /** Convert one staged record to its published form. Pure: reads
        only the (post-replay read-only) dep-set pool, so deferred
        materialization may run it from several threads on disjoint
        records. */
    PersistRecord materializeRecord(const StagedRecord &staged) const;

    /** Publish any deferred records serially (no-op when empty). */
    void materializeDeferred() const;

    TimingConfig config_;
    TimingResult result_;
    Rng rng_;

    /** @name Configuration unpacked for the hot path */
    ///@{
    bool strict_ = false;
    bool px86_ = false;         //!< ModelKind::Px86
    bool track_loads_ = true;   //!< model.detect_load_before_store
    bool record_deps_ = false;
    bool detect_races_ = false;
    bool all_scope_ = true;     //!< ConflictScope::AllAddresses
    bool unified_ = false;      //!< tracking == atomic granularity
    bool has_plugins_ = false;  //!< !config_.plugins.empty()
    bool fold_barrier_ = false; //!< non-strict SC fold at barriers
    /** log2 of the granularities (powers of two by validate()), so
        block indexing is a shift rather than a 64-bit division. */
    unsigned track_shift_ = 3;
    unsigned atomic_shift_ = 3;
    ///@}

    Arena arena_;

    /** @name Tracking-block bank (SoA, indexed by track slot) */
    ///@{
    ShardedIndexMap track_index_;
    ArenaVector<Tag> track_store_;
    ArenaVector<Tag> track_load_;     //!< only with track_loads_
    ArenaVector<Tag> track_sc_;       //!< only with detect_races_
    ArenaVector<ThreadId> track_sc_src_;
    ///@}

    /**
     * @name Atomic-block bank (SoA). In unified mode it is indexed by
     * track slot (atomic_index_ unused); otherwise by its own map.
     * A block is "valid" (has a pending persist) iff its last.src is
     * not invalid_persist.
     */
    ///@{
    ShardedIndexMap atomic_index_;
    ArenaVector<Tag> atomic_last_;
    ArenaVector<PersistId> atomic_group_start_;
    ArenaVector<double> atomic_group_begin_;
    ///@}

    /**
     * @name Px86 dirty-line bank (SoA, same index as the atomic bank;
     * populated only when px86_). Each line carries the merged
     * dependences of its dirty stores (`px86_ctx_`), an intrusive
     * list of dirty pieces in store order (head/tail into
     * `px86_pieces_`, linked via DirtyPiece::next), and the last
     * thread that enqueued it on a dirty_lines list (`px86_mark_`,
     * dedup so barriers flush each line once). Flushed pieces recycle
     * through the `px86_free_` free list, so steady state allocates
     * nothing.
     */
    ///@{
    struct DirtyPiece
    {
        Addr addr;
        std::uint64_t value;
        std::uint32_t next;
        std::uint32_t tslot;
        std::uint8_t size;
    };

    static constexpr std::uint32_t no_piece = ~0u;

    ArenaVector<Tag> px86_ctx_;
    ArenaVector<std::uint32_t> px86_dirty_head_;
    ArenaVector<std::uint32_t> px86_dirty_tail_;
    ArenaVector<ThreadId> px86_mark_;
    std::vector<DirtyPiece> px86_pieces_;
    std::uint32_t px86_free_ = no_piece;

    /**
     * Non-null exactly while handleFlushAt runs: persistPieceAt
     * merges each persist's out-tag here (the flushing thread's
     * strong_dep or accum_dep) instead of publishing it to
     * track_store_/epoch/accum — a flush makes data durable but says
     * nothing to readers until a fence orders it.
     */
    Tag *px86_flush_route_ = nullptr;

    /**
     * True exactly for the first piece of a flush: a flush begins its
     * own atomic persist and may not merge into a persist issued by
     * an earlier flush of the line — the earlier flush can complete
     * alone, so crash states between the two are reachable. The
     * remaining pieces of the same flush still coalesce into the
     * group the first one founds.
     */
    bool px86_fresh_group_ = false;
    ///@}

    DepSetPool deps_;
    std::vector<ThreadState> threads_;

    mutable PersistLog log_;
    mutable std::array<StagedRecord, stage_capacity> stage_;
    mutable std::size_t stage_count_ = 0;

    /**
     * Deferred-materialization mode (segment_replay.cc): flushStage
     * parks staged PODs here instead of building PersistRecords, so
     * the record construction (field copies plus dep-set vector
     * allocations — the bulk of record_log's cost) can fan out across
     * workers after the serial stitch, in exact log order. log() and
     * takeLog() fall back to serial materialization if the parallel
     * pass has not consumed the backlog.
     */
    mutable std::vector<StagedRecord> deferred_;
    bool defer_log_ = false;

    std::vector<RaceSample> race_samples_;
    PersistId next_persist_id_ = 0;
};

/*
 * Hot-path handler bodies. These live in the header (not
 * timing_engine.cc) so that every execution front end inlines them:
 * process() always could (same TU), but the segment-replay stitch and
 * the compiled-trace executor live in other translation units, and a
 * cross-TU call per micro-op was the single largest cost of both
 * (measured at roughly the difference between the stitch's ~25M
 * events/s and the compiled path's ~60M+). Bodies are identical to
 * the pre-move .cc definitions; only the plugin loops moved behind
 * the out-of-line notify*Plugins helpers.
 */

inline std::uint32_t
PersistTimingEngine::trackSlot(std::uint64_t key)
{
    bool inserted = false;
    const std::uint32_t slot = track_index_.findOrInsert(key, inserted);
    if (inserted) {
        track_store_.push_back(Tag{});
        if (track_loads_)
            track_load_.push_back(Tag{});
        if (detect_races_) {
            track_sc_.push_back(Tag{});
            track_sc_src_.push_back(invalid_thread);
        }
        if (unified_) {
            // Shared index: the atomic bank grows in step, so a
            // persist piece never needs a second hash probe.
            atomic_last_.push_back(Tag{});
            atomic_group_start_.push_back(invalid_persist);
            atomic_group_begin_.push_back(0.0);
            if (px86_) {
                px86_ctx_.push_back(Tag{});
                px86_dirty_head_.push_back(no_piece);
                px86_dirty_tail_.push_back(no_piece);
                px86_mark_.push_back(invalid_thread);
            }
        }
    }
    return slot;
}

inline std::uint32_t
PersistTimingEngine::atomicSlot(std::uint64_t block)
{
    bool inserted = false;
    const std::uint32_t aslot = atomic_index_.findOrInsert(block, inserted);
    if (inserted) {
        atomic_last_.push_back(Tag{});
        atomic_group_start_.push_back(invalid_persist);
        atomic_group_begin_.push_back(0.0);
        if (px86_) {
            px86_ctx_.push_back(Tag{});
            px86_dirty_head_.push_back(no_piece);
            px86_dirty_tail_.push_back(no_piece);
            px86_mark_.push_back(invalid_thread);
        }
    }
    return aslot;
}

inline void
PersistTimingEngine::recordScTag(std::uint32_t track_slot,
                                 ThreadState &thread, ThreadId tid)
{
    // The SC tag carries the latest persist ordered before this
    // access in volatile memory order: the thread's inherited shadow
    // or its own latest persist, whichever is later.
    const Tag &best = thread.own_persist.t > thread.shadow.t
        ? thread.own_persist : thread.shadow;
    if (best.src != invalid_persist && best.t > track_sc_[track_slot].t) {
        track_sc_[track_slot] = best;
        track_sc_src_[track_slot] = tid;
    }
}

inline void
PersistTimingEngine::persistPieceAt(SeqNum seq, ThreadId tid,
                                    ThreadState &thread,
                                    std::uint32_t track_slot,
                                    std::uint32_t aslot_hint, Addr addr,
                                    unsigned size, std::uint64_t value,
                                    const Tag &dep, DepSource dep_source)
{
    const std::uint64_t block = addr >> atomic_shift_;
    std::uint32_t aslot;
    if (unified_) {
        // Same granularity: the tracking probe already found (or
        // created) this block's atomic slot.
        aslot = track_slot;
    } else if (aslot_hint != no_slot_hint) {
        // Segment replay pre-resolved the slot during the stitch.
        aslot = aslot_hint;
    } else {
        aslot = atomicSlot(block);
    }
    // Copy, not reference: the banks never grow below, but a copy of
    // five hot words also dodges aliasing with the writes at the end.
    const Tag last = atomic_last_[aslot];
    const bool valid = last.src != invalid_persist;

    const PersistId id = next_persist_id_++;
    ++result_.persists;

    // A persist coalesces into its block's pending atomic persist iff
    // every dependence outside that pending group completes strictly
    // before it: either the whole dependence summary is earlier, or
    // its top dependence *is* the pending group and the rest (oth)
    // is earlier.
    bool coalesce = valid && !px86_fresh_group_ &&
        (dep.t < last.t ||
         (dep.block == block && dep.t == last.t && dep.oth < last.t));
    if (coalesce && config_.coalesce_window > 0 &&
        id - atomic_group_start_[aslot] > config_.coalesce_window) {
        // The pending persist has drained (finite buffering): the new
        // persist must be issued separately.
        coalesce = false;
        ++result_.window_blocked;
    }

    double time = 0.0;
    double start = 0.0;
    double race_bound = 0.0;
    PersistId binding = invalid_persist;
    DepSource binding_source = DepSource::None;
    if (coalesce) {
        time = last.t;
        start = atomic_group_begin_[aslot];
        binding = last.src;
        binding_source = DepSource::Coalesced;
        ++result_.coalesced;
        race_bound = time;
    } else {
        double base = dep.t;
        binding = dep.src;
        binding_source = dep_source;
        if (valid && last.t > dep.t) {
            // Strong persist atomicity: serialize after the previous
            // persist to this block.
            base = last.t;
            binding = last.src;
            binding_source = DepSource::SameBlockSPA;
        }
        time = nextTime(base);
        start = base;
        race_bound = base;
    }

    if (detect_races_) {
        // Every persist in this persist's constraint cone has a time
        // no later than race_bound (times are monotone along
        // constraint edges), so an SC-preceding foreign persist past
        // that bound is provably unordered with it: a persist-epoch
        // race. (Races below the bound can go unreported; the check
        // is sound, not complete.)
        if (thread.shadow.src != invalid_persist &&
            thread.shadow.t > race_bound) {
            ++result_.races;
            if (race_samples_.size() < 16) {
                RaceSample sample;
                sample.seq = seq;
                sample.thread = tid;
                sample.persist = id;
                sample.foreign = thread.shadow.src;
                race_samples_.push_back(sample);
            }
        }
    }

    DepSetRef record_ref = 0;
    if (record_deps_) {
        record_ref = dep.deps;
        if (!coalesce && valid) {
            // Strong persist atomicity: the previous group to this
            // block is a direct predecessor even when it is not the
            // timing argmax (same-word persists never reorder).
            record_ref =
                deps_.unionOf(record_ref, deps_.singleton(last.src));
        }
    }

    Tag out;
    out.t = time;
    out.oth = 0.0;
    out.src = id;
    out.block = block;
    out.deps = record_deps_ ? deps_.singleton(id) : 0;
    atomic_last_[aslot] = out;
    if (!coalesce) {
        atomic_group_start_[aslot] = id;
        atomic_group_begin_[aslot] = start;
    }

    if (detect_races_ && time > thread.own_persist.t) {
        Tag own;
        own.t = time;
        own.src = id;
        own.block = block;
        thread.own_persist = own;
    }

    if (px86_flush_route_ != nullptr) {
        // Px86 flush persist: durability routes to the flushing
        // thread's pending-order tag (strong_dep for clflush,
        // accum_dep for clflushopt/clwb); nothing is published to
        // readers or to the thread's epoch until a fence orders it.
        mergeInto(*px86_flush_route_, out);
    } else {
        mergeInto(track_store_[track_slot], out);
        mergeInto(strict_ ? thread.epoch_dep : thread.accum_dep, out);
    }

    result_.critical_path = std::max(result_.critical_path, time);

    if (has_plugins_)
        notifyPersist(seq, tid, addr, size, value, time, start,
                      race_bound, id, binding, binding_source,
                      thread.op, coalesce, record_ref);

    if (config_.record_log) {
        if (stage_count_ == stage_capacity)
            flushStage();
        StagedRecord &staged = stage_[stage_count_++];
        staged.id = id;
        staged.seq = seq;
        staged.addr = addr;
        staged.value = value;
        staged.time = time;
        staged.start = start;
        staged.op = thread.op;
        staged.binding = binding;
        staged.thread = tid;
        staged.deps = record_ref;
        staged.role = thread.role;
        staged.binding_source = binding_source;
        staged.size = static_cast<std::uint8_t>(size);
    }
}

inline void
PersistTimingEngine::px86StorePiece(std::uint32_t track_slot,
                                    std::uint32_t aslot_hint,
                                    ThreadId tid, ThreadState &thread,
                                    Addr addr, unsigned size,
                                    std::uint64_t value, const Tag &dep)
{
    std::uint32_t aslot;
    if (unified_)
        aslot = track_slot;
    else if (aslot_hint != no_slot_hint)
        aslot = aslot_hint;
    else
        aslot = atomicSlot(addr >> atomic_shift_);

    mergeInto(px86_ctx_[aslot], dep);

    const std::uint32_t tail = px86_dirty_tail_[aslot];
    if (tail != no_piece && px86_pieces_[tail].addr == addr &&
        px86_pieces_[tail].size == size) {
        // Same-word overwrite in cache: only the newest value can
        // ever reach persistent memory from this line.
        px86_pieces_[tail].value = value;
    } else {
        std::uint32_t idx;
        if (px86_free_ != no_piece) {
            idx = px86_free_;
            px86_free_ = px86_pieces_[idx].next;
        } else {
            idx = static_cast<std::uint32_t>(px86_pieces_.size());
            px86_pieces_.push_back(DirtyPiece{});
        }
        DirtyPiece &piece = px86_pieces_[idx];
        piece.addr = addr;
        piece.value = value;
        piece.next = no_piece;
        piece.tslot = track_slot;
        piece.size = static_cast<std::uint8_t>(size);
        if (tail == no_piece)
            px86_dirty_head_[aslot] = idx;
        else
            px86_pieces_[tail].next = idx;
        px86_dirty_tail_[aslot] = idx;
    }

    // Durable-before-visible: a thread that later conflicts with this
    // cell inherits the store's persist dependences — they were
    // durable before the store became visible.
    mergeInto(track_store_[track_slot], dep);

    if (px86_mark_[aslot] != tid) {
        px86_mark_[aslot] = tid;
        thread.dirty_lines.push_back(aslot);
    }
}

inline void
PersistTimingEngine::handlePieceAt(std::uint32_t track_slot,
                                   std::uint32_t aslot_hint, SeqNum seq,
                                   ThreadId tid, ThreadState &thread,
                                   Addr addr, unsigned size,
                                   std::uint64_t value, bool is_write)
{
    const std::uint32_t slot = track_slot;
    const bool persistent = isPersistentAddr(addr);
    const bool in_scope = all_scope_ || persistent;

    if (has_plugins_)
        notifyAccessPlugins(seq, addr, value, tid, size, is_write,
                            persistent);

    if (detect_races_) {
        // Shadow SC propagation (all addresses, regardless of the
        // model's conflict scope): inherit the latest foreign persist
        // SC-ordered before the previous access of this block.
        const ThreadId sc_src = track_sc_src_[slot];
        if (sc_src != invalid_thread && sc_src != tid &&
            track_sc_[slot].t > thread.shadow.t)
            thread.shadow = track_sc_[slot];
    }

    if (!in_scope) {
        // The SC shadow above still records ground truth.
        recordScTag(slot, thread, tid);
        return;
    }

    if (!is_write) {
        // Load: conflicts with prior stores to the block; persists
        // ordered before those stores must precede this thread's
        // post-barrier persists (immediately, under strict — and
        // under Px86, where the published facts are already durable
        // before the store was visible, so no fence is needed to
        // inherit them).
        mergeInto(strict_ || px86_ ? thread.epoch_dep
                                   : thread.accum_dep,
                  track_store_[slot]);
        // Record the load so later conflicting stores inherit order
        // (the load-before-store conflicts BPFS cannot detect).
        if (track_loads_)
            mergeInto(track_load_[slot], thread.epoch_dep);
        if (detect_races_)
            recordScTag(slot, thread, tid);
        return;
    }

    // Store or RMW: conflicts with prior loads and stores to the block.
    Tag dep = thread.epoch_dep;
    DepSource dep_source = dep.src != invalid_persist
        ? DepSource::ThreadEpoch : DepSource::None;
    {
        const Tag &cand = track_store_[slot];
        if (cand.src != invalid_persist && cand.t > dep.t)
            dep_source = DepSource::ConflictStore;
        mergeInto(dep, cand);
    }
    if (track_loads_) {
        const Tag &cand = track_load_[slot];
        if (cand.src != invalid_persist && cand.t > dep.t)
            dep_source = DepSource::ConflictLoad;
        mergeInto(dep, cand);
    }

    if (persistent) {
        if (px86_) {
            // Px86: the store only dirties its cache line; it becomes
            // durable when a later flush covers the line. The thread's
            // completed clflushes are strongly ordered before it, and
            // so is its fence-folded flush history: a store issued
            // after an sfence cannot persist ahead of the persists
            // that sfence ordered, no matter which thread eventually
            // flushes the line (false sharing flushes foreign pieces).
            Tag pdep = dep;
            mergeInto(pdep, thread.strong_dep);
            mergeInto(pdep, thread.epoch_dep);
            px86StorePiece(slot, aslot_hint, tid, thread, addr, size,
                           value, pdep);
        } else {
            persistPieceAt(seq, tid, thread, slot, aslot_hint, addr,
                           size, value, dep, dep_source);
        }
        if (detect_races_)
            recordScTag(slot, thread, tid);
        return;
    }

    // Volatile store: inherit the conflict order; record that persists
    // already barrier-ordered before this store precede it. (Under
    // Px86 the inherited facts are already durable, hence epoch_dep.)
    mergeInto(strict_ || px86_ ? thread.epoch_dep : thread.accum_dep,
              dep);
    mergeInto(track_store_[slot], thread.epoch_dep);
    if (px86_)
        mergeInto(track_store_[slot], thread.strong_dep);
    if (detect_races_)
        recordScTag(slot, thread, tid);
}

inline void
PersistTimingEngine::handleFlushAt(bool strong, SeqNum seq,
                                   ThreadId tid, ThreadState &thread,
                                   Addr addr, std::uint32_t aslot_hint)
{
    std::uint32_t aslot;
    if (aslot_hint != no_slot_hint)
        aslot = aslot_hint;
    else if (unified_)
        aslot = trackSlot(addr >> track_shift_);
    else
        aslot = atomicSlot(addr >> atomic_shift_);

    std::uint32_t idx = px86_dirty_head_[aslot];

    if (has_plugins_) {
        Addr line_base = invalid_addr;
        if (idx != no_piece)
            // Dirty: the first dirty piece names the line (barrier
            // legs arrive with addr 0, so the event address cannot).
            line_base = (px86_pieces_[idx].addr >> atomic_shift_)
                        << atomic_shift_;
        else if (addr != 0)
            line_base = (addr >> atomic_shift_) << atomic_shift_;
        notifyFlushPlugins(seq, tid, strong, idx != no_piece,
                           line_base);
    }

    Tag &pending = strong ? thread.strong_dep : thread.accum_dep;
    if (idx == no_piece) {
        // Clean line: nothing to persist. But same-line flushes are
        // ordered with each other, so flushing a line whose dirty
        // pieces a FOREIGN thread's flush already took must still
        // fold that line's in-flight persists into this thread's
        // pending flush order — the foreign clflushopt may never be
        // fenced, and without this fold a barrier over a stolen line
        // would publish later stores ahead of the stolen data
        // (observed as a flag-ahead-of-data cut under false sharing).
        mergeInto(pending, px86_ctx_[aslot]);
        return;
    }

    // The flush's persist is ordered after everything the line's
    // dirty stores depended on plus the thread's fence-ordered
    // history; clflush is additionally ordered after the thread's
    // earlier clflushes.
    Tag dep = thread.epoch_dep;
    mergeInto(dep, px86_ctx_[aslot]);
    if (strong)
        mergeInto(dep, thread.strong_dep);
    const DepSource dep_source = dep.src != invalid_persist
        ? DepSource::ThreadEpoch : DepSource::None;

    // Collect the persists' out-tags locally: they become the
    // thread's pending flush order AND the line's persist history
    // (px86_ctx_ survives the clear so later same-line flushes and
    // stores order after this one).
    Tag out_acc;
    px86_flush_route_ = &out_acc;
    bool first = true;
    while (idx != no_piece) {
        const DirtyPiece piece = px86_pieces_[idx];
        px86_fresh_group_ = first;
        first = false;
        persistPieceAt(seq, tid, thread, piece.tslot, aslot,
                       piece.addr, piece.size, piece.value, dep,
                       dep_source);
        px86_pieces_[idx].next = px86_free_;
        px86_free_ = idx;
        idx = piece.next;
    }
    px86_fresh_group_ = false;
    px86_flush_route_ = nullptr;
    mergeInto(pending, out_acc);

    px86_dirty_head_[aslot] = no_piece;
    px86_dirty_tail_[aslot] = no_piece;
    px86_ctx_[aslot] = out_acc;
    px86_mark_[aslot] = invalid_thread;
}

inline void
PersistTimingEngine::px86Fence(ThreadState &thread)
{
    if (config_.mutant == EngineMutant::ElideEpochBarrier)
        return;
    mergeInto(thread.epoch_dep, thread.accum_dep);
    mergeInto(thread.epoch_dep, thread.strong_dep);
}

inline void
PersistTimingEngine::px86Barrier(SeqNum seq, ThreadId tid,
                                 ThreadState &thread)
{
    // Canonical epoch->x86 compilation: weak-flush every line the
    // thread dirtied since its last barrier, then sfence. Flushing a
    // line someone else already flushed is a clean-line no-op.
    for (const std::uint32_t aslot : thread.dirty_lines)
        handleFlushAt(false, seq, tid, thread, 0, aslot);
    thread.dirty_lines.clear();
    px86Fence(thread);
}

inline void
PersistTimingEngine::handleBarrierEvent(SeqNum seq, ThreadId tid,
                                        ThreadState &thread)
{
    ++result_.barriers;
    if (px86_)
        px86Barrier(seq, tid, thread);
    else if (fold_barrier_)
        mergeInto(thread.epoch_dep, thread.accum_dep);
    if (has_plugins_)
        notifyBarrierPlugins(tid);
}

inline void
PersistTimingEngine::handleFenceEvent(bool full, ThreadId tid,
                                      ThreadState &thread)
{
    ++result_.fences;
    if (px86_)
        px86Fence(thread);
    else if (fold_barrier_)
        // Under the SC models an x86 fence acts as the persist
        // barrier of its canonical epoch counterpart.
        mergeInto(thread.epoch_dep, thread.accum_dep);
    if (has_plugins_)
        notifyFencePlugins(full, tid);
}

inline void
PersistTimingEngine::handleFlushEvent(bool strong, SeqNum seq,
                                      ThreadId tid, ThreadState &thread,
                                      Addr addr,
                                      std::uint32_t aslot_hint)
{
    // Under the SC-persistency models a flush carries no ordering
    // (persists are implicit in stores); only Px86 acts on it, and
    // only Px86 reports it to plugins.
    ++result_.flushes;
    if (px86_)
        handleFlushAt(strong, seq, tid, thread, addr, aslot_hint);
}

inline void
PersistTimingEngine::handleStrandEvent(ThreadId tid, ThreadState &thread)
{
    ++result_.strands;
    if (config_.model.kind == ModelKind::Strand) {
        thread.epoch_dep = Tag{};
        thread.accum_dep = Tag{};
    }
    if (has_plugins_)
        notifyStrandPlugins(tid);
}

} // namespace persim

#endif // PERSIM_PERSISTENCY_TIMING_ENGINE_HH
