/**
 * @file
 * Persist-timing engine: the paper's evaluation methodology
 * (Section 7, "Persist Timing Simulation").
 *
 * The engine consumes a trace (as a TraceSink) and assigns every
 * atomic persist piece a completion time that respects the ordering
 * constraints of the configured persistency model, assuming infinite
 * bandwidth and banks. The maximum assigned time is the persist
 * ordering constraint critical path: the implementation-independent
 * lower bound on how long the trace's persists must take.
 *
 * Timing propagates through thread and memory state as tagged
 * timestamps:
 *
 *  - each thread (each strand, under strand persistency) carries
 *    `epoch_dep` (persists that must precede its current-epoch
 *    persists) and `accum_dep` (dependences observed during the
 *    current epoch, folded into epoch_dep at each persist barrier;
 *    under strict persistency the fold is immediate);
 *  - each tracking-granularity block carries `store_tag`/`load_tag`,
 *    the persists ordered (in persistent memory order) before the
 *    last conflicting store/load of that block;
 *  - each atomic-granularity block carries the time of its last
 *    persist, implementing strong persist atomicity and coalescing:
 *    a persist coalesces iff its dependences complete strictly before
 *    the block's previous persist.
 *
 * Two clocks are provided: discrete levels (critical path counted in
 * units of persist latency; coalescing-optimistic best case used for
 * the paper's results) and a stochastic clock (each persist adds an
 * exponential delay), which yields a random realization of persist
 * completion times used for failure injection in src/recovery/.
 *
 * Hot-path layout (DESIGN.md Section 11): tags are 40-byte PODs, and
 * per-block state lives in struct-of-arrays banks backed by a common
 * Arena and indexed through FlatIndexMap, so steady-state replay
 * performs no per-event heap allocation and no node-based hash
 * walks. When tracking and atomic granularity coincide (the default)
 * the two banks share one index and each persist piece costs a
 * single hash probe. Dependence-id sets (record_deps only) live in
 * an arena-backed DepSetPool referenced by 32-bit handles instead of
 * shared_ptr-counted vectors. Log records are staged in a fixed POD
 * buffer and appended to the PersistLog in batches. All of this is
 * bit-identical to the original scalar formulation — asserted by
 * tests/persistency/golden_replay_test.cc against frozen
 * pre-refactor outputs.
 */

#ifndef PERSIM_PERSISTENCY_TIMING_ENGINE_HH
#define PERSIM_PERSISTENCY_TIMING_ENGINE_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "common/arena.hh"
#include "common/flat_map.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "memtrace/sink.hh"
#include "persistency/model.hh"
#include "persistency/persist_log.hh"

namespace persim {

class AnalysisPlugin;
struct AccessInfo;
struct FlushInfo;
enum class FenceEvent : std::uint8_t;

/** How persist completion times advance. */
enum class ClockMode : std::uint8_t {
    /** Discrete levels: each non-coalesced persist is +1. */
    Levels,
    /** Each non-coalesced persist adds Exp(mean) random latency. */
    Stochastic,
};

/**
 * Test-only engine fault injection: deliberately broken variants used
 * to prove the differential fuzzer and golden tests can actually
 * detect an engine bug (ISSUE 4). Never enable outside tests.
 */
enum class EngineMutant : std::uint8_t {
    None = 0,

    /**
     * Persist barriers do not fold accum_dep into epoch_dep: epoch
     * and strand persistency lose all inter-epoch ordering and keep
     * only conflict/atomicity order. Caught by the golden tests
     * (frozen critical paths change) and by the differential fuzzer
     * (on strand-free programs epoch must equal strand exactly).
     */
    ElideEpochBarrier,
};

/** Timing engine configuration. */
struct TimingConfig
{
    ModelConfig model;

    ClockMode clock = ClockMode::Levels;

    /** Seed for the stochastic clock. */
    std::uint64_t seed = 1;

    /** Mean persist latency (stochastic clock), in latency units. */
    double mean_latency = 1.0;

    /** Record a PersistRecord per atomic persist piece. */
    bool record_log = false;

    /**
     * Record each persist's complete direct-dependence set
     * (PersistRecord::deps), not just the binding argmax. The scalar
     * analysis keeps only the latest dependence per state because
     * only the max matters for timing; exhaustive crash-state
     * enumeration needs every constraint edge. Implies the cost of
     * carrying id sets through every tag merge — enable it only for
     * bounded model-checking runs, not the big sweeps. Requires
     * record_log.
     */
    bool record_deps = false;

    /**
     * Detect persist-epoch races (paper Section 5.2): alongside the
     * model analysis, a shadow propagation tracks, per thread, the
     * latest *foreign* persist that precedes the thread's execution
     * in SC volatile memory order (through any chain of conflicting
     * accesses). A persist whose model constraints do not cover that
     * foreign persist is "astonishingly" unordered with it despite
     * the program's synchronization — a persist-epoch race. The
     * conservative barrier discipline produces none; racing-epoch
     * and strand annotations produce them intentionally.
     */
    bool detect_races = false;

    /**
     * Coalescing window in issued persists (0 = unbounded). With
     * finite persist buffering, a pending persist eventually drains
     * to the device and can no longer absorb writes; this models that
     * by forbidding coalescing with a pending persist once more than
     * `coalesce_window` persists have been issued since that pending
     * persist was first created. The paper's best-case measure
     * corresponds to 0 (unbounded).
     */
    std::uint64_t coalesce_window = 0;

    /** Deliberate engine breakage for harness validation (tests). */
    EngineMutant mutant = EngineMutant::None;

    /**
     * Analysis plugins notified at persist/flush/fence/access and
     * end-of-trace boundaries (analysis_plugin.hh). Non-owning: the
     * plugins must outlive the engine. An empty list costs one
     * untaken branch per hook site.
     */
    std::vector<AnalysisPlugin *> plugins;
};

/** Aggregate results of one timing analysis. */
struct TimingResult
{
    /** Persist ordering constraint critical path (max persist time). */
    double critical_path = 0.0;

    /** Atomic persist pieces assigned a time (incl. coalesced). */
    std::uint64_t persists = 0;

    /** Pieces that coalesced into a previous persist. */
    std::uint64_t coalesced = 0;

    /** Coalescing attempts rejected by the finite window. */
    std::uint64_t window_blocked = 0;

    /** Persist-epoch races (persists unordered with an SC-preceding
        foreign persist); requires TimingConfig::detect_races. */
    std::uint64_t races = 0;

    /** Operations completed (OpEnd markers). */
    std::uint64_t ops = 0;

    /** Total trace events consumed. */
    std::uint64_t events = 0;

    /** Persist barriers seen. */
    std::uint64_t barriers = 0;

    /** NewStrand events seen. */
    std::uint64_t strands = 0;

    /** clflush/clflushopt/clwb events seen (Px86 persists them). */
    std::uint64_t flushes = 0;

    /** sfence/mfence events seen. */
    std::uint64_t fences = 0;

    /** Px86 only: dirty pieces still unflushed at end of trace —
        stores that never became durable because no flush covered
        them. Always 0 under the SC-persistency models. */
    std::uint64_t unflushed = 0;

    /** Average critical path per completed operation. */
    double criticalPathPerOp() const;
};

/** Streaming persist-timing analysis for one persistency model. */
class PersistTimingEngine : public TraceSink
{
  public:
    explicit PersistTimingEngine(const TimingConfig &config);

    void onEvent(const TraceEvent &event) override;
    void onBatch(const TraceEvent *events, std::size_t count) override;
    void onFinish() override;

    const TimingConfig &config() const { return config_; }
    const TimingResult &result() const { return result_; }

    /** One example persist-epoch race. */
    struct RaceSample
    {
        SeqNum seq = 0;          //!< Trace position of the racy persist.
        ThreadId thread = 0;     //!< Thread issuing it.
        PersistId persist = invalid_persist;
        PersistId foreign = invalid_persist; //!< The persist it races.
    };

    /** Up to 16 example races (requires detect_races). */
    const std::vector<RaceSample> &raceSamples() const
    {
        return race_samples_;
    }

    /** The persist log; empty unless record_log was set. */
    const PersistLog &log() const
    {
        flushStage();
        materializeDeferred();
        return log_;
    }

    /** Move the log out (for handing to recovery analyses). */
    PersistLog takeLog()
    {
        flushStage();
        materializeDeferred();
        return std::move(log_);
    }

  private:
    /**
     * Intra-trace parallel replay (segment_replay.cc) compiles trace
     * segments into micro-ops in parallel, then executes them through
     * this engine's own piece handlers in serial trace order so the
     * results stay bit-identical to plain replay.
     */
    friend class SegmentReplayer;

    /** Handle into the DepSetPool; 0 is the empty set. */
    using DepSetRef = std::uint32_t;

    /**
     * Tagged timestamp summarizing a set of persist dependences.
     *
     * `t`/`src`/`block` identify the latest dependence: its time, a
     * witness persist id, and the atomic block of the coalescing
     * group it belongs to (a group is all persists that merged into
     * one atomic persist: same block, same time). `oth` is the
     * maximum time of dependences *outside* that group.
     *
     * The distinction drives exact coalescing: a persist may merge
     * into its block's pending persist iff every dependence outside
     * that pending group completes strictly earlier — i.e. dep.t is
     * below the pending time, or the top dependence *is* the pending
     * group itself and dep.oth is below it. This is what lets strict
     * persistency benefit from large atomic persists (Figure 4): a
     * serialized sequence of stores into one block collapses into a
     * single atomic persist, while a dependence on a concurrent
     * persist in another block correctly blocks the merge.
     *
     * Trivially copyable on purpose: tags are merged and copied on
     * the hottest path, and `deps` (the full dependence-id set,
     * record_deps only) is a pool handle rather than a shared_ptr.
     */
    struct Tag
    {
        double t = 0.0;
        double oth = 0.0;
        PersistId src = invalid_persist;
        std::uint64_t block = ~0ULL;
        DepSetRef deps = 0;
    };

    /**
     * Immutable sorted persist-id sets, stored as spans in one
     * arena-backed id array and referenced by dense handles. Sets are
     * never freed individually (the pool lives exactly as long as one
     * analysis), matching the shared immutable-vector semantics of
     * the original formulation without per-merge refcount traffic.
     */
    class DepSetPool
    {
      public:
        explicit DepSetPool(Arena &arena) : ids_(arena)
        {
            spans_.push_back(Span{0, 0}); // ref 0 = the empty set
        }

        DepSetRef singleton(PersistId id)
        {
            const std::uint64_t off = ids_.appendSpan(&id, 1);
            spans_.push_back(Span{off, 1});
            return static_cast<DepSetRef>(spans_.size() - 1);
        }

        /** Sorted-unique union (standing in for unionDeps). */
        DepSetRef unionOf(DepSetRef a, DepSetRef b);

        const PersistId *data(DepSetRef ref) const
        {
            return ids_.data() + spans_[ref].off;
        }

        std::uint32_t size(DepSetRef ref) const
        {
            return spans_[ref].len;
        }

      private:
        struct Span
        {
            std::uint64_t off;
            std::uint32_t len;
        };

        ArenaVector<PersistId> ids_;
        std::vector<Span> spans_;
        std::vector<PersistId> scratch_;
    };

    /** Per-thread (per-strand) persistency state. */
    struct ThreadState
    {
        Tag epoch_dep;
        Tag accum_dep;
        std::uint64_t op = no_operation;
        PersistRole role = PersistRole::None;
        /** Shadow: latest foreign persist SC-ordered before here. */
        Tag shadow;
        /** Latest persist time this thread itself issued. */
        Tag own_persist;
        /** Px86: persists of the thread's clflushes — strongly
            ordered before its younger stores and flushes; folded into
            epoch_dep at fences (weak flushes go to accum_dep). */
        Tag strong_dep;
        /** Px86: atomic slots this thread dirtied since its last
            persist barrier (so barriers can replay as flush-all +
            sfence, the canonical epoch->x86 compilation). */
        std::vector<std::uint32_t> dirty_lines;
    };

    /** One staged (not yet published) persist-log record, POD. */
    struct StagedRecord
    {
        PersistId id;
        SeqNum seq;
        Addr addr;
        std::uint64_t value;
        double time;
        double start;
        std::uint64_t op;
        PersistId binding;
        ThreadId thread;
        DepSetRef deps;
        PersistRole role;
        DepSource binding_source;
        std::uint8_t size;
    };

    static constexpr std::size_t stage_capacity = 256;

    /**
     * Merge dependence summary @p cand into @p dst in place: the
     * result's top group is the later of the two (first wins ties
     * across distinct groups, which is conservative: a tie between
     * different groups lands in `oth` and correctly blocks
     * coalescing); everything else folds into `oth`. Merges whose
     * result equals @p dst — the candidate is a dead dependence edge,
     * dominated by what @p dst already carries — are pruned to a
     * no-op (except under record_deps, where the id sets must still
     * union).
     *
     * Defined here (not in the .cc) and force-inlined deliberately:
     * the profiler shows the merge as the single hottest call on the
     * replay path, and plain -O2 leaves it out of line.
     */
    [[gnu::always_inline]] inline void
    mergeInto(Tag &dst, const Tag &cand)
    {
        if (cand.src == invalid_persist)
            return;
        if (dst.src == invalid_persist) {
            dst = cand;
            return;
        }
        if (dst.block == cand.block && dst.t == cand.t) {
            // Same coalescing group: keep the newest witness.
            if (cand.src > dst.src)
                dst.src = cand.src;
            if (cand.oth > dst.oth)
                dst.oth = cand.oth;
            if (record_deps_)
                dst.deps = deps_.unionOf(dst.deps, cand.deps);
            return;
        }
        if (cand.t > dst.t) {
            // The candidate wins; the old top group folds into oth.
            const double oth = std::max({cand.oth, dst.t, dst.oth});
            const DepSetRef deps =
                record_deps_ ? deps_.unionOf(cand.deps, dst.deps) : 0;
            dst = cand;
            dst.oth = oth;
            dst.deps = deps;
            return;
        }
        // dst wins (first wins ties across distinct groups). When the
        // candidate raises nothing — a dead dependence edge, already
        // dominated by dst's group and oth — prune the merge entirely.
        const double oth = std::max({dst.oth, cand.t, cand.oth});
        if (record_deps_)
            dst.deps = deps_.unionOf(dst.deps, cand.deps);
        else if (oth == dst.oth)
            return;
        dst.oth = oth;
    }

    /** Advance the clock strictly past @p base. */
    double nextTime(double base)
    {
        if (config_.clock == ClockMode::Levels)
            return base + 1.0;
        return base + rng_.nextExponential(config_.mean_latency);
    }

    ThreadState &threadState(ThreadId tid)
    {
        if (tid >= threads_.size())
            threads_.resize(tid + 1);
        return threads_[tid];
    }

    /** Non-virtual event dispatch shared by onEvent and onBatch. */
    void process(const TraceEvent &event);

    /**
     * @name Centralized non-access event handlers
     *
     * Both process() and the segment-replay stitch dispatch barriers,
     * fences, flushes, and strand switches through these, so the
     * counters, the model folds, and the analysis-plugin hooks are
     * guaranteed to behave identically on the serial and parallel
     * replay paths (previously the stitch re-implemented the arms).
     */
    ///@{
    void handleBarrierEvent(SeqNum seq, ThreadId tid,
                            ThreadState &thread);
    void handleFenceEvent(bool full, ThreadId tid, ThreadState &thread);
    void handleFlushEvent(bool strong, SeqNum seq, ThreadId tid,
                          ThreadState &thread, Addr addr,
                          std::uint32_t aslot_hint);
    void handleStrandEvent(ThreadId tid, ThreadState &thread);
    ///@}

    /** Build a PersistInfo and fire the issue/complete hooks. */
    void notifyPersist(SeqNum seq, ThreadId tid, Addr addr,
                       unsigned size, std::uint64_t value, double time,
                       double start, double race_bound, PersistId id,
                       PersistId binding, DepSource binding_source,
                       std::uint64_t op, bool coalesced,
                       DepSetRef record_ref);

    /** Slot of a tracking block, extending the SoA banks on insert. */
    std::uint32_t trackSlot(std::uint64_t key);

    /** Slot of an atomic block (non-unified), extending on insert. */
    std::uint32_t atomicSlot(std::uint64_t block);

    /** "No pre-resolved atomic slot" sentinel for *At handlers. */
    static constexpr std::uint32_t no_slot_hint = ~0u;

    /** Process one <=8-byte piece of an access event. */
    void handlePiece(const TraceEvent &event, ThreadState &thread,
                     Addr addr, unsigned size, std::uint64_t value,
                     bool is_write);

    /**
     * Piece body after the tracking probe: everything handlePiece
     * does once the slot is known. Split out so the segment-replay
     * stitch can feed pre-resolved slots; @p aslot_hint is the
     * pre-resolved atomic slot (no_slot_hint to probe on demand,
     * ignored in unified mode).
     */
    void handlePieceAt(std::uint32_t track_slot,
                       std::uint32_t aslot_hint, SeqNum seq,
                       ThreadId tid, ThreadState &thread, Addr addr,
                       unsigned size, std::uint64_t value,
                       bool is_write);

    /** Record the shadow SC tag on a block after an access. */
    void recordScTag(std::uint32_t track_slot, ThreadState &thread,
                     ThreadId tid);

    /** Handle a persist piece (timing, coalescing, logging). */
    void persistPieceAt(SeqNum seq, ThreadId tid, ThreadState &thread,
                        std::uint32_t track_slot,
                        std::uint32_t aslot_hint, Addr addr,
                        unsigned size, std::uint64_t value,
                        const Tag &dep, DepSource dep_source);

    /** @name Px86 operational model (DESIGN.md Section 13) */
    ///@{

    /**
     * Px86 persistent store: dirties the cache line (records the
     * piece in the line's dirty list and folds @p dep into the line
     * context) without issuing any persist. Durability happens only
     * when a flush covers the line.
     */
    void px86StorePiece(std::uint32_t track_slot,
                        std::uint32_t aslot_hint, ThreadId tid,
                        ThreadState &thread, Addr addr, unsigned size,
                        std::uint64_t value, const Tag &dep);

    /**
     * clflush (@p strong) or clflushopt/clwb (weak) of the line
     * holding @p addr: issue one asynchronous persist per dirty piece
     * of the line (they coalesce into a single atomic persist), then
     * mark the line clean. The persist's completion routes to
     * strong_dep (clflush: ordered before the thread's younger stores)
     * or accum_dep (weak: ordered only by the next fence). A clean
     * line is a no-op. @p aslot_hint as in handlePieceAt.
     */
    void handleFlushAt(bool strong, SeqNum seq, ThreadId tid,
                       ThreadState &thread, Addr addr,
                       std::uint32_t aslot_hint);

    /** sfence/mfence: fold pending flush order into epoch_dep. */
    void px86Fence(ThreadState &thread);

    /**
     * PersistBarrier replayed under Px86 as its canonical x86
     * compilation: weak-flush every line the thread has dirtied,
     * then sfence.
     */
    void px86Barrier(SeqNum seq, ThreadId tid, ThreadState &thread);

    ///@}

    /** Publish staged records into log_ (const: called from log()). */
    void flushStage() const;

    /** Convert one staged record to its published form. Pure: reads
        only the (post-replay read-only) dep-set pool, so deferred
        materialization may run it from several threads on disjoint
        records. */
    PersistRecord materializeRecord(const StagedRecord &staged) const;

    /** Publish any deferred records serially (no-op when empty). */
    void materializeDeferred() const;

    TimingConfig config_;
    TimingResult result_;
    Rng rng_;

    /** @name Configuration unpacked for the hot path */
    ///@{
    bool strict_ = false;
    bool px86_ = false;         //!< ModelKind::Px86
    bool track_loads_ = true;   //!< model.detect_load_before_store
    bool record_deps_ = false;
    bool detect_races_ = false;
    bool all_scope_ = true;     //!< ConflictScope::AllAddresses
    bool unified_ = false;      //!< tracking == atomic granularity
    bool has_plugins_ = false;  //!< !config_.plugins.empty()
    bool fold_barrier_ = false; //!< non-strict SC fold at barriers
    /** log2 of the granularities (powers of two by validate()), so
        block indexing is a shift rather than a 64-bit division. */
    unsigned track_shift_ = 3;
    unsigned atomic_shift_ = 3;
    ///@}

    Arena arena_;

    /** @name Tracking-block bank (SoA, indexed by track slot) */
    ///@{
    FlatIndexMap track_index_;
    ArenaVector<Tag> track_store_;
    ArenaVector<Tag> track_load_;     //!< only with track_loads_
    ArenaVector<Tag> track_sc_;       //!< only with detect_races_
    ArenaVector<ThreadId> track_sc_src_;
    ///@}

    /**
     * @name Atomic-block bank (SoA). In unified mode it is indexed by
     * track slot (atomic_index_ unused); otherwise by its own map.
     * A block is "valid" (has a pending persist) iff its last.src is
     * not invalid_persist.
     */
    ///@{
    FlatIndexMap atomic_index_;
    ArenaVector<Tag> atomic_last_;
    ArenaVector<PersistId> atomic_group_start_;
    ArenaVector<double> atomic_group_begin_;
    ///@}

    /**
     * @name Px86 dirty-line bank (SoA, same index as the atomic bank;
     * populated only when px86_). Each line carries the merged
     * dependences of its dirty stores (`px86_ctx_`), an intrusive
     * list of dirty pieces in store order (head/tail into
     * `px86_pieces_`, linked via DirtyPiece::next), and the last
     * thread that enqueued it on a dirty_lines list (`px86_mark_`,
     * dedup so barriers flush each line once). Flushed pieces recycle
     * through the `px86_free_` free list, so steady state allocates
     * nothing.
     */
    ///@{
    struct DirtyPiece
    {
        Addr addr;
        std::uint64_t value;
        std::uint32_t next;
        std::uint32_t tslot;
        std::uint8_t size;
    };

    static constexpr std::uint32_t no_piece = ~0u;

    ArenaVector<Tag> px86_ctx_;
    ArenaVector<std::uint32_t> px86_dirty_head_;
    ArenaVector<std::uint32_t> px86_dirty_tail_;
    ArenaVector<ThreadId> px86_mark_;
    std::vector<DirtyPiece> px86_pieces_;
    std::uint32_t px86_free_ = no_piece;

    /**
     * Non-null exactly while handleFlushAt runs: persistPieceAt
     * merges each persist's out-tag here (the flushing thread's
     * strong_dep or accum_dep) instead of publishing it to
     * track_store_/epoch/accum — a flush makes data durable but says
     * nothing to readers until a fence orders it.
     */
    Tag *px86_flush_route_ = nullptr;

    /**
     * True exactly for the first piece of a flush: a flush begins its
     * own atomic persist and may not merge into a persist issued by
     * an earlier flush of the line — the earlier flush can complete
     * alone, so crash states between the two are reachable. The
     * remaining pieces of the same flush still coalesce into the
     * group the first one founds.
     */
    bool px86_fresh_group_ = false;
    ///@}

    DepSetPool deps_;
    std::vector<ThreadState> threads_;

    mutable PersistLog log_;
    mutable std::array<StagedRecord, stage_capacity> stage_;
    mutable std::size_t stage_count_ = 0;

    /**
     * Deferred-materialization mode (segment_replay.cc): flushStage
     * parks staged PODs here instead of building PersistRecords, so
     * the record construction (field copies plus dep-set vector
     * allocations — the bulk of record_log's cost) can fan out across
     * workers after the serial stitch, in exact log order. log() and
     * takeLog() fall back to serial materialization if the parallel
     * pass has not consumed the backlog.
     */
    mutable std::vector<StagedRecord> deferred_;
    bool defer_log_ = false;

    std::vector<RaceSample> race_samples_;
    PersistId next_persist_id_ = 0;
};

} // namespace persim

#endif // PERSIM_PERSISTENCY_TIMING_ENGINE_HH
