/**
 * @file
 * Persist-timing engine: the paper's evaluation methodology
 * (Section 7, "Persist Timing Simulation").
 *
 * The engine consumes a trace (as a TraceSink) and assigns every
 * atomic persist piece a completion time that respects the ordering
 * constraints of the configured persistency model, assuming infinite
 * bandwidth and banks. The maximum assigned time is the persist
 * ordering constraint critical path: the implementation-independent
 * lower bound on how long the trace's persists must take.
 *
 * Timing propagates through thread and memory state as tagged
 * timestamps:
 *
 *  - each thread (each strand, under strand persistency) carries
 *    `epoch_dep` (persists that must precede its current-epoch
 *    persists) and `accum_dep` (dependences observed during the
 *    current epoch, folded into epoch_dep at each persist barrier;
 *    under strict persistency the fold is immediate);
 *  - each tracking-granularity block carries `store_tag`/`load_tag`,
 *    the persists ordered (in persistent memory order) before the
 *    last conflicting store/load of that block;
 *  - each atomic-granularity block carries the time of its last
 *    persist, implementing strong persist atomicity and coalescing:
 *    a persist coalesces iff its dependences complete strictly before
 *    the block's previous persist.
 *
 * Two clocks are provided: discrete levels (critical path counted in
 * units of persist latency; coalescing-optimistic best case used for
 * the paper's results) and a stochastic clock (each persist adds an
 * exponential delay), which yields a random realization of persist
 * completion times used for failure injection in src/recovery/.
 */

#ifndef PERSIM_PERSISTENCY_TIMING_ENGINE_HH
#define PERSIM_PERSISTENCY_TIMING_ENGINE_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/rng.hh"
#include "common/stats.hh"
#include "memtrace/sink.hh"
#include "persistency/model.hh"
#include "persistency/persist_log.hh"

namespace persim {

/** How persist completion times advance. */
enum class ClockMode : std::uint8_t {
    /** Discrete levels: each non-coalesced persist is +1. */
    Levels,
    /** Each non-coalesced persist adds Exp(mean) random latency. */
    Stochastic,
};

/** Timing engine configuration. */
struct TimingConfig
{
    ModelConfig model;

    ClockMode clock = ClockMode::Levels;

    /** Seed for the stochastic clock. */
    std::uint64_t seed = 1;

    /** Mean persist latency (stochastic clock), in latency units. */
    double mean_latency = 1.0;

    /** Record a PersistRecord per atomic persist piece. */
    bool record_log = false;

    /**
     * Record each persist's complete direct-dependence set
     * (PersistRecord::deps), not just the binding argmax. The scalar
     * analysis keeps only the latest dependence per state because
     * only the max matters for timing; exhaustive crash-state
     * enumeration needs every constraint edge. Implies the cost of
     * carrying id sets through every tag merge — enable it only for
     * bounded model-checking runs, not the big sweeps. Requires
     * record_log.
     */
    bool record_deps = false;

    /**
     * Detect persist-epoch races (paper Section 5.2): alongside the
     * model analysis, a shadow propagation tracks, per thread, the
     * latest *foreign* persist that precedes the thread's execution
     * in SC volatile memory order (through any chain of conflicting
     * accesses). A persist whose model constraints do not cover that
     * foreign persist is "astonishingly" unordered with it despite
     * the program's synchronization — a persist-epoch race. The
     * conservative barrier discipline produces none; racing-epoch
     * and strand annotations produce them intentionally.
     */
    bool detect_races = false;

    /**
     * Coalescing window in issued persists (0 = unbounded). With
     * finite persist buffering, a pending persist eventually drains
     * to the device and can no longer absorb writes; this models that
     * by forbidding coalescing with a pending persist once more than
     * `coalesce_window` persists have been issued since that pending
     * persist was first created. The paper's best-case measure
     * corresponds to 0 (unbounded).
     */
    std::uint64_t coalesce_window = 0;
};

/** Aggregate results of one timing analysis. */
struct TimingResult
{
    /** Persist ordering constraint critical path (max persist time). */
    double critical_path = 0.0;

    /** Atomic persist pieces assigned a time (incl. coalesced). */
    std::uint64_t persists = 0;

    /** Pieces that coalesced into a previous persist. */
    std::uint64_t coalesced = 0;

    /** Coalescing attempts rejected by the finite window. */
    std::uint64_t window_blocked = 0;

    /** Persist-epoch races (persists unordered with an SC-preceding
        foreign persist); requires TimingConfig::detect_races. */
    std::uint64_t races = 0;

    /** Operations completed (OpEnd markers). */
    std::uint64_t ops = 0;

    /** Total trace events consumed. */
    std::uint64_t events = 0;

    /** Persist barriers seen. */
    std::uint64_t barriers = 0;

    /** NewStrand events seen. */
    std::uint64_t strands = 0;

    /** Average critical path per completed operation. */
    double criticalPathPerOp() const;
};

/** Streaming persist-timing analysis for one persistency model. */
class PersistTimingEngine : public TraceSink
{
  public:
    explicit PersistTimingEngine(const TimingConfig &config);

    void onEvent(const TraceEvent &event) override;
    void onFinish() override;

    const TimingConfig &config() const { return config_; }
    const TimingResult &result() const { return result_; }

    /** One example persist-epoch race. */
    struct RaceSample
    {
        SeqNum seq = 0;          //!< Trace position of the racy persist.
        ThreadId thread = 0;     //!< Thread issuing it.
        PersistId persist = invalid_persist;
        PersistId foreign = invalid_persist; //!< The persist it races.
    };

    /** Up to 16 example races (requires detect_races). */
    const std::vector<RaceSample> &raceSamples() const
    {
        return race_samples_;
    }

    /** The persist log; empty unless record_log was set. */
    const PersistLog &log() const { return log_; }

    /** Move the log out (for handing to recovery analyses). */
    PersistLog takeLog() { return std::move(log_); }

  private:
    /**
     * Tagged timestamp summarizing a set of persist dependences.
     *
     * `t`/`src`/`block` identify the latest dependence: its time, a
     * witness persist id, and the atomic block of the coalescing
     * group it belongs to (a group is all persists that merged into
     * one atomic persist: same block, same time). `oth` is the
     * maximum time of dependences *outside* that group.
     *
     * The distinction drives exact coalescing: a persist may merge
     * into its block's pending persist iff every dependence outside
     * that pending group completes strictly earlier — i.e. dep.t is
     * below the pending time, or the top dependence *is* the pending
     * group itself and dep.oth is below it. This is what lets strict
     * persistency benefit from large atomic persists (Figure 4): a
     * serialized sequence of stores into one block collapses into a
     * single atomic persist, while a dependence on a concurrent
     * persist in another block correctly blocks the merge.
     */
    struct Tag
    {
        double t = 0.0;
        PersistId src = invalid_persist;
        std::uint64_t block = ~0ULL;
        double oth = 0.0;

        /**
         * Full id set of the dependences this tag summarizes (only
         * under record_deps; null otherwise). Shared and immutable:
         * merges build fresh unions.
         */
        std::shared_ptr<const std::vector<PersistId>> deps;
    };

    /** Per-thread (per-strand) persistency state. */
    struct ThreadState
    {
        Tag epoch_dep;
        Tag accum_dep;
        std::uint64_t op = no_operation;
        PersistRole role = PersistRole::None;
        /** Shadow: latest foreign persist SC-ordered before here. */
        Tag shadow;
        /** Latest persist time this thread itself issued. */
        Tag own_persist;
    };

    /** Per tracking-granularity block conflict tags. */
    struct TrackState
    {
        Tag store_tag;
        Tag load_tag;
        /** Shadow SC tag: latest persist SC-ordered before the last
            access of this block, and the thread that recorded it. */
        Tag sc_tag;
        ThreadId sc_src = invalid_thread;
    };

    /** Per atomic-granularity block persist state. */
    struct AtomicState
    {
        Tag last;
        bool valid = false;
        /** Issue ordinal of the pending group's founding persist. */
        PersistId group_start = invalid_persist;
        /** When the pending group's device write began (the founding
            persist's base time); coalesced pieces share it. */
        double group_begin = 0.0;
    };

    /**
     * Combine two dependence summaries: the result's top group is the
     * later of the two (first wins ties across distinct groups, which
     * is conservative: a tie between different groups lands in `oth`
     * and correctly blocks coalescing); everything else folds into
     * `oth`.
     */
    static Tag mergeTag(const Tag &a, const Tag &b);

    /** Sorted-unique union of two dep-id sets (null = empty). */
    static std::shared_ptr<const std::vector<PersistId>>
    unionDeps(const std::shared_ptr<const std::vector<PersistId>> &a,
              const std::shared_ptr<const std::vector<PersistId>> &b);

    /** Advance the clock strictly past @p base. */
    double nextTime(double base);

    ThreadState &threadState(ThreadId tid);

    /** Process one <=8-byte piece of an access event. */
    void handlePiece(const TraceEvent &event, Addr addr, unsigned size,
                     std::uint64_t value, bool is_read, bool is_write);

    /** Record the shadow SC tag on a block after an access. */
    void recordScTag(TrackState &track, ThreadState &thread,
                     ThreadId tid);

    /** Handle a persist piece; returns its assigned tag. */
    Tag persistPiece(const TraceEvent &event, ThreadState &thread,
                     TrackState &track, Addr addr, unsigned size,
                     std::uint64_t value, const Tag &dep,
                     DepSource dep_source, PersistId dep_src_id);

    TimingConfig config_;
    TimingResult result_;
    Rng rng_;
    std::vector<ThreadState> threads_;
    std::unordered_map<std::uint64_t, TrackState> track_;
    std::unordered_map<std::uint64_t, AtomicState> atomic_;
    PersistLog log_;
    std::vector<RaceSample> race_samples_;
    PersistId next_persist_id_ = 0;
};

} // namespace persim

#endif // PERSIM_PERSISTENCY_TIMING_ENGINE_HH
