/**
 * @file
 * PersistRace detector: an analysis plugin reporting stores whose
 * durability order is unconstrained relative to a conflicting access
 * (after *Taming x86-TSO Persistency*'s robustness violations and
 * Jaaru/PersistRace-style dynamic detection; see DESIGN.md §14).
 *
 * Two rules, both per-trace and sound (no false positives on the
 * engine's own ground truth):
 *
 *  - **UnorderedPersist** (any model): a persist is issued while the
 *    thread's SC shadow — the latest foreign persist ordered before
 *    this thread's execution through a chain of conflicting volatile
 *    accesses — completes *later* than everything in the persist's
 *    own constraint cone. The two persists are provably unordered by
 *    the persistency model despite being ordered by the program's
 *    synchronization: recovery may observe the second without the
 *    first. This is an independent re-derivation of the engine's
 *    detect_races analysis from the plugin hook stream alone, and
 *    must agree with TimingResult::races exactly (pinned by
 *    tests/persistency/persist_race_test.cc).
 *
 *  - **DirtyRead** (Px86 only): a thread reads or overwrites a cache
 *    line holding another thread's not-yet-flushed store. TSO makes
 *    the value visible immediately, but nothing orders the reader's
 *    subsequent persists after the dirty store's eventual durability
 *    — the classic recover-to-a-flag-without-data hazard. Reported
 *    once per (dirty episode, accessing thread).
 *
 * The detector keeps its own per-line state keyed by address (it
 * never sees engine slot numbers), so it works identically under
 * unified and non-unified granularities and under serial or segment
 * (--jobs) replay.
 */

#ifndef PERSIM_PERSISTENCY_PERSIST_RACE_HH
#define PERSIM_PERSISTENCY_PERSIST_RACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/flat_map.hh"
#include "common/types.hh"
#include "persistency/analysis_plugin.hh"

namespace persim {

/** Streaming persistency-race detector (attach via TimingConfig). */
class PersistRaceDetector : public AnalysisPlugin
{
  public:
    struct Options
    {
        /** Max example races retained (counts are never capped). */
        std::size_t max_samples = 16;
    };

    enum class RaceKind : std::uint8_t {
        UnorderedPersist,
        DirtyRead,
    };

    /** One example race. */
    struct Race
    {
        RaceKind kind = RaceKind::UnorderedPersist;
        SeqNum seq = 0;      //!< Trace position of the racy event.
        Addr addr = 0;       //!< Address involved (DirtyRead: line base).
        ThreadId thread = 0; //!< Thread issuing the racy persist/access.
        /** DirtyRead: thread owning the dirty line. */
        ThreadId other = invalid_thread;
        /** UnorderedPersist: the racy persist. */
        PersistId persist = invalid_persist;
        /** UnorderedPersist: the SC-preceding foreign persist it is
            unordered with. */
        PersistId foreign = invalid_persist;
    };

    PersistRaceDetector() : PersistRaceDetector(Options{}) {}
    explicit PersistRaceDetector(Options options);

    void onAttach(const TimingConfig &config) override;
    void onAccess(const AccessInfo &info) override;
    void onPersistIssue(const PersistInfo &info) override;
    void onFlush(const FlushInfo &info) override;
    void onTraceEnd(const TimingResult &result) override;

    std::uint64_t unorderedPersists() const { return unordered_; }
    std::uint64_t dirtyReads() const { return dirty_reads_; }
    std::uint64_t total() const { return unordered_ + dirty_reads_; }

    const std::vector<Race> &samples() const { return samples_; }

    /** Human-readable report of counts and sample races. */
    std::string format() const;

    /** Drop all state and counts (for reuse across replays). */
    void reset();

  private:
    /** Latest-persist tag propagated through conflicting accesses. */
    struct ScTag
    {
        double t = 0.0;
        PersistId src = invalid_persist;
    };

    struct ThreadShadow
    {
        ScTag shadow;      //!< Latest SC-preceding foreign persist.
        ScTag own;         //!< Latest persist this thread issued.
    };

    ThreadShadow &shadowState(ThreadId tid);
    void commitPending();
    void recordRace(const Race &race);

    Options options_;

    unsigned track_shift_ = 3;
    unsigned atomic_shift_ = 6;
    bool px86_ = false;

    /** @name Rule 1: SC shadow propagation (tracking granularity) */
    ///@{
    FlatIndexMap sc_index_;
    std::vector<ScTag> sc_tag_;
    std::vector<ThreadId> sc_writer_;
    std::vector<ThreadShadow> threads_;
    /**
     * The engine records a block's SC tag *after* handling the access
     * (so an access's own persist is included), but the plugin hook
     * fires before. The commit is therefore deferred until the next
     * hook that could read or change the involved state: the next
     * access, or a flush (whose persists would otherwise leak into
     * the pending tag).
     */
    bool pending_ = false;
    std::uint32_t pending_slot_ = 0;
    ThreadId pending_tid_ = 0;
    ///@}

    /** @name Rule 2: Px86 dirty-line ownership (atomic granularity) */
    ///@{
    FlatIndexMap line_index_;
    std::vector<ThreadId> line_owner_;   //!< invalid_thread = clean.
    std::vector<SeqNum> line_store_seq_; //!< Seq of the dirtying store.
    /** Threads already reported against this dirty episode (bit =
        tid & 63: dedup only, collisions just merge episodes). */
    std::vector<std::uint64_t> line_reported_;
    ///@}

    std::uint64_t unordered_ = 0;
    std::uint64_t dirty_reads_ = 0;
    std::vector<Race> samples_;
};

const char *raceKindName(PersistRaceDetector::RaceKind kind);

} // namespace persim

#endif // PERSIM_PERSISTENCY_PERSIST_RACE_HH
