/**
 * @file
 * Classification of binding persist dependences (Figure 2).
 *
 * Figure 2 of the paper divides the persist-order constraints of the
 * queue workloads into constraints *required* for recovery (entry
 * data before the same insert's head update; head updates in insert
 * order) and *unnecessary* constraints a persistency model introduces:
 * class "A" (serialization of data persists within one insert,
 * removed by epoch persistency) and class "B" (serialization between
 * different inserts' data, removed by strand persistency).
 *
 * The timing engine records, for each persist, its binding (argmax)
 * dependence; classifying those bindings by the roles and operations
 * of the two endpoint persists reproduces the figure's taxonomy.
 */

#ifndef PERSIM_PERSISTENCY_CLASSIFY_HH
#define PERSIM_PERSISTENCY_CLASSIFY_HH

#include <cstdint>
#include <string>

#include "persistency/persist_log.hh"

namespace persim {

/** Category of one binding persist dependence. */
enum class ConstraintClass : std::uint8_t {
    /** No predecessor (first-level persist). */
    Unconstrained,
    /** Required: same operation, data persist before head persist. */
    RequiredDataToHead,
    /** Required: head persists serialize in insert order. */
    RequiredHeadToHead,
    /** Class A: data persists of one operation serialized. */
    UnnecessaryIntraOp,
    /** Class B: persists of different operations serialized
        (other than head-to-head). */
    UnnecessaryInterOp,
    /** Coalesced into an earlier persist (no delay contributed). */
    Coalesced,
    /** Anything not attributable (missing role/op annotations). */
    Other,
};

/** Human-readable name of a constraint class. */
const char *constraintClassName(ConstraintClass cls);

/** Per-class counts of binding dependences over a persist log. */
struct ConstraintCensus
{
    std::uint64_t counts[7] = {};

    std::uint64_t total() const;
    std::uint64_t required() const;
    std::uint64_t unnecessary() const;

    std::uint64_t
    of(ConstraintClass cls) const
    {
        return counts[static_cast<std::size_t>(cls)];
    }

    /** Multi-line report. */
    std::string render() const;
};

/** Classify one record's binding dependence within its log. */
ConstraintClass classifyBinding(const PersistLog &log,
                                const PersistRecord &record);

/** Census of all binding dependences in @p log. */
ConstraintCensus censusOf(const PersistLog &log);

} // namespace persim

#endif // PERSIM_PERSISTENCY_CLASSIFY_HH
