/**
 * @file
 * Analysis-plugin interface on the persist-timing engine.
 *
 * A plugin is a passive observer the engine notifies at the points
 * where persistency-relevant facts are decided: every tracked access
 * piece, every persist (issue and completion), every Px86 cache-line
 * flush, every fence/barrier, and the end-of-trace crash-cut
 * boundary. Plugins compose with every engine feature — record_log,
 * record_deps, deferred log materialization, and intra-trace segment
 * replay — because the hooks fire from the engine's own piece
 * handlers, which both the serial path and the segment-replay stitch
 * execute in identical trace order. A plugin attached to a
 * TimingConfig therefore sees a bit-identical event stream whether
 * the trace is replayed serially or with --jobs.
 *
 * Scope: plugins observe exactly the accesses the engine tracks.
 * Under ConflictScope::AllAddresses (every built-in model except
 * BPFS) that is every access piece; under PersistentOnly, volatile
 * pieces are skipped before the hook unless detect_races re-enables
 * tracking. Granularity: info structs carry raw piece addresses;
 * plugins that reason per cache line derive the line themselves from
 * the shifts in the attached TimingConfig (the engine's banks are
 * not exposed — under the non-unified px86 preset tracking and
 * atomic granularity differ, so slot numbers would be meaningless to
 * a plugin anyway).
 *
 * Hooks are plain virtuals behind a has-plugins flag, so a config
 * with no plugins pays one untaken branch per site and the hot path
 * stays unchanged (asserted by the golden replay tests).
 */

#ifndef PERSIM_PERSISTENCY_ANALYSIS_PLUGIN_HH
#define PERSIM_PERSISTENCY_ANALYSIS_PLUGIN_HH

#include <cstdint>

#include "common/types.hh"
#include "persistency/persist_log.hh"

namespace persim {

struct TimingConfig;
struct TimingResult;

/** One tracked access piece (<=8 bytes), before the engine acts. */
struct AccessInfo
{
    SeqNum seq = 0;            //!< Trace position of the access.
    Addr addr = 0;             //!< Piece address.
    std::uint64_t value = 0;   //!< Piece value (stores/RMWs).
    ThreadId thread = 0;
    std::uint8_t size = 0;     //!< Piece size in bytes.
    bool is_write = false;
    bool persistent = false;   //!< isPersistentAddr(addr).
};

/** One atomic persist piece, with its timing decided. */
struct PersistInfo
{
    PersistId id = invalid_persist;
    SeqNum seq = 0;            //!< Trace position of the causing event.
    Addr addr = 0;
    std::uint64_t value = 0;
    double start = 0.0;        //!< In-flight window start.
    double time = 0.0;         //!< Completion time.
    /** Upper bound on the completion time of every persist in this
        persist's constraint cone (= start, or the group time when
        coalescing). A foreign persist past this bound is provably
        unordered with this one. */
    double race_bound = 0.0;
    ThreadId thread = 0;       //!< Issuing (for flushes: flushing) thread.
    std::uint64_t op = no_operation;
    PersistId binding = invalid_persist;
    DepSource binding_source = DepSource::None;
    /** Full direct-dependence set (record_deps only, else null/0).
        Valid only for the duration of the hook call. */
    const PersistId *deps = nullptr;
    std::uint32_t dep_count = 0;
    std::uint8_t size = 0;
    bool coalesced = false;
};

/** One Px86 cache-line flush (clflush/clflushopt/clwb/barrier leg). */
struct FlushInfo
{
    SeqNum seq = 0;
    /** Base address of the flushed line (atomic granularity), or
        invalid_addr for a barrier-compiled flush of a line another
        thread already cleaned (no dirty piece survives to name it —
        such a flush persists nothing). */
    Addr line_base = invalid_addr;
    ThreadId thread = 0;
    bool strong = false;       //!< clflush (vs clflushopt/clwb/barrier).
    bool line_dirty = false;   //!< Pieces persisted by this flush.
};

/** Ordering-point kinds reported to onFence. */
enum class FenceEvent : std::uint8_t {
    StoreFence,     //!< sfence
    FullFence,      //!< mfence
    PersistBarrier, //!< persist barrier / sync (any model)
};

/**
 * Base class for timing-engine analysis plugins. Hooks fire in trace
 * order on the replay thread; default implementations are no-ops so
 * plugins override only what they need. The engine does not own the
 * plugin; the pointer in TimingConfig::plugins must outlive replay.
 */
class AnalysisPlugin
{
  public:
    virtual ~AnalysisPlugin() = default;

    /** Engine construction: the validated config, for granularities
        and model flags. */
    virtual void onAttach(const TimingConfig &config)
    {
        (void)config;
    }

    /** A tracked access piece, before the engine updates any state. */
    virtual void onAccess(const AccessInfo &info) { (void)info; }

    /**
     * A persist piece is issued / completes. The engine assigns
     * completion eagerly, so the two hooks fire back-to-back with the
     * same info; plugins modelling in-flight windows should use
     * info.start and info.time rather than hook arrival order.
     */
    virtual void onPersistIssue(const PersistInfo &info) { (void)info; }
    virtual void onPersistComplete(const PersistInfo &info)
    {
        (void)info;
    }

    /** A Px86 flush event, before its pieces persist (the persists
        follow as onPersistIssue/Complete calls when line_dirty). The
        SC-persistency models treat flushes as no-ops and do not
        report them. */
    virtual void onFlush(const FlushInfo &info) { (void)info; }

    /** A fence or persist barrier, after the engine applied it (a
        Px86 barrier's compiled flushes report first). */
    virtual void onFence(FenceEvent kind, ThreadId thread)
    {
        (void)kind;
        (void)thread;
    }

    /** A NewStrand event, after the strand state reset. */
    virtual void onStrand(ThreadId thread) { (void)thread; }

    /** End of trace: the crash-cut boundary. The result is final
        (including the Px86 unflushed audit); crash-state enumeration
        over the persist log happens after this point. */
    virtual void onTraceEnd(const TimingResult &result)
    {
        (void)result;
    }
};

} // namespace persim

#endif // PERSIM_PERSISTENCY_ANALYSIS_PLUGIN_HH
