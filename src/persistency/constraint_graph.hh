/**
 * @file
 * Generic happens-before constraint graph with cycle detection.
 *
 * Used to reason about persist-order constraint systems abstractly:
 * e.g. Figure 1's demonstration that store-visibility reordering
 * across persist barriers, enforced persist barriers, and strong
 * persist atomicity cannot hold simultaneously (their constraints
 * form a cycle).
 */

#ifndef PERSIM_PERSISTENCY_CONSTRAINT_GRAPH_HH
#define PERSIM_PERSISTENCY_CONSTRAINT_GRAPH_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace persim {

/** A directed graph of happens-before constraints between events. */
class ConstraintGraph
{
  public:
    using NodeId = std::size_t;

    /** Add a named node; returns its id. */
    NodeId addNode(const std::string &label);

    /** Add a happens-before edge: @p from must precede @p to. */
    void addEdge(NodeId from, NodeId to, const std::string &why = "");

    std::size_t nodeCount() const { return labels_.size(); }
    std::size_t edgeCount() const { return edges_.size(); }
    const std::string &label(NodeId node) const { return labels_.at(node); }

    /** True iff the constraints are satisfiable (graph is acyclic). */
    bool satisfiable() const;

    /**
     * A cycle witnessing unsatisfiability, as node ids in order (the
     * first node is repeated at the end); empty if satisfiable.
     */
    std::vector<NodeId> findCycle() const;

    /**
     * A topological order of the nodes (one valid persist order);
     * fatals if the constraints are unsatisfiable.
     */
    std::vector<NodeId> topologicalOrder() const;

    /** Render the cycle (or "satisfiable") for reports. */
    std::string explain() const;

    /** Rationale recorded with the @p index-th inserted edge. */
    std::string_view edgeWhy(std::size_t index) const;

  private:
    static constexpr std::uint32_t no_edge = ~0U;

    /**
     * Edges live in one append-only pool; each node chains its
     * out-edges through `next` in insertion order (head/tail in
     * NodeCell), so adding an edge never reallocates a per-node
     * vector and traversal order matches the old vector-of-vectors
     * layout exactly. Rationale strings are slices of one shared
     * blob instead of a std::string per edge.
     */
    struct EdgeCell
    {
        NodeId to;
        std::uint32_t next;
        std::uint32_t why_off;
        std::uint32_t why_len;
    };

    struct NodeCell
    {
        std::uint32_t head = no_edge;
        std::uint32_t tail = no_edge;
    };

    std::vector<std::string> labels_;
    std::vector<NodeCell> nodes_;
    std::vector<EdgeCell> edges_;
    std::string why_blob_;
};

} // namespace persim

#endif // PERSIM_PERSISTENCY_CONSTRAINT_GRAPH_HH
