/**
 * @file
 * Generic happens-before constraint graph with cycle detection.
 *
 * Used to reason about persist-order constraint systems abstractly:
 * e.g. Figure 1's demonstration that store-visibility reordering
 * across persist barriers, enforced persist barriers, and strong
 * persist atomicity cannot hold simultaneously (their constraints
 * form a cycle).
 */

#ifndef PERSIM_PERSISTENCY_CONSTRAINT_GRAPH_HH
#define PERSIM_PERSISTENCY_CONSTRAINT_GRAPH_HH

#include <cstdint>
#include <string>
#include <vector>

namespace persim {

/** A directed graph of happens-before constraints between events. */
class ConstraintGraph
{
  public:
    using NodeId = std::size_t;

    /** Add a named node; returns its id. */
    NodeId addNode(const std::string &label);

    /** Add a happens-before edge: @p from must precede @p to. */
    void addEdge(NodeId from, NodeId to, const std::string &why = "");

    std::size_t nodeCount() const { return labels_.size(); }
    std::size_t edgeCount() const { return edge_count_; }
    const std::string &label(NodeId node) const { return labels_.at(node); }

    /** True iff the constraints are satisfiable (graph is acyclic). */
    bool satisfiable() const;

    /**
     * A cycle witnessing unsatisfiability, as node ids in order (the
     * first node is repeated at the end); empty if satisfiable.
     */
    std::vector<NodeId> findCycle() const;

    /**
     * A topological order of the nodes (one valid persist order);
     * fatals if the constraints are unsatisfiable.
     */
    std::vector<NodeId> topologicalOrder() const;

    /** Render the cycle (or "satisfiable") for reports. */
    std::string explain() const;

  private:
    struct Edge
    {
        NodeId to;
        std::string why;
    };

    std::vector<std::string> labels_;
    std::vector<std::vector<Edge>> adjacency_;
    std::size_t edge_count_ = 0;
};

} // namespace persim

#endif // PERSIM_PERSISTENCY_CONSTRAINT_GRAPH_HH
