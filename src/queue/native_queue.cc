#include "queue/native_queue.hh"

#include <chrono>
#include <cstring>
#include <thread>

#include "common/bitops.hh"
#include "common/error.hh"
#include "queue/payload.hh"

namespace persim {

NativeCwlQueue::NativeCwlQueue(std::uint64_t capacity, std::uint64_t pad,
                               std::size_t threads)
    : capacity_(capacity), pad_(pad), data_(capacity)
{
    PERSIM_REQUIRE(isPowerOfTwo(pad) && pad >= 16,
                   "pad must be a power of two >= 16");
    for (std::size_t i = 0; i < threads; ++i)
        qnodes_.push_back(std::make_unique<NativeMcsLock::Qnode>());
}

std::uint64_t
NativeCwlQueue::slotBytes(std::uint64_t len) const
{
    return alignUp(8 + len, pad_);
}

void
NativeCwlQueue::insert(std::size_t slot, const void *payload,
                       std::uint64_t len)
{
    NativeMcsLock::Qnode &qnode = *qnodes_[slot];
    lock_.lock(qnode);
    const std::uint64_t pos = head_ % capacity_;
    // Entries never wrap in the benchmark configuration (the data
    // segment is a multiple of the slot size).
    std::memcpy(data_.data() + pos, &len, 8);
    std::memcpy(data_.data() + pos + 8, payload, len);
    head_ += slotBytes(len);
    lock_.unlock(qnode);
}

NativeTlcQueue::NativeTlcQueue(std::uint64_t capacity, std::uint64_t pad,
                               std::size_t threads)
    : capacity_(capacity), pad_(pad), data_(capacity)
{
    PERSIM_REQUIRE(isPowerOfTwo(pad) && pad >= 16,
                   "pad must be a power of two >= 16");
    for (std::size_t i = 0; i < threads; ++i) {
        reserve_qnodes_.push_back(std::make_unique<NativeMcsLock::Qnode>());
        update_qnodes_.push_back(std::make_unique<NativeMcsLock::Qnode>());
    }
}

NativeTlcQueue::~NativeTlcQueue()
{
    Node *node = list_head_;
    while (node != nullptr) {
        Node *next = node->next;
        delete node;
        node = next;
    }
}

std::uint64_t
NativeTlcQueue::slotBytes(std::uint64_t len) const
{
    return alignUp(8 + len, pad_);
}

void
NativeTlcQueue::insert(std::size_t slot, const void *payload,
                       std::uint64_t len)
{
    NativeMcsLock::Qnode &qr = *reserve_qnodes_[slot];
    NativeMcsLock::Qnode &qu = *update_qnodes_[slot];

    reserve_.lock(qr);
    const std::uint64_t start = headv_;
    headv_ += slotBytes(len);
    auto *node = new Node;
    node->end = start + slotBytes(len);
    if (list_tail_ == nullptr) {
        list_head_ = node;
    } else {
        list_tail_->next = node;
    }
    list_tail_ = node;
    reserve_.unlock(qr);

    const std::uint64_t pos = start % capacity_;
    std::memcpy(data_.data() + pos, &len, 8);
    std::memcpy(data_.data() + pos + 8, payload, len);

    update_.lock(qu);
    node->done = true;
    reserve_.lock(qr);
    std::uint64_t newhead = 0;
    bool popped = false;
    Node *cursor = list_head_;
    while (cursor != nullptr && cursor->done) {
        newhead = cursor->end;
        Node *next = cursor->next;
        delete cursor;
        cursor = next;
        popped = true;
    }
    list_head_ = cursor;
    if (cursor == nullptr)
        list_tail_ = nullptr;
    reserve_.unlock(qr);
    if (popped)
        head_ = newhead;
    update_.unlock(qu);
}

std::unique_ptr<NativeQueue>
createNativeQueue(QueueKind kind, std::uint64_t capacity, std::uint64_t pad,
                  std::size_t threads)
{
    switch (kind) {
      case QueueKind::CopyWhileLocked:
        return std::make_unique<NativeCwlQueue>(capacity, pad, threads);
      case QueueKind::TwoLockConcurrent:
        return std::make_unique<NativeTlcQueue>(capacity, pad, threads);
    }
    PERSIM_FATAL("unknown queue kind");
}

double
measureNativeInsertRate(QueueKind kind, std::size_t threads,
                        std::uint64_t inserts_per_thread,
                        std::uint64_t entry_bytes)
{
    PERSIM_REQUIRE(threads >= 1, "need at least one thread");
    PERSIM_REQUIRE(entry_bytes >= min_payload_bytes, "entry too small");

    const std::uint64_t pad = 64;
    const std::uint64_t slot = alignUp(8 + entry_bytes, pad);
    // Size the segment so offsets wrap onto whole slots.
    const std::uint64_t capacity =
        std::max<std::uint64_t>(slot * 1024, 1 << 20) / slot * slot;
    auto queue = createNativeQueue(kind, capacity, pad, threads);

    const auto payload = makePayload(1, entry_bytes);
    const auto start = std::chrono::steady_clock::now();
    if (threads == 1) {
        for (std::uint64_t i = 0; i < inserts_per_thread; ++i)
            queue->insert(0, payload.data(), entry_bytes);
    } else {
        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (std::size_t t = 0; t < threads; ++t) {
            pool.emplace_back([&queue, &payload, t, inserts_per_thread,
                               entry_bytes] {
                for (std::uint64_t i = 0; i < inserts_per_thread; ++i)
                    queue->insert(t, payload.data(), entry_bytes);
            });
        }
        for (auto &thread : pool)
            thread.join();
    }
    const auto elapsed = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - start).count();
    const double total = static_cast<double>(inserts_per_thread) *
        static_cast<double>(threads);
    return total / elapsed;
}

} // namespace persim
