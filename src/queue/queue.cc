#include "queue/queue.hh"

#include <cstring>
#include <sstream>

#include "common/bitops.hh"
#include "common/error.hh"
#include "queue/payload.hh"

namespace persim {

namespace {

constexpr std::uint64_t header_bytes = 128;
constexpr std::uint64_t node_end_off = 0;
constexpr std::uint64_t node_done_off = 8;
constexpr std::uint64_t node_next_off = 16;
constexpr std::uint64_t node_bytes = 24;

/** Read @p n bytes circularly from a queue data segment image. */
void
readCircular(const MemoryImage &image, const QueueLayout &layout,
             std::uint64_t off, std::uint8_t *dst, std::uint64_t n)
{
    off %= layout.capacity;
    const std::uint64_t first = std::min(n, layout.capacity - off);
    image.readBytes(dst, layout.data + off, first);
    if (first < n)
        image.readBytes(dst + first, layout.data, n - first);
}

} // namespace

const char *
queueKindName(QueueKind kind)
{
    switch (kind) {
      case QueueKind::CopyWhileLocked:
        return "copy_while_locked";
      case QueueKind::TwoLockConcurrent:
        return "two_lock_concurrent";
    }
    return "unknown";
}

std::uint64_t
QueueLayout::slotBytes(std::uint64_t len) const
{
    return alignUp(8 + len, pad);
}

std::uint64_t
QueueLayout::headChecksum(std::uint64_t head)
{
    // splitmix64 finalizer; nonzero so an unwritten checksum word
    // never validates any head value.
    std::uint64_t z = head + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    return z == 0 ? 1 : z;
}

std::map<std::uint64_t, GoldenEntry>
PersistentQueue::golden() const
{
    std::lock_guard<std::mutex> guard(golden_mutex_);
    return golden_;
}

void
PersistentQueue::recordGolden(std::uint64_t offset, std::uint64_t op_id,
                              std::uint64_t len)
{
    std::lock_guard<std::mutex> guard(golden_mutex_);
    golden_[offset] = GoldenEntry{op_id, len};
}

void
PersistentQueue::writeCircular(ThreadCtx &ctx, std::uint64_t off,
                               const void *src, std::uint64_t n)
{
    off %= layout_.capacity;
    const auto *bytes = static_cast<const std::uint8_t *>(src);
    const std::uint64_t first = std::min(n, layout_.capacity - off);
    ctx.copyIn(layout_.data + off, bytes, first);
    if (first < n)
        ctx.copyIn(layout_.data, bytes + first, n - first);
}

void
PersistentQueue::writeEntry(ThreadCtx &ctx, std::uint64_t pos,
                            const void *payload, std::uint64_t len)
{
    std::uint8_t len_word[8];
    std::memcpy(len_word, &len, 8);
    writeCircular(ctx, pos % layout_.capacity, len_word, 8);
    writeCircular(ctx, (pos + 8) % layout_.capacity, payload, len);
}

void
PersistentQueue::checkOverrun(ThreadCtx &ctx, std::uint64_t head,
                              std::uint64_t slot_bytes)
{
    if (options_.allow_overwrite)
        return;
    const std::uint64_t tail = ctx.load(layout_.tailAddr());
    PERSIM_REQUIRE(head + slot_bytes - tail <= layout_.capacity,
                   "queue overrun: capacity " << layout_.capacity
                   << " cannot hold " << (head + slot_bytes - tail)
                   << " live bytes (size the queue for the workload)");
}

void
PersistentQueue::persistBarrier(ThreadCtx &ctx)
{
    if (options_.fence_with_barriers)
        ctx.fence();
    ctx.persistBarrier();
}

std::unique_ptr<CwlQueue>
CwlQueue::create(ThreadCtx &ctx, const QueueOptions &options,
                 std::size_t threads)
{
    PERSIM_REQUIRE(isPowerOfTwo(options.pad) && options.pad >= 16,
                   "pad must be a power of two >= 16");
    PERSIM_REQUIRE(options.capacity >= options.pad &&
                   options.capacity % options.pad == 0,
                   "capacity must be a positive multiple of pad");
    PERSIM_REQUIRE(threads >= 1, "need at least one thread slot");

    QueueLayout layout;
    layout.header = ctx.pmalloc(header_bytes, 64);
    layout.data = ctx.pmalloc(options.capacity, 64);
    layout.capacity = options.capacity;
    layout.pad = options.pad;
    layout.has_head_checksum = options.checksummed_head;
    ctx.store(layout.headAddr(), 0);
    if (layout.has_head_checksum)
        ctx.store(layout.headChecksumAddr(),
                  QueueLayout::headChecksum(0));
    ctx.store(layout.tailAddr(), 0);
    // Initialization is complete and must be durable before any
    // insert's persists (and keeps annotation variants comparable:
    // every variant starts its first epoch after the same barrier).
    ctx.persistBarrier();

    McsLock lock = McsLock::create(ctx);
    std::vector<Addr> qnodes;
    qnodes.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i)
        qnodes.push_back(McsLock::createQnode(ctx));

    return std::unique_ptr<CwlQueue>(
        new CwlQueue(layout, options, lock, std::move(qnodes)));
}

void
CwlQueue::insert(ThreadCtx &ctx, std::size_t slot, const void *payload,
                 std::uint64_t len, std::uint64_t op_id)
{
    PERSIM_REQUIRE(slot < qnodes_.size(), "bad thread slot");
    PERSIM_REQUIRE(len >= min_payload_bytes, "payload too short");
    const Addr qnode = qnodes_[slot];
    const bool conservative = options_.conservative_barriers;

    ctx.marker(MarkerCode::OpBegin, op_id);
    if (conservative)
        persistBarrier(ctx);       // Alg. 1 line 3
    lock_.lock(ctx, qnode);         // line 4
    if (conservative)
        persistBarrier(ctx);       // line 5 ("removing allows race")
    if (options_.use_strands)
        ctx.newStrand();            // line 6

    const std::uint64_t head = ctx.load(layout_.headAddr());
    const std::uint64_t slot_bytes = layout_.slotBytes(len);
    checkOverrun(ctx, head, slot_bytes);
    recordGolden(head, op_id, len);

    ctx.marker(MarkerCode::RoleData);
    writeEntry(ctx, head, payload, len);    // line 7
    if (!options_.omit_data_head_barrier)
        persistBarrier(ctx);               // line 8 (required)
    ctx.marker(MarkerCode::RoleHead);
    ctx.store(layout_.headAddr(), head + slot_bytes); // line 9
    // Deliberately unordered with the head store: both are in the
    // same epoch, so a crash can separate the pair. Recovery treats
    // a mismatched pair as an untrusted head, never as corruption.
    if (layout_.has_head_checksum)
        ctx.store(layout_.headChecksumAddr(),
                  QueueLayout::headChecksum(head + slot_bytes));

    // Line 11: always emitted. Keeping this barrier (ending the head
    // persist's epoch) is what makes the racing variant match the
    // conservative one on a single thread, as the paper's Table 1
    // reports; the "racing" relaxation drops only the barriers that
    // bracket lock operations (lines 3, 5, 13).
    persistBarrier(ctx);
    lock_.unlock(ctx, qnode);       // line 12
    if (conservative)
        persistBarrier(ctx);       // line 13
    ctx.marker(MarkerCode::OpEnd, op_id);
}

bool
CwlQueue::tryRemove(ThreadCtx &ctx, std::size_t slot,
                    std::vector<std::uint8_t> &out)
{
    PERSIM_REQUIRE(slot < qnodes_.size(), "bad thread slot");
    const Addr qnode = qnodes_[slot];
    const bool conservative = options_.conservative_barriers;

    if (conservative)
        persistBarrier(ctx);
    lock_.lock(ctx, qnode);
    if (conservative)
        persistBarrier(ctx);

    const std::uint64_t tail = ctx.load(layout_.tailAddr());
    const std::uint64_t head = ctx.load(layout_.headAddr());
    if (tail == head) {
        if (conservative)
            persistBarrier(ctx);
        lock_.unlock(ctx, qnode);
        if (conservative)
            persistBarrier(ctx);
        return false;
    }

    // Read the length word and payload (circularly).
    std::uint8_t len_word[8];
    const std::uint64_t base = tail % layout_.capacity;
    const std::uint64_t first = std::min<std::uint64_t>(
        8, layout_.capacity - base);
    ctx.copyOut(len_word, layout_.data + base, first);
    if (first < 8)
        ctx.copyOut(len_word + first, layout_.data, 8 - first);
    std::uint64_t len = 0;
    std::memcpy(&len, len_word, 8);
    PERSIM_REQUIRE(len >= min_payload_bytes &&
                   layout_.slotBytes(len) <= head - tail,
                   "corrupt entry at tail during remove");

    out.resize(len);
    std::uint64_t off = (tail + 8) % layout_.capacity;
    const std::uint64_t chunk = std::min(len, layout_.capacity - off);
    ctx.copyOut(out.data(), layout_.data + off, chunk);
    if (chunk < len)
        ctx.copyOut(out.data() + chunk, layout_.data, len - chunk);

    // Order the tail persist after the reads (strand idiom: the loads
    // above establish dependences via strong persist atomicity).
    persistBarrier(ctx);
    ctx.store(layout_.tailAddr(), tail + layout_.slotBytes(len));

    if (conservative)
        persistBarrier(ctx);
    lock_.unlock(ctx, qnode);
    if (conservative)
        persistBarrier(ctx);
    return true;
}

std::unique_ptr<TlcQueue>
TlcQueue::create(ThreadCtx &ctx, const QueueOptions &options,
                 std::size_t threads)
{
    PERSIM_REQUIRE(isPowerOfTwo(options.pad) && options.pad >= 16,
                   "pad must be a power of two >= 16");
    PERSIM_REQUIRE(options.capacity >= options.pad &&
                   options.capacity % options.pad == 0,
                   "capacity must be a positive multiple of pad");
    PERSIM_REQUIRE(threads >= 1, "need at least one thread slot");

    QueueLayout layout;
    layout.header = ctx.pmalloc(header_bytes, 64);
    layout.data = ctx.pmalloc(options.capacity, 64);
    layout.capacity = options.capacity;
    layout.pad = options.pad;
    layout.has_head_checksum = options.checksummed_head;
    ctx.store(layout.headAddr(), 0);
    if (layout.has_head_checksum)
        ctx.store(layout.headChecksumAddr(),
                  QueueLayout::headChecksum(0));
    ctx.store(layout.tailAddr(), 0);
    // See CwlQueue::create: initialization ends with a barrier.
    ctx.persistBarrier();

    McsLock reserve = McsLock::create(ctx);
    McsLock update = McsLock::create(ctx);
    const Addr headv = ctx.vmalloc(8, 64);
    ctx.store(headv, 0);
    const Addr list_head = ctx.vmalloc(8, 64);
    ctx.store(list_head, 0);
    const Addr list_tail = ctx.vmalloc(8, 64);
    ctx.store(list_tail, 0);

    std::vector<Addr> reserve_qnodes;
    std::vector<Addr> update_qnodes;
    for (std::size_t i = 0; i < threads; ++i) {
        reserve_qnodes.push_back(McsLock::createQnode(ctx));
        update_qnodes.push_back(McsLock::createQnode(ctx));
    }

    return std::unique_ptr<TlcQueue>(new TlcQueue(
        layout, options, reserve, update, headv, list_head, list_tail,
        std::move(reserve_qnodes), std::move(update_qnodes)));
}

void
TlcQueue::insert(ThreadCtx &ctx, std::size_t slot, const void *payload,
                 std::uint64_t len, std::uint64_t op_id)
{
    PERSIM_REQUIRE(slot < reserve_qnodes_.size(), "bad thread slot");
    PERSIM_REQUIRE(len >= min_payload_bytes, "payload too short");
    const Addr qr = reserve_qnodes_[slot];
    const Addr qu = update_qnodes_[slot];
    const std::uint64_t slot_bytes = layout_.slotBytes(len);

    ctx.marker(MarkerCode::OpBegin, op_id);

    // Reserve data-segment space and enqueue an insert-list node
    // (Alg. 1 lines 17-20).
    reserve_.lock(ctx, qr);
    const std::uint64_t start = ctx.load(headv_);
    checkOverrun(ctx, start, slot_bytes);
    ctx.store(headv_, start + slot_bytes);
    const Addr node = ctx.vmalloc(node_bytes, 64);
    ctx.store(node + node_end_off, start + slot_bytes);
    ctx.store(node + node_done_off, 0);
    ctx.store(node + node_next_off, 0);
    const Addr old_tail = ctx.load(list_tail_);
    if (old_tail == 0) {
        ctx.store(list_head_, node);
    } else {
        ctx.store(old_tail + node_next_off, node);
    }
    ctx.store(list_tail_, node);
    recordGolden(start, op_id, len);
    reserve_.unlock(ctx, qr);

    if (options_.use_strands)
        ctx.newStrand();            // line 21

    ctx.marker(MarkerCode::RoleData);
    writeEntry(ctx, start, payload, len);   // line 22

    // End the data epoch before publishing completion, so that a
    // *different* thread committing this entry inherits the data
    // persists (see the file comment). This also serves as the
    // Algorithm 1 line-27 ordering for the self-commit path.
    if (options_.barrier_before_publish && !options_.omit_data_head_barrier)
        persistBarrier(ctx);

    update_.lock(ctx, qu);          // line 23
    ctx.store(node + node_done_off, 1);

    // Pop the longest completed prefix (line 24; the "double-checked
    // lock" note: list surgery requires the reserve lock as well).
    reserve_.lock(ctx, qr);
    std::uint64_t newhead = 0;
    bool popped = false;
    Addr cursor = ctx.load(list_head_);
    while (cursor != 0 && ctx.load(cursor + node_done_off) == 1) {
        newhead = ctx.load(cursor + node_end_off);
        const Addr next = ctx.load(cursor + node_next_off);
        ctx.store(list_head_, next);
        if (next == 0)
            ctx.store(list_tail_, 0);
        ctx.vfree(cursor);
        cursor = next;
        popped = true;
    }
    reserve_.unlock(ctx, qr);

    if (popped) {                   // line 26
        if (!options_.omit_data_head_barrier)
            persistBarrier(ctx);   // line 27
        ctx.marker(MarkerCode::RoleHead);
        ctx.store(layout_.headAddr(), newhead); // line 28
        if (layout_.has_head_checksum)
            ctx.store(layout_.headChecksumAddr(),
                      QueueLayout::headChecksum(newhead));
    }
    update_.unlock(ctx, qu);        // line 31
    ctx.marker(MarkerCode::OpEnd, op_id);
}

bool
TlcQueue::tryRemove(ThreadCtx &, std::size_t, std::vector<std::uint8_t> &)
{
    PERSIM_FATAL("Two-Lock Concurrent removal is not defined by the "
                 "paper; use CopyWhileLocked for consumer workloads");
}

std::unique_ptr<PersistentQueue>
createQueue(ThreadCtx &ctx, QueueKind kind, const QueueOptions &options,
            std::size_t threads)
{
    switch (kind) {
      case QueueKind::CopyWhileLocked:
        return CwlQueue::create(ctx, options, threads);
      case QueueKind::TwoLockConcurrent:
        return TlcQueue::create(ctx, options, threads);
    }
    PERSIM_FATAL("unknown queue kind");
}

namespace {

/**
 * RecoveryMode::DetectAndDiscard: graceful degradation for images a
 * faulty device produced (torn persists, media errors, lost drains).
 */
RecoveryReport
recoverDegraded(const MemoryImage &image, const QueueLayout &layout)
{
    RecoveryReport report;
    report.head = image.load(layout.headAddr(), 8);
    report.tail = image.load(layout.tailAddr(), 8);

    report.head_trusted = layout.has_head_checksum &&
        image.load(layout.headChecksumAddr(), 8) ==
            QueueLayout::headChecksum(report.head) &&
        report.tail <= report.head &&
        report.head - report.tail <= layout.capacity &&
        report.head % layout.pad == 0 &&
        report.tail % layout.pad == 0;

    if (report.head_trusted) {
        // The head is authoritative: every slot in [tail, head) was
        // committed. Discard entries that fail validation — each one
        // is detectable (and reportable) data loss.
        std::uint64_t pos = report.tail;
        while (pos < report.head) {
            if (report.head - pos < layout.pad) {
                ++report.discarded; // Head splits a slot.
                break;
            }
            std::uint8_t len_word[8];
            readCircular(image, layout, pos, len_word, 8);
            std::uint64_t len = 0;
            std::memcpy(&len, len_word, 8);
            if (len < min_payload_bytes ||
                layout.slotBytes(len) > report.head - pos) {
                // A corrupt length word destroys the framing; the
                // rest of the committed region cannot be re-synced.
                ++report.discarded;
                break;
            }
            std::vector<std::uint8_t> payload(len);
            readCircular(image, layout, pos + 8, payload.data(), len);
            if (verifyPayload(payload.data(), len)) {
                RecoveredEntry entry;
                entry.offset = pos;
                entry.len = len;
                entry.op_id = payloadOpId(payload.data(), len);
                entry.content_ok = true;
                report.entries.push_back(entry);
            } else {
                ++report.discarded; // Corrupt committed entry.
            }
            pos += layout.slotBytes(len);
        }
        report.ok = true;
        return report;
    }

    // Untrusted head (e.g. the head pointer itself tore): rebuild the
    // committed frontier by scanning self-validating entries forward
    // from the tail. A torn tail-end entry fails validation and is
    // silently dropped — bounded loss, not an error. Wrap-around
    // workloads would let stale prior-lap entries validate past the
    // true frontier, so fault campaigns pair this mode with
    // non-wrapping configurations.
    const std::uint64_t tail =
        report.tail % layout.pad == 0 ? report.tail : 0;
    report.tail = tail;
    std::uint64_t pos = tail;
    while (pos - tail + layout.pad <= layout.capacity) {
        std::uint8_t len_word[8];
        readCircular(image, layout, pos, len_word, 8);
        std::uint64_t len = 0;
        std::memcpy(&len, len_word, 8);
        if (len < min_payload_bytes ||
            pos - tail + layout.slotBytes(len) > layout.capacity)
            break;
        std::vector<std::uint8_t> payload(len);
        readCircular(image, layout, pos + 8, payload.data(), len);
        if (!verifyPayload(payload.data(), len))
            break;
        RecoveredEntry entry;
        entry.offset = pos;
        entry.len = len;
        entry.op_id = payloadOpId(payload.data(), len);
        entry.content_ok = true;
        report.entries.push_back(entry);
        pos += layout.slotBytes(len);
    }
    report.head = pos; // Reconstructed commit frontier.
    report.ok = true;
    return report;
}

} // namespace

RecoveryReport
recoverQueue(const MemoryImage &image, const QueueLayout &layout,
             bool verify_content, RecoveryMode mode)
{
    if (mode == RecoveryMode::DetectAndDiscard)
        return recoverDegraded(image, layout);

    RecoveryReport report;
    report.head = image.load(layout.headAddr(), 8);
    report.tail = image.load(layout.tailAddr(), 8);

    if (report.tail > report.head) {
        report.error = "tail is ahead of head";
        return report;
    }
    if (report.head - report.tail > layout.capacity) {
        report.error = "live region exceeds capacity";
        return report;
    }

    std::uint64_t pos = report.tail;
    while (pos < report.head) {
        if (report.head - pos < layout.pad) {
            std::ostringstream oss;
            oss << "head splits a slot at offset " << pos;
            report.error = oss.str();
            return report;
        }
        std::uint8_t len_word[8];
        readCircular(image, layout, pos, len_word, 8);
        std::uint64_t len = 0;
        std::memcpy(&len, len_word, 8);
        if (len < min_payload_bytes ||
            layout.slotBytes(len) > report.head - pos) {
            std::ostringstream oss;
            oss << "corrupt length " << len << " at offset " << pos;
            report.error = oss.str();
            return report;
        }
        std::vector<std::uint8_t> payload(len);
        readCircular(image, layout, pos + 8, payload.data(), len);

        RecoveredEntry entry;
        entry.offset = pos;
        entry.len = len;
        entry.op_id = payloadOpId(payload.data(), len);
        entry.content_ok =
            !verify_content || verifyPayload(payload.data(), len);
        if (!entry.content_ok) {
            std::ostringstream oss;
            oss << "corrupt payload for op " << entry.op_id
                << " at offset " << pos;
            report.error = oss.str();
            report.entries.push_back(entry);
            return report;
        }
        report.entries.push_back(entry);
        pos += layout.slotBytes(len);
    }
    report.ok = true;
    return report;
}

std::function<std::string(const MemoryImage &)>
makeRecoveryInvariant(const QueueLayout &layout,
                      const std::map<std::uint64_t, GoldenEntry> &golden)
{
    return [layout, golden](const MemoryImage &image) {
        const RecoveryReport report = recoverQueue(image, layout);
        if (!report.ok)
            return report.error;
        return checkAgainstGolden(report, golden);
    };
}

std::function<std::string(const MemoryImage &)>
makeDetectAndDiscardInvariant(
    const QueueLayout &layout,
    const std::map<std::uint64_t, GoldenEntry> &golden)
{
    return [layout, golden](const MemoryImage &image) -> std::string {
        const RecoveryReport report = recoverQueue(
            image, layout, true, RecoveryMode::DetectAndDiscard);
        if (!report.ok)
            return report.error;
        if (report.discarded > 0) {
            std::ostringstream oss;
            oss << report.discarded << " committed entr"
                << (report.discarded == 1 ? "y" : "ies")
                << " discarded during degraded recovery (data loss)";
            return oss.str();
        }
        return checkAgainstGolden(report, golden);
    };
}

std::string
checkAgainstGolden(const RecoveryReport &report,
                   const std::map<std::uint64_t, GoldenEntry> &golden)
{
    for (const auto &entry : report.entries) {
        auto it = golden.find(entry.offset);
        if (it == golden.end()) {
            std::ostringstream oss;
            oss << "recovered entry at unreserved offset " << entry.offset;
            return oss.str();
        }
        if (it->second.op_id != entry.op_id ||
            it->second.len != entry.len) {
            std::ostringstream oss;
            oss << "entry at offset " << entry.offset << " is op "
                << entry.op_id << "/" << entry.len << " but reservation "
                << "was op " << it->second.op_id << "/" << it->second.len;
            return oss.str();
        }
    }
    return "";
}

} // namespace persim
