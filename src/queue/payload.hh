/**
 * @file
 * Deterministic queue entry payloads.
 *
 * Each inserted entry carries its operation id followed by bytes
 * generated deterministically from that id, so recovery checking can
 * verify entry contents byte-for-byte without a golden copy of the
 * data: any recovered entry must equal makePayload(embedded_id, len).
 */

#ifndef PERSIM_QUEUE_PAYLOAD_HH
#define PERSIM_QUEUE_PAYLOAD_HH

#include <cstdint>
#include <vector>

namespace persim {

/** Minimum payload size: the embedded 8-byte operation id. */
constexpr std::uint64_t min_payload_bytes = 8;

/** Build the canonical payload for operation @p op_id of @p len bytes. */
std::vector<std::uint8_t> makePayload(std::uint64_t op_id,
                                      std::uint64_t len);

/** Operation id embedded in a payload (its first 8 bytes). */
std::uint64_t payloadOpId(const std::uint8_t *payload, std::uint64_t len);

/** True iff @p payload matches the canonical payload of its id. */
bool verifyPayload(const std::uint8_t *payload, std::uint64_t len);

} // namespace persim

#endif // PERSIM_QUEUE_PAYLOAD_HH
