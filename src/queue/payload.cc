#include "queue/payload.hh"

#include <cstring>

#include "common/error.hh"

namespace persim {

namespace {

/** Deterministic filler byte for position @p i of operation @p op. */
std::uint8_t
fillerByte(std::uint64_t op, std::uint64_t i)
{
    std::uint64_t x = op * 0x9e3779b97f4a7c15ULL + i * 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 31;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 29;
    return static_cast<std::uint8_t>(x & 0xff);
}

} // namespace

std::vector<std::uint8_t>
makePayload(std::uint64_t op_id, std::uint64_t len)
{
    PERSIM_REQUIRE(len >= min_payload_bytes,
                   "payload must be at least " << min_payload_bytes
                   << " bytes");
    std::vector<std::uint8_t> payload(len);
    std::memcpy(payload.data(), &op_id, 8);
    for (std::uint64_t i = 8; i < len; ++i)
        payload[i] = fillerByte(op_id, i);
    return payload;
}

std::uint64_t
payloadOpId(const std::uint8_t *payload, std::uint64_t len)
{
    PERSIM_REQUIRE(len >= min_payload_bytes, "payload too short for an id");
    std::uint64_t op_id = 0;
    std::memcpy(&op_id, payload, 8);
    return op_id;
}

bool
verifyPayload(const std::uint8_t *payload, std::uint64_t len)
{
    if (len < min_payload_bytes)
        return false;
    const std::uint64_t op_id = payloadOpId(payload, len);
    for (std::uint64_t i = 8; i < len; ++i) {
        if (payload[i] != fillerByte(op_id, i))
            return false;
    }
    return true;
}

} // namespace persim
