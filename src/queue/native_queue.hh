/**
 * @file
 * Native queue implementations for instruction-rate measurement.
 *
 * The paper's methodology (Section 7) measures "instruction execution
 * rate" by running the queue microbenchmarks natively, optimized for
 * volatile performance (no barriers, no flushes), with MCS locks and
 * 64-byte padding, and counting inserts per second. These classes are
 * the native twins of the traced queues in queue.hh.
 */

#ifndef PERSIM_QUEUE_NATIVE_QUEUE_HH
#define PERSIM_QUEUE_NATIVE_QUEUE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "queue/queue.hh"
#include "sync/native_locks.hh"

namespace persim {

/** Abstract native queue: volatile-optimized insert only. */
class NativeQueue
{
  public:
    virtual ~NativeQueue() = default;

    /** Insert @p len bytes from @p payload using thread @p slot. */
    virtual void insert(std::size_t slot, const void *payload,
                        std::uint64_t len) = 0;

    virtual QueueKind kind() const = 0;
};

/** Native Copy While Locked. */
class NativeCwlQueue : public NativeQueue
{
  public:
    NativeCwlQueue(std::uint64_t capacity, std::uint64_t pad,
                   std::size_t threads);

    void insert(std::size_t slot, const void *payload,
                std::uint64_t len) override;

    QueueKind kind() const override { return QueueKind::CopyWhileLocked; }

    std::uint64_t head() const { return head_; }

  private:
    std::uint64_t slotBytes(std::uint64_t len) const;

    std::uint64_t capacity_;
    std::uint64_t pad_;
    std::vector<std::uint8_t> data_;
    alignas(64) std::uint64_t head_ = 0;
    NativeMcsLock lock_;
    std::vector<std::unique_ptr<NativeMcsLock::Qnode>> qnodes_;
};

/** Native Two-Lock Concurrent. */
class NativeTlcQueue : public NativeQueue
{
  public:
    NativeTlcQueue(std::uint64_t capacity, std::uint64_t pad,
                   std::size_t threads);
    ~NativeTlcQueue() override;

    void insert(std::size_t slot, const void *payload,
                std::uint64_t len) override;

    QueueKind kind() const override
    {
        return QueueKind::TwoLockConcurrent;
    }

    std::uint64_t head() const { return head_; }

  private:
    struct Node
    {
        std::uint64_t end = 0;
        bool done = false;
        Node *next = nullptr;
    };

    std::uint64_t slotBytes(std::uint64_t len) const;

    std::uint64_t capacity_;
    std::uint64_t pad_;
    std::vector<std::uint8_t> data_;
    alignas(64) std::uint64_t head_ = 0;
    alignas(64) std::uint64_t headv_ = 0;
    Node *list_head_ = nullptr;
    Node *list_tail_ = nullptr;
    NativeMcsLock reserve_;
    NativeMcsLock update_;
    std::vector<std::unique_ptr<NativeMcsLock::Qnode>> reserve_qnodes_;
    std::vector<std::unique_ptr<NativeMcsLock::Qnode>> update_qnodes_;
};

/** Factory over QueueKind. */
std::unique_ptr<NativeQueue> createNativeQueue(QueueKind kind,
                                               std::uint64_t capacity,
                                               std::uint64_t pad,
                                               std::size_t threads);

/**
 * Measure native insert throughput: @p threads real threads each
 * inserting @p inserts_per_thread entries of @p entry_bytes payload.
 * @return Inserts per second (wall clock).
 */
double measureNativeInsertRate(QueueKind kind, std::size_t threads,
                               std::uint64_t inserts_per_thread,
                               std::uint64_t entry_bytes);

} // namespace persim

#endif // PERSIM_QUEUE_NATIVE_QUEUE_HH
