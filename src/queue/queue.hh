/**
 * @file
 * Thread-safe persistent queues (paper Section 6, Algorithm 1).
 *
 * Both designs are circular buffers with a persistent header (head
 * and tail cumulative byte counters) and a persistent data segment.
 * An entry is [8-byte payload length][payload], padded to a 64-byte
 * slot boundary (the paper pads inserts to 64 bytes to avoid false
 * sharing). An entry is valid and recoverable exactly when the head
 * counter encompasses its slot.
 *
 *  - CopyWhileLocked (CWL): one MCS lock serializes inserts; each
 *    insert persists the entry, a persist barrier, then the head.
 *  - TwoLockConcurrent (2LC): a reserve lock hands out data-segment
 *    space and a volatile insert list; entry data persists outside
 *    any lock (concurrently across threads); an update lock commits
 *    the longest contiguous completed prefix to the head pointer.
 *
 * Persistency annotations are configurable per the paper's Table 1
 * variants: conservative barriers around lock operations ("Epoch"),
 * no such barriers ("Racing Epochs", relying on strong persist
 * atomicity to serialize head updates), and NewStrand annotations for
 * strand persistency.
 *
 * Deviation from Algorithm 1 as printed: under epoch persistency,
 * when thread B commits a prefix containing thread A's entry, nothing
 * in Algorithm 1 orders A's data persists before B's head persist
 * (A has no persist barrier between its COPY and marking its insert
 * complete, so the epochs race and only same-address persists are
 * ordered). We add one persist barrier between COPY and the
 * completion mark (QueueOptions::barrier_before_publish, default on);
 * it costs no persist concurrency and restores the required
 * data-before-head ordering. Failure-injection tests demonstrate the
 * corruption when it is disabled.
 */

#ifndef PERSIM_QUEUE_QUEUE_HH
#define PERSIM_QUEUE_QUEUE_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "pmem/pmem.hh"
#include "sim/engine.hh"
#include "sim/memory_image.hh"
#include "sync/locks.hh"

namespace persim {

/** Which queue design. */
enum class QueueKind : std::uint8_t {
    CopyWhileLocked,
    TwoLockConcurrent,
};

/** Human-readable queue name. */
const char *queueKindName(QueueKind kind);

/** Placement of the queue's persistent state. */
struct QueueLayout
{
    Addr header = invalid_addr; //!< 128-byte header block.
    Addr data = invalid_addr;   //!< Data segment base.
    std::uint64_t capacity = 0; //!< Data segment bytes (multiple of pad).
    std::uint64_t pad = 64;     //!< Entry slot alignment.

    /** The header carries a checksum of the head counter (see
        QueueOptions::checksummed_head). */
    bool has_head_checksum = false;

    /** Address of the persistent head counter. */
    Addr headAddr() const { return header; }

    /** Address of the persistent head checksum (same cache line as
        the head, but a separate atomic persist at granularity 8). */
    Addr headChecksumAddr() const { return header + 8; }

    /** Address of the persistent tail counter (64 bytes away). */
    Addr tailAddr() const { return header + 64; }

    /** Self-validation checksum for a head counter value (nonzero,
        so blank memory never validates). */
    static std::uint64_t headChecksum(std::uint64_t head);

    /** Bytes an entry of @p len payload bytes occupies. */
    std::uint64_t slotBytes(std::uint64_t len) const;
};

/** Queue construction and annotation options. */
struct QueueOptions
{
    /** Data segment size in bytes. */
    std::uint64_t capacity = 1 << 20;

    /** Entry slot alignment (power of two >= 16). */
    std::uint64_t pad = 64;

    /**
     * Emit persist barriers around lock acquire/release (the
     * conservative "Epoch" discipline). When false, epochs race
     * across critical sections ("Racing Epochs").
     */
    bool conservative_barriers = true;

    /** Emit NewStrand at the start of each insert's copy phase. */
    bool use_strands = false;

    /**
     * 2LC only: persist barrier between COPY and publishing the
     * insert as complete (see the file comment). Keep on.
     */
    bool barrier_before_publish = true;

    /**
     * Emit a consistency fence() immediately before every persist
     * barrier. Required for recovery correctness when the engine runs
     * under TSO: without it, buffered stores become visible — and
     * persist — on the far side of their persist barrier (paper
     * Section 4.3). A no-op under SC execution.
     */
    bool fence_with_barriers = false;

    /**
     * Benchmark mode: allow the head to lap the tail, overwriting the
     * oldest entries (the paper's microbenchmark inserts 100M entries
     * into a fixed segment and never removes). Disables the overrun
     * check; recovery of overwritten entries is undefined.
     */
    bool allow_overwrite = false;

    /**
     * FAULT DEMONSTRATION ONLY: omit the Algorithm 1 line-8 barrier
     * that orders entry data before the head update. Recovery is not
     * correct without it; failure-injection tests use this to prove
     * the constraint is required.
     */
    bool omit_data_head_barrier = false;

    /**
     * Maintain a checksum of the head counter at headChecksumAddr(),
     * written (unordered) alongside every head update. A device whose
     * atomic write unit is smaller than 8 bytes can tear the head
     * pointer itself; RecoveryMode::DetectAndDiscard uses the
     * checksum to reject a torn head and fall back to scanning for
     * self-validating entries. Strict recovery ignores it (head and
     * checksum are separate atomic persists with no ordering between
     * them, so a crash can legitimately separate the pair).
     */
    bool checksummed_head = false;
};

/** Host-side record of a reservation, for recovery cross-checking. */
struct GoldenEntry
{
    std::uint64_t op_id = 0;
    std::uint64_t len = 0;
};

/** One entry parsed out of a (possibly crashed) queue image. */
struct RecoveredEntry
{
    std::uint64_t offset = 0; //!< Cumulative byte offset of the slot.
    std::uint64_t op_id = 0;  //!< Id embedded in the payload.
    std::uint64_t len = 0;    //!< Payload length.
    bool content_ok = false;  //!< Payload bytes verified.
};

/** Result of recovering a queue from a memory image. */
struct RecoveryReport
{
    bool ok = false;
    std::string error;
    std::uint64_t head = 0;
    std::uint64_t tail = 0;
    std::vector<RecoveredEntry> entries;

    /** DetectAndDiscard only: committed entries (or trailing regions)
        dropped because they failed validation — data loss. */
    std::uint64_t discarded = 0;

    /** DetectAndDiscard only: false when the head failed its
        checksum and recovery fell back to a frontier scan. */
    bool head_trusted = true;
};

/** How recovery treats a damaged image. */
enum class RecoveryMode : std::uint8_t {
    /** Any parse anomaly is an error (a perfect device cannot
        produce one under correct persist annotations). */
    Strict,

    /**
     * Graceful degradation under device faults: a trusted head
     * bounds a scan that discards corrupt committed entries
     * (detectable data loss); an untrusted (torn) head falls back to
     * a frontier scan of self-validating entries, so a torn tail
     * entry is silently dropped rather than an error.
     */
    DetectAndDiscard,
};

/** Abstract persistent queue (insert interface shared by designs). */
class PersistentQueue
{
  public:
    virtual ~PersistentQueue() = default;

    /**
     * Insert @p len payload bytes for operation @p op_id.
     * @param slot The caller's thread slot (0..threads-1 as passed to
     *             the factory), selecting its lock qnodes.
     */
    virtual void insert(ThreadCtx &ctx, std::size_t slot,
                        const void *payload, std::uint64_t len,
                        std::uint64_t op_id) = 0;

    /**
     * Remove the oldest entry into @p out.
     * @return False when the queue is empty.
     */
    virtual bool tryRemove(ThreadCtx &ctx, std::size_t slot,
                           std::vector<std::uint8_t> &out) = 0;

    virtual QueueKind kind() const = 0;

    const QueueLayout &layout() const { return layout_; }
    const QueueOptions &options() const { return options_; }

    /** Reservations recorded so far, keyed by cumulative offset. */
    std::map<std::uint64_t, GoldenEntry> golden() const;

  protected:
    PersistentQueue(const QueueLayout &layout, const QueueOptions &options)
        : layout_(layout), options_(options)
    {}

    /** Record a reservation for recovery cross-checks (host-side). */
    void recordGolden(std::uint64_t offset, std::uint64_t op_id,
                      std::uint64_t len);

    /** Write one entry (length word + payload) circularly at @p pos. */
    void writeEntry(ThreadCtx &ctx, std::uint64_t pos, const void *payload,
                    std::uint64_t len);

    /** Fatal if inserting @p slot_bytes at @p head would overrun. */
    void checkOverrun(ThreadCtx &ctx, std::uint64_t head,
                      std::uint64_t slot_bytes);

    /** Persist barrier, fenced first when the options request it. */
    void persistBarrier(ThreadCtx &ctx);

    QueueLayout layout_;
    QueueOptions options_;

  private:
    /** Circular write into the data segment. */
    void writeCircular(ThreadCtx &ctx, std::uint64_t off, const void *src,
                       std::uint64_t n);

    mutable std::mutex golden_mutex_;
    std::map<std::uint64_t, GoldenEntry> golden_;
};

/** Copy While Locked (Algorithm 1, INSERTCWL). */
class CwlQueue : public PersistentQueue
{
  public:
    /**
     * Allocate and initialize the queue in persistent memory, plus
     * per-thread MCS qnodes for @p threads thread slots.
     */
    static std::unique_ptr<CwlQueue> create(ThreadCtx &ctx,
                                            const QueueOptions &options,
                                            std::size_t threads);

    void insert(ThreadCtx &ctx, std::size_t slot, const void *payload,
                std::uint64_t len, std::uint64_t op_id) override;

    bool tryRemove(ThreadCtx &ctx, std::size_t slot,
                   std::vector<std::uint8_t> &out) override;

    QueueKind kind() const override { return QueueKind::CopyWhileLocked; }

  private:
    CwlQueue(const QueueLayout &layout, const QueueOptions &options,
             McsLock lock, std::vector<Addr> qnodes)
        : PersistentQueue(layout, options), lock_(lock),
          qnodes_(std::move(qnodes))
    {}

    McsLock lock_;
    std::vector<Addr> qnodes_;
};

/** Two-Lock Concurrent (Algorithm 1, INSERT2LC). */
class TlcQueue : public PersistentQueue
{
  public:
    /** As CwlQueue::create; allocates qnodes for both locks. */
    static std::unique_ptr<TlcQueue> create(ThreadCtx &ctx,
                                            const QueueOptions &options,
                                            std::size_t threads);

    void insert(ThreadCtx &ctx, std::size_t slot, const void *payload,
                std::uint64_t len, std::uint64_t op_id) override;

    /** 2LC removal is not defined by the paper; always fatals. */
    bool tryRemove(ThreadCtx &ctx, std::size_t slot,
                   std::vector<std::uint8_t> &out) override;

    QueueKind kind() const override
    {
        return QueueKind::TwoLockConcurrent;
    }

  private:
    TlcQueue(const QueueLayout &layout, const QueueOptions &options,
             McsLock reserve, McsLock update, Addr headv, Addr list_head,
             Addr list_tail, std::vector<Addr> reserve_qnodes,
             std::vector<Addr> update_qnodes)
        : PersistentQueue(layout, options), reserve_(reserve),
          update_(update), headv_(headv), list_head_(list_head),
          list_tail_(list_tail), reserve_qnodes_(std::move(reserve_qnodes)),
          update_qnodes_(std::move(update_qnodes))
    {}

    McsLock reserve_;
    McsLock update_;
    Addr headv_;     //!< Volatile reservation counter.
    Addr list_head_; //!< Volatile insert-list head pointer.
    Addr list_tail_; //!< Volatile insert-list tail pointer.
    std::vector<Addr> reserve_qnodes_;
    std::vector<Addr> update_qnodes_;
};

/** Factory over QueueKind. */
std::unique_ptr<PersistentQueue> createQueue(ThreadCtx &ctx, QueueKind kind,
                                             const QueueOptions &options,
                                             std::size_t threads);

/**
 * Parse a queue out of a (possibly mid-crash) memory image: read the
 * header and walk entries from tail to head.
 * @param verify_content When true (default), payloads must match the
 *        canonical makePayload format; pass false for applications
 *        with their own payload format (they should validate the
 *        returned entries themselves).
 */
RecoveryReport recoverQueue(const MemoryImage &image,
                            const QueueLayout &layout,
                            bool verify_content = true,
                            RecoveryMode mode = RecoveryMode::Strict);

/**
 * Cross-check a recovery report against the reservations the queue
 * actually made: every recovered entry must sit at a reserved offset
 * with the reserved op id and length.
 * @return Empty string when consistent, else a description.
 */
std::string checkAgainstGolden(const RecoveryReport &report,
                               const std::map<std::uint64_t,
                                              GoldenEntry> &golden);

/**
 * Build a recovery invariant for failure injection (see
 * src/recovery/): recover the queue from the crashed image, then
 * cross-check it against the recorded reservations.
 */
std::function<std::string(const MemoryImage &)>
makeRecoveryInvariant(const QueueLayout &layout,
                      const std::map<std::uint64_t, GoldenEntry> &golden);

/**
 * Detect-and-discard variant for device-fault campaigns
 * (src/nvram/faults.hh): recover with RecoveryMode::DetectAndDiscard
 * and report a violation only for *detectable data loss* — a corrupt
 * committed entry, or a recovered entry that contradicts the
 * reservations. A torn tail entry or torn head pointer degrades
 * gracefully and is not a violation.
 */
std::function<std::string(const MemoryImage &)>
makeDetectAndDiscardInvariant(
    const QueueLayout &layout,
    const std::map<std::uint64_t, GoldenEntry> &golden);

} // namespace persim

#endif // PERSIM_QUEUE_QUEUE_HH
