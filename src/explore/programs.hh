/**
 * @file
 * Canonical bounded programs for the explorer.
 *
 * These factories package the repository's standard validation
 * subjects as ExplorePrograms: the Figure 1 publish litmus (whose
 * epoch-persistency outcome hinges on the consumer barrier) and the
 * persistent queues (whose recovery correctness hinges on the
 * data-before-head publish barrier, DESIGN.md Section 7.2). Tests and
 * the explore_litmus bench drive the Explorer through them.
 */

#ifndef PERSIM_EXPLORE_PROGRAMS_HH
#define PERSIM_EXPLORE_PROGRAMS_HH

#include <cstdint>

#include "explore/explore.hh"
#include "queue/payload.hh"
#include "queue/queue.hh"

namespace persim {

/**
 * The paper's Figure 1 publish idiom as a two-thread program.
 * Thread 0 persists `data`, emits a persist barrier, and sets a
 * volatile flag; thread 1 reads the flag once and, when set, persists
 * `seen` (preceded by its own persist barrier iff @p consumer_barrier).
 * The recovery invariant is "never `seen` without `data`".
 *
 * Under epoch persistency the producer barrier alone is NOT enough
 * (the consumer persists in the epoch of its load), so exhaustive
 * exploration proves the invariant exactly when @p consumer_barrier
 * is true and produces a counterexample when it is false.
 */
ProgramFactory publishLitmusProgram(bool consumer_barrier);

/** Parameters for queueProgram. */
struct QueueExploreOptions
{
    /** Which queue design to explore. */
    QueueKind kind = QueueKind::TwoLockConcurrent;

    /** Inserting threads. */
    std::uint32_t threads = 2;

    /** Inserts issued by each thread. */
    std::uint32_t inserts_per_thread = 1;

    /** Payload bytes per insert (>= min_payload_bytes). */
    std::uint64_t payload_bytes = min_payload_bytes;

    /**
     * Queue annotation options. Defaults to a small data segment so
     * bounded exploration stays tractable; tests flip
     * barrier_before_publish / omit_data_head_barrier here.
     */
    QueueOptions queue;

    QueueExploreOptions() { queue.capacity = 1 << 10; }
};

/**
 * A bounded queue workload: create the queue in setup, have each
 * thread insert its deterministic payloads, and check every crash
 * state with makeRecoveryInvariant (recover + golden cross-check).
 */
ProgramFactory queueProgram(const QueueExploreOptions &options);

/**
 * Persistency model for queue exploration: epoch persistency with
 * 64-byte atomic persists, matching the queues' 64-byte slot padding
 * so each entry's persists coalesce into a handful of atomic groups
 * (at 8-byte atomicity the per-entry crash-state count explodes
 * combinatorially without changing which corruptions are reachable).
 */
ModelConfig queueExploreModel();

} // namespace persim

#endif // PERSIM_EXPLORE_PROGRAMS_HH
