/**
 * @file
 * Canonical bounded programs for the explorer.
 *
 * These factories package the repository's standard validation
 * subjects as ExplorePrograms: the Figure 1 publish litmus (whose
 * epoch-persistency outcome hinges on the consumer barrier) and the
 * persistent queues (whose recovery correctness hinges on the
 * data-before-head publish barrier, DESIGN.md Section 7.2). Tests and
 * the explore_litmus bench drive the Explorer through them.
 */

#ifndef PERSIM_EXPLORE_PROGRAMS_HH
#define PERSIM_EXPLORE_PROGRAMS_HH

#include <cstdint>
#include <memory>

#include "explore/explore.hh"
#include "queue/payload.hh"
#include "queue/queue.hh"

namespace persim {

/**
 * The paper's Figure 1 publish idiom as a two-thread program.
 * Thread 0 persists `data`, emits a persist barrier, and sets a
 * volatile flag; thread 1 reads the flag once and, when set, persists
 * `seen` (preceded by its own persist barrier iff @p consumer_barrier).
 * The recovery invariant is "never `seen` without `data`".
 *
 * Under epoch persistency the producer barrier alone is NOT enough
 * (the consumer persists in the epoch of its load), so exhaustive
 * exploration proves the invariant exactly when @p consumer_barrier
 * is true and produces a counterexample when it is false.
 */
ProgramFactory publishLitmusProgram(bool consumer_barrier);

/** Parameters for queueProgram. */
struct QueueExploreOptions
{
    /** Which queue design to explore. */
    QueueKind kind = QueueKind::TwoLockConcurrent;

    /** Inserting threads. */
    std::uint32_t threads = 2;

    /** Inserts issued by each thread. */
    std::uint32_t inserts_per_thread = 1;

    /** Payload bytes per insert (>= min_payload_bytes). */
    std::uint64_t payload_bytes = min_payload_bytes;

    /**
     * Queue annotation options. Defaults to a small data segment so
     * bounded exploration stays tractable; tests flip
     * barrier_before_publish / omit_data_head_barrier here.
     */
    QueueOptions queue;

    QueueExploreOptions() { queue.capacity = 1 << 10; }
};

/**
 * A bounded queue workload: create the queue in setup, have each
 * thread insert its deterministic payloads, and check every crash
 * state with makeRecoveryInvariant (recover + golden cross-check).
 */
ProgramFactory queueProgram(const QueueExploreOptions &options);

/**
 * Persistency model for queue exploration: epoch persistency with
 * 64-byte atomic persists, matching the queues' 64-byte slot padding
 * so each entry's persists coalesce into a handful of atomic groups
 * (at 8-byte atomicity the per-entry crash-state count explodes
 * combinatorially without changing which corruptions are reachable).
 */
ModelConfig queueExploreModel();

/** Parameters for randomProgram. */
struct RandomProgramOptions
{
    /** Worker threads. */
    std::uint32_t threads = 2;

    /** Randomized operations issued by each thread. */
    std::uint32_t ops_per_thread = 10;

    /** Shared persistent scratch cells (8 bytes each). */
    std::uint32_t scratch_cells = 6;

    /** Shared volatile scratch cells (8 bytes each). */
    std::uint32_t volatile_cells = 4;

    /**
     * Emit NewStrand operations. When false the program is
     * strand-free, and strand persistency must analyze it exactly
     * like epoch persistency (the differential fuzzer's sharpest
     * invariant: the two persist logs must match field for field).
     */
    bool allow_strands = true;

    /**
     * Mix x86 persistency instructions into the instruction stream:
     * clflush/clflushopt/clwb on scratch cells and sfence/mfence.
     * Under the SC models flushes are inert and fences act as persist
     * barriers; under Px86 they are the only way scratch stores ever
     * become durable. The publish idiom keeps using persistBarrier
     * (replayed under Px86 as flush-all + sfence), so the flag<=data
     * invariant stays valid under every model. Off by default: the
     * frozen differential-fuzz corpus predates these instructions.
     */
    bool allow_flushes = false;
};

/**
 * Simulated addresses of a random program's working set, filled in
 * during setup (pass to randomProgram to observe them — conformance
 * fingerprints crash states cell by cell).
 */
struct RandomProgramLayout
{
    Addr scratch = invalid_addr;  //!< scratch_cells persistent cells.
    Addr vscratch = invalid_addr; //!< volatile_cells volatile cells.
    Addr data = invalid_addr;     //!< One 8-byte cell per thread.
    Addr flag = invalid_addr;     //!< One 8-byte cell per thread.
};

/**
 * A seeded random multi-threaded program for differential fuzzing
 * (ISSUE 4). Each thread interprets a pre-generated instruction list
 * — a pure function of (seed, options) — mixing random persistent
 * stores/loads/fetch-adds on a shared scratch array, volatile
 * accesses, persist barriers, optional NewStrand, and the Figure 1
 * publish idiom against thread-private cells:
 *
 *   data[t] = k;  persistBarrier();  flag[t] = k;     (k increasing)
 *
 * The recovery invariant is flag[t] <= data[t] for every thread: the
 * barrier orders each publication's data persist before its flag
 * persist, and strong persist atomicity keeps both cells' values
 * monotone, so the bound holds at every consistent cut under strict,
 * epoch, AND strand persistency (NewStrand never splits a
 * publication). An engine that loses barrier ordering — e.g.
 * EngineMutant::ElideEpochBarrier — admits a crash state with
 * flag > data, which is how the fuzzer proves it has teeth.
 */
ProgramFactory randomProgram(
    std::uint64_t seed, const RandomProgramOptions &options = {},
    std::shared_ptr<RandomProgramLayout> layout = nullptr);

} // namespace persim

#endif // PERSIM_EXPLORE_PROGRAMS_HH
