/**
 * @file
 * Constraint-guided crash-state pruning census (DESIGN.md §14).
 *
 * Blind cut enumeration scales with the antichain width of the whole
 * persist DAG, but an explorer invariant only ever reads the
 * program's observed cells. This plugin rides along on the timing
 * replay (persistency/analysis_plugin.hh) and tracks, per cache line
 * and in aggregate, which persists could change an observed byte —
 * the census Explorer::analyze consults to pick the cheapest sound
 * enumeration:
 *
 *  - zero observed persists: every consistent cut projects to the
 *    initial image, so a single invariant check replaces the whole
 *    enumeration (the DAG is not even built);
 *  - otherwise checkObservedCuts (recovery/cuts.hh) enumerates only
 *    the observable projections, folding unobserved groups into the
 *    reachability relation.
 *
 * The per-line last-committed time and last-flushed seq are exposed
 * for diagnostics and the explore_scaling bench.
 */

#ifndef PERSIM_EXPLORE_CRASH_PRUNER_HH
#define PERSIM_EXPLORE_CRASH_PRUNER_HH

#include <cstdint>
#include <vector>

#include "common/flat_map.hh"
#include "common/types.hh"
#include "persistency/analysis_plugin.hh"
#include "recovery/cuts.hh"

namespace persim {

/** Observed-persist census over one replay (attach via TimingConfig). */
class CrashStatePruner : public AnalysisPlugin
{
  public:
    explicit CrashStatePruner(std::vector<AddrRange> observed);

    void onAttach(const TimingConfig &config) override;
    void onPersistComplete(const PersistInfo &info) override;
    void onFlush(const FlushInfo &info) override;

    /** Persists overlapping at least one observed range. */
    std::uint64_t observedPersists() const { return observed_persists_; }

    /** Every persist the engine tracked. */
    std::uint64_t totalPersists() const { return total_persists_; }

    /** Distinct atomic-granularity lines that persisted or flushed. */
    std::uint64_t linesTouched() const { return line_index_.size(); }

    /** Flush events seen (only px86-family models fire these). */
    std::uint64_t flushesSeen() const { return flushes_; }

    /** Completion time of the latest persist on @p addr's line
        (0 when the line never persisted). */
    double lastCommitTime(Addr addr) const;

    /** Seq of the latest flush naming @p addr's line (0 when none). */
    SeqNum lastFlushSeq(Addr addr) const;

  private:
    bool overlapsObserved(Addr addr, std::uint32_t size) const;
    std::uint32_t lineSlot(Addr line);

    std::vector<AddrRange> observed_;
    unsigned atomic_shift_ = 6;

    /** Per-line epochs, keyed by addr >> atomic_shift_. */
    FlatIndexMap line_index_;
    std::vector<double> line_last_commit_;
    std::vector<SeqNum> line_last_flush_;

    std::uint64_t observed_persists_ = 0;
    std::uint64_t total_persists_ = 0;
    std::uint64_t flushes_ = 0;
};

} // namespace persim

#endif // PERSIM_EXPLORE_CRASH_PRUNER_HH
