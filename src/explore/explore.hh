/**
 * @file
 * Bounded exhaustive schedule & crash-state model checking.
 *
 * Persim's stochastic validation (RandomPolicy interleavings +
 * recovery::injectFailures crash sampling) can miss a racing
 * annotation bug that manifests on one schedule in a thousand. This
 * subsystem turns the paper's recovery-observer formalism into a
 * correctness tool, Jaaru-style: for a small bounded program it
 * enumerates
 *
 *   every scheduler decision string (up to a depth/execution budget,
 *   with execution-fingerprint pruning of equivalent interleavings
 *   and a seeded-sampling fallback beyond the budget)
 *     x every consistent cut of each execution's persist partial
 *       order (src/recovery/cuts.hh),
 *
 * and runs a recovery invariant against each crash state. A failure
 * yields a minimized counterexample — decision string plus crash cut
 * — that replays deterministically through ReplayPolicy.
 *
 * The scheduler decision tree is explored statelessly (re-execution
 * from a recorded prefix, as the engine has no snapshot/restore), and
 * decision-prefix work items are scheduled on a common/task_pool.hh
 * TaskPool of `shards` workers (the pool's LIFO order keeps the
 * traversal depth-first-ish, matching the previous ad-hoc stack).
 */

#ifndef PERSIM_EXPLORE_EXPLORE_HH
#define PERSIM_EXPLORE_EXPLORE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/task_pool.hh"
#include "memtrace/sink.hh"
#include "persistency/model.hh"
#include "recovery/recovery.hh"
#include "sim/engine.hh"
#include "sim/scheduler.hh"

namespace persim {

/** One named persistent cell whose post-crash value is observed. */
struct ObservedCell
{
    std::string name;
    Addr addr = invalid_addr;
    std::uint32_t size = 8;
};

/**
 * A bounded program under test. The factory below is invoked once
 * per execution and must return independent state each time (the
 * explorer runs executions concurrently across shards); everything a
 * run produces (golden records, layouts) must be reachable from the
 * closures.
 */
struct ExploreProgram
{
    /** Setup phase, run via runSetup as thread 0 (may be empty). */
    ExecutionEngine::WorkerFn setup;

    /** Worker bodies, one simulated thread each (>= 1). */
    std::vector<ExecutionEngine::WorkerFn> workers;

    /**
     * Invoked after the run completes to build the recovery invariant
     * for this execution (after, because e.g. a queue's golden
     * reservation map depends on the interleaving). May be empty, in
     * which case only schedule enumeration is performed.
     */
    std::function<RecoveryInvariant()> invariant;

    /**
     * Base engine parameters (capacities, consistency model). The
     * scheduler fields are overridden by the explorer's ReplayPolicy.
     */
    EngineConfig engine;

    /**
     * Cells the invariant reads, filled during setup (addresses exist
     * only once the simulated allocator has run; the allocator is
     * deterministic, so every execution observes the same layout).
     * Optional — but required for ExploreConfig::prune_cuts, which
     * restricts crash-state enumeration to cuts that can differ on
     * these byte ranges.
     */
    std::shared_ptr<std::vector<ObservedCell>> observed;
};

/** Builds a fresh instance of the program under test. */
using ProgramFactory = std::function<ExploreProgram()>;

/** Exploration budgets and strategy. */
struct ExploreConfig
{
    /** Persistency model the crash states are enumerated under. */
    ModelConfig model;

    /**
     * Scheduling decisions eligible for branching. Beyond this depth
     * the (fair, deterministic) round-robin frontier completes each
     * execution without forking alternatives.
     */
    std::uint64_t max_depth = 64;

    /** DFS execution budget (0 = unlimited). */
    std::uint64_t max_executions = 4096;

    /** Per-execution consistent-cut budget (0 = unlimited). */
    std::uint64_t max_cuts = 1ULL << 16;

    /**
     * Seeded-sampling fallback: when the DFS budget exhausts before
     * the decision tree is covered, run this many extra executions
     * with a seeded random frontier for tail coverage.
     */
    std::uint64_t samples = 0;

    /** Safety net per execution (livelocked schedules abort). */
    std::uint64_t max_events_per_run = 1ULL << 20;

    /** Worker threads sharding the decision-prefix work queue. */
    std::uint32_t shards = 1;

    /** Seed for the sampling fallback. */
    std::uint64_t seed = 1;

    /** Minimize counterexamples (costs a few replays). */
    bool minimize = true;

    /**
     * Constraint-guided crash-state pruning (DESIGN.md §14): when the
     * program declares observed cells, enumerate only consistent cuts
     * that can read a distinct value on them (checkObservedCuts),
     * instead of every order ideal of the full persist DAG. Verdicts
     * are identical; the cut count collapses from exponential in the
     * whole trace's antichain width to exponential in the *observed*
     * groups only. Ignored for programs without observed cells.
     */
    bool prune_cuts = false;
};

/** A concrete, replayable recovery-correctness failure. */
struct Counterexample
{
    /**
     * Decision string: indices into the sorted runnable set, one per
     * scheduling decision. Feeding it to ReplayPolicy (round-robin
     * frontier) reproduces the failing execution byte-for-byte.
     */
    std::vector<std::uint32_t> decisions;

    /** Fingerprint of the failing execution's event stream. */
    std::uint64_t fingerprint = 0;

    /** The failing crash state, as persist-DAG group ids. */
    std::vector<std::uint32_t> cut_groups;

    /** Invariant verdict on that crash state. */
    std::string violation;

    /** Human-readable cut listing (addresses, values, times). */
    std::string cut_detail;

    /** Render for reports. */
    std::string format() const;
};

/** Aggregate outcome of one exploration. */
struct ExploreResult
{
    std::uint64_t executions = 0;         //!< Schedules executed (DFS).
    std::uint64_t sampled_executions = 0; //!< Random-fallback runs.
    std::uint64_t distinct_executions = 0; //!< Unique fingerprints.
    std::uint64_t pruned_duplicates = 0;  //!< Equivalent interleavings.
    std::uint64_t truncated_executions = 0; //!< Aborted by event cap.
    std::uint64_t branch_points = 0;      //!< Alternatives discovered.
    std::uint64_t cuts_checked = 0;       //!< Crash states examined.
    std::uint64_t violations = 0;         //!< Crash states that failed.

    /** Analyses that used the observed-projection enumeration. */
    std::uint64_t pruned_analyses = 0;

    /** Pruned analyses with zero observed persists: one invariant
        check replaced the whole enumeration (no DAG built). */
    std::uint64_t pruned_short_circuits = 0;

    /** DFS stopped with untried alternatives (budget or depth). */
    bool schedule_budget_exhausted = false;

    /** Some execution hit the per-execution cut budget. */
    bool cut_budget_exhausted = false;

    /** First failure found, minimized; nullopt when clean. */
    std::optional<Counterexample> counterexample;

    /**
     * True when the run proves the invariant: every schedule within
     * depth was executed, every crash state of every distinct
     * execution was checked, and none failed.
     */
    bool exhaustive() const
    {
        return !schedule_budget_exhausted && !cut_budget_exhausted &&
               truncated_executions == 0;
    }

    /** One-paragraph summary for logs and benches. */
    std::string summary() const;
};

/** Order-sensitive hash of an execution's event stream. */
std::uint64_t fingerprintTrace(const InMemoryTrace &trace);

/** Bounded exhaustive explorer over one program. */
class Explorer
{
  public:
    Explorer(ProgramFactory factory, ExploreConfig config);

    /** Run the exploration (callable once per Explorer). */
    ExploreResult run();

    /** One deterministic (re-)execution. */
    struct Execution
    {
        InMemoryTrace trace;
        std::vector<BranchPoint> decisions;
        std::uint64_t fingerprint = 0;
        RecoveryInvariant invariant;
        /** Copy of the program's observed cells (post-setup). */
        std::vector<ObservedCell> observed;
        bool diverged = false;
    };

    /**
     * Execute the program once, following @p prefix then the given
     * frontier. Deterministic for the round-robin frontier; the
     * primitive behind both exploration and counterexample replay.
     */
    Execution execute(const std::vector<std::uint32_t> &prefix,
                      FrontierKind frontier = FrontierKind::RoundRobin,
                      std::uint64_t seed = 1);

  private:
    struct Shared;

    /** Submit one DFS prefix to the pool (budget-checked at start). */
    void enqueue(TaskPool &pool, Shared &shared,
                 std::vector<std::uint32_t> prefix);

    /** Run + analyze one prefix; submit child work items to @p pool
        (null for sampled runs, which never fork children). */
    void process(TaskPool *pool, Shared &shared,
                 const std::vector<std::uint32_t> &prefix, bool sampled,
                 std::uint64_t sample_seed);

    /** Analyze one execution's crash states. */
    void analyze(Shared &shared, const Execution &execution,
                 const std::vector<std::uint32_t> &decision_prefix);

    /** Shortest prefix whose replay reproduces @p target. */
    std::vector<std::uint32_t>
    minimizeDecisions(const std::vector<std::uint32_t> &full,
                      std::uint64_t target_fingerprint);

    ProgramFactory factory_;
    ExploreConfig config_;
    bool ran_ = false;
};

} // namespace persim

#endif // PERSIM_EXPLORE_EXPLORE_HH
