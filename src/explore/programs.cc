#include "explore/programs.hh"

#include <memory>
#include <string>
#include <vector>

#include "common/error.hh"
#include "common/rng.hh"

namespace persim {

namespace {

/** Simulated addresses of the litmus variables (set during setup). */
struct LitmusState
{
    Addr data = invalid_addr;
    Addr seen = invalid_addr;
    Addr flag = invalid_addr;
};

} // namespace

ProgramFactory
publishLitmusProgram(bool consumer_barrier)
{
    return [consumer_barrier]() {
        auto state = std::make_shared<LitmusState>();

        ExploreProgram program;
        program.observed = std::make_shared<std::vector<ObservedCell>>();
        auto observed = program.observed;
        program.setup = [state, observed](ThreadCtx &ctx) {
            state->data = ctx.pmalloc(8);
            state->seen = ctx.pmalloc(8);
            state->flag = ctx.vmalloc(8);
            // The invariant reads exactly these two cells, so the
            // explorer's constraint-guided pruning may restrict cut
            // enumeration to them.
            observed->assign({ObservedCell{"data", state->data, 8},
                              ObservedCell{"seen", state->seen, 8}});
        };
        program.workers.push_back([state](ThreadCtx &ctx) {
            ctx.store(state->data, 1);
            ctx.persistBarrier();
            ctx.store(state->flag, 1);
        });
        program.workers.push_back([state, consumer_barrier](ThreadCtx &ctx) {
            if (ctx.load(state->flag) == 1) {
                if (consumer_barrier)
                    ctx.persistBarrier();
                ctx.store(state->seen, 1);
            }
        });
        program.invariant = [state]() -> RecoveryInvariant {
            return [state](const MemoryImage &image) -> std::string {
                if (image.load(state->seen, 8) == 1 &&
                    image.load(state->data, 8) != 1)
                    return "recovery observed seen=1 without data=1";
                return "";
            };
        };
        return program;
    };
}

ProgramFactory
queueProgram(const QueueExploreOptions &options)
{
    PERSIM_REQUIRE(options.threads >= 1, "need at least one thread");
    PERSIM_REQUIRE(options.payload_bytes >= min_payload_bytes,
                   "payload too short");
    return [options]() {
        auto queue = std::make_shared<std::unique_ptr<PersistentQueue>>();

        ExploreProgram program;
        program.setup = [queue, options](ThreadCtx &ctx) {
            *queue = createQueue(ctx, options.kind, options.queue,
                                 options.threads);
        };
        for (std::uint32_t t = 0; t < options.threads; ++t) {
            program.workers.push_back([queue, options, t](ThreadCtx &ctx) {
                for (std::uint32_t i = 0; i < options.inserts_per_thread;
                     ++i) {
                    const std::uint64_t op_id =
                        1 + t * options.inserts_per_thread + i;
                    const std::vector<std::uint8_t> payload =
                        makePayload(op_id, options.payload_bytes);
                    (*queue)->insert(ctx, t, payload.data(),
                                     payload.size(), op_id);
                }
            });
        }
        program.invariant = [queue]() -> RecoveryInvariant {
            return makeRecoveryInvariant((*queue)->layout(),
                                         (*queue)->golden());
        };
        return program;
    };
}

ModelConfig
queueExploreModel()
{
    ModelConfig model = ModelConfig::epoch();
    model.atomic_granularity = 64;
    return model;
}

namespace {

/** One pre-generated instruction of a random program. */
enum class RandOpKind : std::uint8_t {
    Publish,   //!< data[t] = k; persistBarrier(); flag[t] = k.
    Store,     //!< Random-value store to a persistent scratch cell.
    Rmw,       //!< Fetch-add on a persistent scratch cell.
    Load,      //!< Load from a persistent scratch cell.
    Barrier,   //!< persistBarrier().
    NewStrand, //!< newStrand() (allow_strands only).
    VStore,    //!< Store to a volatile scratch cell.
    VLoad,     //!< Load from a volatile scratch cell.
    Flush,     //!< clflush a scratch cell (allow_flushes only).
    FlushOpt,  //!< clflushopt a scratch cell (allow_flushes only).
    Clwb,      //!< clwb a scratch cell (allow_flushes only).
    Sfence,    //!< sfence (allow_flushes only).
    Mfence,    //!< mfence (allow_flushes only).
};

struct RandInstr
{
    RandOpKind kind = RandOpKind::Barrier;
    std::uint32_t cell = 0;
    std::uint64_t value = 0;
    std::uint8_t size = 8;
};

/** Simulated addresses of a random program's working set. */
struct RandomState
{
    Addr scratch = invalid_addr;  //!< Shared persistent cells.
    Addr vscratch = invalid_addr; //!< Shared volatile cells.
    Addr data = invalid_addr;     //!< One 8-byte cell per thread.
    Addr flag = invalid_addr;     //!< One 8-byte cell per thread.
};

} // namespace

ProgramFactory
randomProgram(std::uint64_t seed, const RandomProgramOptions &options,
              std::shared_ptr<RandomProgramLayout> layout)
{
    PERSIM_REQUIRE(options.threads >= 1, "need at least one thread");
    PERSIM_REQUIRE(options.ops_per_thread >= 1, "need at least one op");
    PERSIM_REQUIRE(options.scratch_cells >= 1 &&
                       options.volatile_cells >= 1,
                   "need scratch cells");

    // Pre-generate every thread's instruction list so the program is
    // a pure function of (seed, options); workers just interpret it.
    std::vector<std::vector<RandInstr>> script(options.threads);
    Rng rng(seed);
    for (std::uint32_t t = 0; t < options.threads; ++t) {
        Rng thread_rng = rng.split();
        std::uint64_t published = 0;
        auto &ops = script[t];
        // Every thread publishes at least once, so the recovery
        // invariant (and the barrier it depends on) is always live.
        ops.push_back({RandOpKind::Publish, 0, ++published, 8});
        while (ops.size() < options.ops_per_thread) {
            const std::uint64_t roll = thread_rng.nextBounded(100);
            RandInstr instr;
            if (options.allow_flushes) {
                // A separate table (rather than reshuffling the one
                // below) keeps the frozen no-flush corpus bit-exact
                // for old seeds. Flushes and fences take their mass
                // mostly from barriers: explicit x86 persistency is
                // the point of these programs.
                if (roll < 14) {
                    instr.kind = RandOpKind::Publish;
                    instr.value = ++published;
                } else if (roll < 38) {
                    instr.kind = RandOpKind::Store;
                    instr.cell = static_cast<std::uint32_t>(
                        thread_rng.nextBounded(options.scratch_cells));
                    instr.value = thread_rng.next();
                    instr.size = static_cast<std::uint8_t>(
                        1U << thread_rng.nextBounded(4));
                } else if (roll < 46) {
                    instr.kind = RandOpKind::Rmw;
                    instr.cell = static_cast<std::uint32_t>(
                        thread_rng.nextBounded(options.scratch_cells));
                    instr.value = thread_rng.nextBounded(1ULL << 20);
                } else if (roll < 54) {
                    instr.kind = RandOpKind::Load;
                    instr.cell = static_cast<std::uint32_t>(
                        thread_rng.nextBounded(options.scratch_cells));
                } else if (roll < 60) {
                    instr.kind = RandOpKind::Barrier;
                } else if (roll < 68) {
                    instr.kind = RandOpKind::Flush;
                    instr.cell = static_cast<std::uint32_t>(
                        thread_rng.nextBounded(options.scratch_cells));
                } else if (roll < 76) {
                    instr.kind = roll % 2 == 0 ? RandOpKind::FlushOpt
                                               : RandOpKind::Clwb;
                    instr.cell = static_cast<std::uint32_t>(
                        thread_rng.nextBounded(options.scratch_cells));
                } else if (roll < 84) {
                    instr.kind = roll % 2 == 0 ? RandOpKind::Sfence
                                               : RandOpKind::Mfence;
                } else if (roll < 90) {
                    instr.kind = options.allow_strands
                        ? RandOpKind::NewStrand : RandOpKind::Load;
                    instr.cell = static_cast<std::uint32_t>(
                        thread_rng.nextBounded(options.scratch_cells));
                } else if (roll < 95) {
                    instr.kind = RandOpKind::VStore;
                    instr.cell = static_cast<std::uint32_t>(
                        thread_rng.nextBounded(options.volatile_cells));
                    instr.value = thread_rng.next();
                } else {
                    instr.kind = RandOpKind::VLoad;
                    instr.cell = static_cast<std::uint32_t>(
                        thread_rng.nextBounded(options.volatile_cells));
                }
                ops.push_back(instr);
                continue;
            }
            if (roll < 18) {
                instr.kind = RandOpKind::Publish;
                instr.value = ++published;
            } else if (roll < 44) {
                instr.kind = RandOpKind::Store;
                instr.cell = static_cast<std::uint32_t>(
                    thread_rng.nextBounded(options.scratch_cells));
                instr.value = thread_rng.next();
                instr.size = static_cast<std::uint8_t>(
                    1U << thread_rng.nextBounded(4));
            } else if (roll < 54) {
                instr.kind = RandOpKind::Rmw;
                instr.cell = static_cast<std::uint32_t>(
                    thread_rng.nextBounded(options.scratch_cells));
                instr.value = thread_rng.nextBounded(1ULL << 20);
            } else if (roll < 64) {
                instr.kind = RandOpKind::Load;
                instr.cell = static_cast<std::uint32_t>(
                    thread_rng.nextBounded(options.scratch_cells));
            } else if (roll < 78) {
                instr.kind = RandOpKind::Barrier;
            } else if (roll < 88) {
                // Without strands this mass becomes extra loads, so
                // strand-free programs keep a comparable op density.
                instr.kind = options.allow_strands ? RandOpKind::NewStrand
                                                   : RandOpKind::Load;
                instr.cell = static_cast<std::uint32_t>(
                    thread_rng.nextBounded(options.scratch_cells));
            } else if (roll < 94) {
                instr.kind = RandOpKind::VStore;
                instr.cell = static_cast<std::uint32_t>(
                    thread_rng.nextBounded(options.volatile_cells));
                instr.value = thread_rng.next();
            } else {
                instr.kind = RandOpKind::VLoad;
                instr.cell = static_cast<std::uint32_t>(
                    thread_rng.nextBounded(options.volatile_cells));
            }
            ops.push_back(instr);
        }
    }

    return [options, script, layout]() {
        auto state = std::make_shared<RandomState>();

        ExploreProgram program;
        program.setup = [state, options, layout](ThreadCtx &ctx) {
            state->scratch = ctx.pmalloc(options.scratch_cells * 8ULL);
            state->data = ctx.pmalloc(options.threads * 8ULL);
            state->flag = ctx.pmalloc(options.threads * 8ULL);
            state->vscratch = ctx.vmalloc(options.volatile_cells * 8ULL);
            if (layout != nullptr) {
                layout->scratch = state->scratch;
                layout->vscratch = state->vscratch;
                layout->data = state->data;
                layout->flag = state->flag;
            }
        };
        for (std::uint32_t t = 0; t < options.threads; ++t) {
            program.workers.push_back(
                [state, t, ops = script[t]](ThreadCtx &ctx) {
                    for (const RandInstr &instr : ops) {
                        switch (instr.kind) {
                        case RandOpKind::Publish:
                            ctx.store(state->data + t * 8ULL, instr.value);
                            ctx.persistBarrier();
                            ctx.store(state->flag + t * 8ULL, instr.value);
                            break;
                        case RandOpKind::Store:
                            ctx.store(state->scratch + instr.cell * 8ULL,
                                      instr.value, instr.size);
                            break;
                        case RandOpKind::Rmw:
                            ctx.rmwFetchAdd(
                                state->scratch + instr.cell * 8ULL,
                                instr.value);
                            break;
                        case RandOpKind::Load:
                            ctx.load(state->scratch + instr.cell * 8ULL);
                            break;
                        case RandOpKind::Barrier:
                            ctx.persistBarrier();
                            break;
                        case RandOpKind::NewStrand:
                            ctx.newStrand();
                            break;
                        case RandOpKind::VStore:
                            ctx.store(state->vscratch + instr.cell * 8ULL,
                                      instr.value);
                            break;
                        case RandOpKind::VLoad:
                            ctx.load(state->vscratch + instr.cell * 8ULL);
                            break;
                        case RandOpKind::Flush:
                            ctx.clflush(state->scratch + instr.cell * 8ULL);
                            break;
                        case RandOpKind::FlushOpt:
                            ctx.clflushopt(state->scratch +
                                           instr.cell * 8ULL);
                            break;
                        case RandOpKind::Clwb:
                            ctx.clwb(state->scratch + instr.cell * 8ULL);
                            break;
                        case RandOpKind::Sfence:
                            ctx.sfence();
                            break;
                        case RandOpKind::Mfence:
                            ctx.mfence();
                            break;
                        }
                    }
                });
        }
        program.invariant = [state, options]() -> RecoveryInvariant {
            return [state,
                    options](const MemoryImage &image) -> std::string {
                for (std::uint32_t t = 0; t < options.threads; ++t) {
                    const std::uint64_t flag =
                        image.load(state->flag + t * 8ULL, 8);
                    const std::uint64_t data =
                        image.load(state->data + t * 8ULL, 8);
                    if (flag > data)
                        return "thread " + std::to_string(t) +
                               " recovered flag=" + std::to_string(flag) +
                               " ahead of data=" + std::to_string(data);
                }
                return "";
            };
        };
        return program;
    };
}

} // namespace persim
