#include "explore/programs.hh"

#include <memory>
#include <vector>

#include "common/error.hh"

namespace persim {

namespace {

/** Simulated addresses of the litmus variables (set during setup). */
struct LitmusState
{
    Addr data = invalid_addr;
    Addr seen = invalid_addr;
    Addr flag = invalid_addr;
};

} // namespace

ProgramFactory
publishLitmusProgram(bool consumer_barrier)
{
    return [consumer_barrier]() {
        auto state = std::make_shared<LitmusState>();

        ExploreProgram program;
        program.setup = [state](ThreadCtx &ctx) {
            state->data = ctx.pmalloc(8);
            state->seen = ctx.pmalloc(8);
            state->flag = ctx.vmalloc(8);
        };
        program.workers.push_back([state](ThreadCtx &ctx) {
            ctx.store(state->data, 1);
            ctx.persistBarrier();
            ctx.store(state->flag, 1);
        });
        program.workers.push_back([state, consumer_barrier](ThreadCtx &ctx) {
            if (ctx.load(state->flag) == 1) {
                if (consumer_barrier)
                    ctx.persistBarrier();
                ctx.store(state->seen, 1);
            }
        });
        program.invariant = [state]() -> RecoveryInvariant {
            return [state](const MemoryImage &image) -> std::string {
                if (image.load(state->seen, 8) == 1 &&
                    image.load(state->data, 8) != 1)
                    return "recovery observed seen=1 without data=1";
                return "";
            };
        };
        return program;
    };
}

ProgramFactory
queueProgram(const QueueExploreOptions &options)
{
    PERSIM_REQUIRE(options.threads >= 1, "need at least one thread");
    PERSIM_REQUIRE(options.payload_bytes >= min_payload_bytes,
                   "payload too short");
    return [options]() {
        auto queue = std::make_shared<std::unique_ptr<PersistentQueue>>();

        ExploreProgram program;
        program.setup = [queue, options](ThreadCtx &ctx) {
            *queue = createQueue(ctx, options.kind, options.queue,
                                 options.threads);
        };
        for (std::uint32_t t = 0; t < options.threads; ++t) {
            program.workers.push_back([queue, options, t](ThreadCtx &ctx) {
                for (std::uint32_t i = 0; i < options.inserts_per_thread;
                     ++i) {
                    const std::uint64_t op_id =
                        1 + t * options.inserts_per_thread + i;
                    const std::vector<std::uint8_t> payload =
                        makePayload(op_id, options.payload_bytes);
                    (*queue)->insert(ctx, t, payload.data(),
                                     payload.size(), op_id);
                }
            });
        }
        program.invariant = [queue]() -> RecoveryInvariant {
            return makeRecoveryInvariant((*queue)->layout(),
                                         (*queue)->golden());
        };
        return program;
    };
}

ModelConfig
queueExploreModel()
{
    ModelConfig model = ModelConfig::epoch();
    model.atomic_granularity = 64;
    return model;
}

} // namespace persim
