#include "explore/explore.hh"

#include <algorithm>
#include <mutex>
#include <optional>
#include <sstream>
#include <unordered_set>

#include "common/error.hh"
#include "explore/crash_pruner.hh"
#include "persistency/timing_engine.hh"
#include "recovery/cuts.hh"

namespace persim {

namespace {

/** Untried alternatives at branch points in [from, min(size, depth)). */
std::uint64_t
countBranchAlternatives(const std::vector<BranchPoint> &decisions,
                        std::size_t from, std::size_t depth)
{
    const std::size_t limit = std::min(decisions.size(), depth);
    std::uint64_t alternatives = 0;
    for (std::size_t i = from; i < limit; ++i)
        if (decisions[i].arity > 1)
            alternatives += decisions[i].arity - 1;
    return alternatives;
}

} // namespace

std::uint64_t
fingerprintTrace(const InMemoryTrace &trace)
{
    // FNV-1a over the fields that identify an interleaving: which
    // thread did what, where, with what value. Two executions with
    // equal streams are the same SC execution, so their crash-state
    // analyses are identical and one can be pruned.
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    auto mix = [&hash](std::uint64_t value) {
        hash ^= value;
        hash *= 0x100000001b3ULL;
    };
    for (const TraceEvent &event : trace.events()) {
        mix(event.thread);
        mix(static_cast<std::uint64_t>(event.kind));
        mix(event.addr);
        mix(event.size);
        mix(event.value);
    }
    return hash;
}

std::string
Counterexample::format() const
{
    std::ostringstream oss;
    oss << "violation: " << violation << "\n";
    oss << "decision string (" << decisions.size() << " decisions): ";
    for (std::size_t i = 0; i < decisions.size(); ++i)
        oss << (i ? "," : "") << decisions[i];
    oss << "\nexecution fingerprint: 0x" << std::hex << fingerprint
        << std::dec << "\ncrash cut: " << cut_detail;
    return oss.str();
}

std::string
ExploreResult::summary() const
{
    std::ostringstream oss;
    oss << executions << " executions (" << distinct_executions
        << " distinct, " << pruned_duplicates << " pruned, "
        << sampled_executions << " sampled, " << truncated_executions
        << " truncated), " << cuts_checked << " crash states checked, "
        << violations << " violations";
    if (pruned_analyses > 0)
        oss << "; " << pruned_analyses << " pruned analyses ("
            << pruned_short_circuits << " short-circuited)";
    if (schedule_budget_exhausted)
        oss << "; schedule budget exhausted";
    if (cut_budget_exhausted)
        oss << "; cut budget exhausted";
    oss << (exhaustive() ? "; exhaustive within depth" : "");
    return oss.str();
}

/** State shared by the pool tasks of one exploration. */
struct Explorer::Shared
{
    std::mutex mutex;

    /** Executions started (budget accounting). */
    std::uint64_t started = 0;

    /** Fingerprints of executions already analyzed. */
    std::unordered_set<std::uint64_t> seen;

    /** True once a counterexample claim is taken (minimize once). */
    bool counterexample_claimed = false;

    ExploreResult result;
};

Explorer::Explorer(ProgramFactory factory, ExploreConfig config)
    : factory_(std::move(factory)), config_(config)
{
    PERSIM_REQUIRE(factory_ != nullptr, "explorer needs a program");
    PERSIM_REQUIRE(config_.shards >= 1, "at least one shard");
    config_.model.validate();
}

Explorer::Execution
Explorer::execute(const std::vector<std::uint32_t> &prefix,
                  FrontierKind frontier, std::uint64_t seed)
{
    ExploreProgram program = factory_();
    PERSIM_REQUIRE(!program.workers.empty(),
                   "program has no worker threads");

    Execution out;
    ReplayPolicy policy(prefix, frontier, seed);
    EngineConfig engine_config = program.engine;
    if (engine_config.max_events == 0)
        engine_config.max_events = config_.max_events_per_run;
    ExecutionEngine engine(engine_config, &out.trace, &policy);
    if (program.setup)
        engine.runSetup(program.setup);
    engine.run(program.workers);

    out.decisions = policy.decisions();
    out.diverged = policy.diverged();
    out.fingerprint = fingerprintTrace(out.trace);
    if (program.invariant)
        out.invariant = program.invariant();
    if (program.observed)
        out.observed = *program.observed;
    return out;
}

std::vector<std::uint32_t>
Explorer::minimizeDecisions(const std::vector<std::uint32_t> &full,
                            std::uint64_t target_fingerprint)
{
    // The round-robin frontier is deterministic, so "prefix length L
    // reproduces the execution" is monotone in L: binary search the
    // shortest such prefix.
    std::size_t lo = 0;
    std::size_t hi = full.size();
    while (lo < hi) {
        const std::size_t mid = lo + (hi - lo) / 2;
        std::vector<std::uint32_t> candidate(full.begin(),
                                             full.begin() + mid);
        bool reproduces = false;
        try {
            reproduces =
                execute(candidate).fingerprint == target_fingerprint;
        } catch (const FatalError &) {
            reproduces = false;
        }
        if (reproduces)
            hi = mid;
        else
            lo = mid + 1;
    }
    return std::vector<std::uint32_t>(full.begin(), full.begin() + hi);
}

void
Explorer::analyze(Shared &shared, const Execution &execution,
                  const std::vector<std::uint32_t> &decision_prefix)
{
    const bool prune = config_.prune_cuts && !execution.observed.empty();
    std::vector<AddrRange> ranges;
    if (prune) {
        ranges.reserve(execution.observed.size());
        for (const ObservedCell &cell : execution.observed)
            ranges.push_back(AddrRange{cell.addr, cell.size});
    }

    TimingConfig timing;
    timing.model = config_.model;
    timing.clock = ClockMode::Levels;
    timing.record_log = true;
    timing.record_deps = true;
    std::optional<CrashStatePruner> pruner;
    if (prune) {
        pruner.emplace(ranges);
        timing.plugins.push_back(&*pruner);
    }
    PersistTimingEngine timing_engine(timing);
    execution.trace.replay(timing_engine);
    const PersistLog log = timing_engine.takeLog();

    RecoveryInvariant invariant = execution.invariant;
    if (!invariant)
        invariant = [](const MemoryImage &) { return std::string(); };

    CutCheckResult cuts;
    PersistDag dag;
    bool short_circuited = false;
    if (prune && pruner->observedPersists() == 0) {
        // No persist ever touches an observed byte, so every
        // consistent cut projects to the initial image: one invariant
        // check covers the whole lattice, and the DAG is not needed.
        short_circuited = true;
        cuts.cuts = 1;
        const std::string verdict = invariant(MemoryImage{});
        if (!verdict.empty()) {
            cuts.violations = 1;
            cuts.first_violation = verdict;
        }
    } else {
        dag = buildPersistDag(log);
        cuts = prune ? checkObservedCuts(log, dag, invariant, ranges,
                                         config_.max_cuts)
                     : checkAllCuts(log, dag, invariant,
                                    config_.max_cuts);
    }

    bool claim = false;
    {
        std::lock_guard<std::mutex> guard(shared.mutex);
        shared.result.cuts_checked += cuts.cuts;
        shared.result.violations += cuts.violations;
        shared.result.cut_budget_exhausted |= cuts.budget_exhausted;
        if (prune)
            ++shared.result.pruned_analyses;
        if (short_circuited)
            ++shared.result.pruned_short_circuits;
        if (cuts.violations > 0 && !shared.counterexample_claimed) {
            shared.counterexample_claimed = true;
            claim = true;
        }
    }
    if (!claim)
        return;

    // Build the minimized counterexample (outside the lock: it costs
    // a handful of replays; other shards keep exploring meanwhile).
    std::vector<std::uint32_t> full_decisions;
    full_decisions.reserve(execution.decisions.size());
    for (const BranchPoint &bp : execution.decisions)
        full_decisions.push_back(bp.chosen);
    (void)decision_prefix;

    Counterexample ce;
    ce.fingerprint = execution.fingerprint;
    ce.violation = cuts.first_violation;
    ce.decisions = config_.minimize
        ? minimizeDecisions(full_decisions, execution.fingerprint)
        : full_decisions;
    ce.cut_groups = config_.minimize
        ? minimizeViolatingCut(log, dag, invariant,
                               cuts.first_violation_groups)
        : cuts.first_violation_groups;
    // Re-derive the verdict for the (possibly smaller) final cut.
    const MemoryImage image =
        reconstructImageFromGroups(log, dag, ce.cut_groups);
    const std::string verdict = invariant(image);
    if (!verdict.empty())
        ce.violation = verdict;
    ce.cut_detail = formatCut(log, dag, ce.cut_groups);

    std::lock_guard<std::mutex> guard(shared.mutex);
    shared.result.counterexample = std::move(ce);
}

void
Explorer::process(TaskPool *pool, Shared &shared,
                  const std::vector<std::uint32_t> &prefix, bool sampled,
                  std::uint64_t sample_seed)
{
    Execution execution;
    try {
        execution = execute(prefix,
                            sampled ? FrontierKind::Random
                                    : FrontierKind::RoundRobin,
                            sample_seed);
    } catch (const FatalError &) {
        std::lock_guard<std::mutex> guard(shared.mutex);
        ++shared.result.truncated_executions;
        return;
    }

    bool fresh = false;
    {
        std::lock_guard<std::mutex> guard(shared.mutex);
        fresh = shared.seen.insert(execution.fingerprint).second;
        if (fresh)
            ++shared.result.distinct_executions;
        else
            ++shared.result.pruned_duplicates;

        if (!sampled) {
            shared.result.branch_points += countBranchAlternatives(
                execution.decisions, prefix.size(),
                static_cast<std::size_t>(config_.max_depth));
            if (execution.decisions.size() >
                static_cast<std::size_t>(config_.max_depth)) {
                // Branches beyond the depth bound were not explored.
                for (std::size_t i = config_.max_depth;
                     i < execution.decisions.size(); ++i) {
                    if (execution.decisions[i].arity > 1) {
                        shared.result.schedule_budget_exhausted = true;
                        break;
                    }
                }
            }
        }
    }

    if (!sampled) {
        // Expand untried siblings along this execution's decision
        // suffix, deepest-first: the pool runs the newest submission
        // first, so this walks the tree depth-first-ish, exactly like
        // the LIFO stack it replaces.
        const std::size_t limit = std::min<std::size_t>(
            execution.decisions.size(),
            static_cast<std::size_t>(config_.max_depth));
        for (std::size_t i = limit; i-- > prefix.size();) {
            const BranchPoint &bp = execution.decisions[i];
            if (bp.arity <= 1)
                continue;
            std::vector<std::uint32_t> base;
            base.reserve(i + 1);
            for (std::size_t k = 0; k < i; ++k)
                base.push_back(execution.decisions[k].chosen);
            for (std::uint32_t alt = bp.arity; alt-- > 0;) {
                if (alt == bp.chosen)
                    continue;
                std::vector<std::uint32_t> child = base;
                child.push_back(alt);
                enqueue(*pool, shared, std::move(child));
            }
        }
    }

    if (fresh)
        analyze(shared, execution, prefix);
}

void
Explorer::enqueue(TaskPool &pool, Shared &shared,
                  std::vector<std::uint32_t> prefix)
{
    pool.submit([this, &pool, &shared, prefix = std::move(prefix)] {
        {
            std::lock_guard<std::mutex> guard(shared.mutex);
            if (config_.max_executions > 0 &&
                shared.started >= config_.max_executions) {
                // Budget exhausted with work left: drop this item.
                shared.result.schedule_budget_exhausted = true;
                return;
            }
            ++shared.started;
            ++shared.result.executions;
        }
        process(&pool, shared, prefix, false, 1);
    });
}

ExploreResult
Explorer::run()
{
    PERSIM_REQUIRE(!ran_, "an Explorer can only run once");
    ran_ = true;

    Shared shared;
    TaskPool pool(config_.shards);
    enqueue(pool, shared, {});
    pool.wait();

    // Seeded-sampling fallback: the DFS budget ran out before the
    // tree was covered, so buy tail coverage with random schedules.
    if (shared.result.schedule_budget_exhausted && config_.samples > 0) {
        for (std::uint64_t s = 0; s < config_.samples; ++s) {
            const std::uint64_t seed = config_.seed + s;
            pool.submit([this, &shared, seed] {
                {
                    std::lock_guard<std::mutex> guard(shared.mutex);
                    ++shared.result.executions;
                    ++shared.result.sampled_executions;
                }
                process(nullptr, shared, {}, true, seed);
            });
        }
        pool.wait();
    }

    return shared.result;
}

} // namespace persim
