#include "explore/crash_pruner.hh"

#include "common/bitops.hh"
#include "persistency/timing_engine.hh"

namespace persim {

CrashStatePruner::CrashStatePruner(std::vector<AddrRange> observed)
    : observed_(std::move(observed))
{
}

void
CrashStatePruner::onAttach(const TimingConfig &config)
{
    atomic_shift_ = log2Exact(config.model.atomic_granularity);
}

bool
CrashStatePruner::overlapsObserved(Addr addr, std::uint32_t size) const
{
    for (const AddrRange &range : observed_)
        if (addr < range.addr + range.size && range.addr < addr + size)
            return true;
    return false;
}

std::uint32_t
CrashStatePruner::lineSlot(Addr line)
{
    bool inserted = false;
    const std::uint32_t slot = line_index_.findOrInsert(line, inserted);
    if (inserted) {
        line_last_commit_.push_back(0.0);
        line_last_flush_.push_back(0);
    }
    return slot;
}

void
CrashStatePruner::onPersistComplete(const PersistInfo &info)
{
    ++total_persists_;
    if (overlapsObserved(info.addr, info.size))
        ++observed_persists_;
    const std::uint32_t slot = lineSlot(info.addr >> atomic_shift_);
    if (info.time > line_last_commit_[slot])
        line_last_commit_[slot] = info.time;
}

void
CrashStatePruner::onFlush(const FlushInfo &info)
{
    ++flushes_;
    if (info.line_base == invalid_addr)
        return;
    const std::uint32_t slot = lineSlot(info.line_base >> atomic_shift_);
    if (info.seq > line_last_flush_[slot])
        line_last_flush_[slot] = info.seq;
}

double
CrashStatePruner::lastCommitTime(Addr addr) const
{
    const std::uint32_t slot = line_index_.find(addr >> atomic_shift_);
    return slot == FlatIndexMap::no_slot ? 0.0 : line_last_commit_[slot];
}

SeqNum
CrashStatePruner::lastFlushSeq(Addr addr) const
{
    const std::uint32_t slot = line_index_.find(addr >> atomic_shift_);
    return slot == FlatIndexMap::no_slot ? 0 : line_last_flush_[slot];
}

} // namespace persim
