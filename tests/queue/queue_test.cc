/**
 * @file
 * Functional tests for the persistent queues: payloads, FIFO
 * semantics, circular wrap, removal, recovery parsing, hole
 * prevention in Two-Lock Concurrent, and the native twins.
 */

#include <gtest/gtest.h>

#include <set>

#include "bench_util/queue_workload.hh"
#include "memtrace/trace_stats.hh"
#include "queue/native_queue.hh"
#include "queue/payload.hh"
#include "queue/queue.hh"

namespace persim {
namespace {

TEST(Payload, DeterministicAndVerifiable)
{
    const auto a = makePayload(42, 100);
    const auto b = makePayload(42, 100);
    EXPECT_EQ(a, b);
    EXPECT_EQ(payloadOpId(a.data(), a.size()), 42u);
    EXPECT_TRUE(verifyPayload(a.data(), a.size()));

    auto corrupted = a;
    corrupted[50] ^= 0xff;
    EXPECT_FALSE(verifyPayload(corrupted.data(), corrupted.size()));

    const auto other = makePayload(43, 100);
    EXPECT_NE(a, other);
    EXPECT_THROW(makePayload(1, 4), FatalError);
}

TEST(QueueLayout, SlotSizing)
{
    QueueLayout layout;
    layout.pad = 64;
    EXPECT_EQ(layout.slotBytes(100), 128u); // 8 + 100 -> 128.
    EXPECT_EQ(layout.slotBytes(56), 64u);
    EXPECT_EQ(layout.slotBytes(8), 64u);
    layout.pad = 16;
    EXPECT_EQ(layout.slotBytes(8), 16u);
    EXPECT_EQ(layout.header + 64, layout.tailAddr());
}

class QueueFunctional : public ::testing::TestWithParam<QueueKind>
{
};

TEST_P(QueueFunctional, InsertThenRecoverAllEntries)
{
    EngineConfig config;
    ExecutionEngine engine(config, nullptr);
    QueueOptions options;
    options.capacity = 64 * 64;
    std::unique_ptr<PersistentQueue> queue;
    engine.runSetup([&](ThreadCtx &ctx) {
        queue = createQueue(ctx, GetParam(), options, 1);
    });
    engine.run({[&queue](ThreadCtx &ctx) {
        for (std::uint64_t op = 1; op <= 10; ++op) {
            const auto payload = makePayload(op, 100);
            queue->insert(ctx, 0, payload.data(), payload.size(), op);
        }
    }});

    const auto report = recoverQueue(engine.memory(), queue->layout());
    ASSERT_TRUE(report.ok) << report.error;
    ASSERT_EQ(report.entries.size(), 10u);
    for (std::uint64_t i = 0; i < 10; ++i) {
        EXPECT_EQ(report.entries[i].op_id, i + 1);
        EXPECT_EQ(report.entries[i].len, 100u);
        EXPECT_TRUE(report.entries[i].content_ok);
    }
    EXPECT_EQ(checkAgainstGolden(report, queue->golden()), "");
}

TEST_P(QueueFunctional, VariableEntrySizes)
{
    EngineConfig config;
    ExecutionEngine engine(config, nullptr);
    QueueOptions options;
    options.capacity = 64 * 256;
    std::unique_ptr<PersistentQueue> queue;
    engine.runSetup([&](ThreadCtx &ctx) {
        queue = createQueue(ctx, GetParam(), options, 1);
    });
    const std::vector<std::uint64_t> sizes{8, 9, 63, 64, 100, 200, 500};
    engine.run({[&queue, &sizes](ThreadCtx &ctx) {
        std::uint64_t op = 0;
        for (const auto size : sizes) {
            ++op;
            const auto payload = makePayload(op, size);
            queue->insert(ctx, 0, payload.data(), size, op);
        }
    }});
    const auto report = recoverQueue(engine.memory(), queue->layout());
    ASSERT_TRUE(report.ok) << report.error;
    ASSERT_EQ(report.entries.size(), sizes.size());
    for (std::size_t i = 0; i < sizes.size(); ++i)
        EXPECT_EQ(report.entries[i].len, sizes[i]);
}

TEST_P(QueueFunctional, MultithreadedInsertsAllRecovered)
{
    EngineConfig config;
    config.seed = 3;
    ExecutionEngine engine(config, nullptr);
    QueueOptions options;
    options.capacity = 64 * 512;
    options.conservative_barriers = false;
    std::unique_ptr<PersistentQueue> queue;
    constexpr int threads = 4;
    constexpr std::uint64_t per_thread = 16;
    engine.runSetup([&](ThreadCtx &ctx) {
        queue = createQueue(ctx, GetParam(), options, threads);
    });
    std::vector<ExecutionEngine::WorkerFn> workers;
    for (int t = 0; t < threads; ++t) {
        workers.push_back([&queue, t](ThreadCtx &ctx) {
            for (std::uint64_t i = 1; i <= per_thread; ++i) {
                const std::uint64_t op = t * 1000 + i;
                const auto payload = makePayload(op, 100);
                queue->insert(ctx, t, payload.data(), 100, op);
            }
        });
    }
    engine.run(workers);

    const auto report = recoverQueue(engine.memory(), queue->layout());
    ASSERT_TRUE(report.ok) << report.error;
    ASSERT_EQ(report.entries.size(), threads * per_thread);
    EXPECT_EQ(checkAgainstGolden(report, queue->golden()), "");

    // Per-thread insert order is preserved (FIFO w.r.t. each thread).
    std::map<int, std::uint64_t> last_per_thread;
    std::set<std::uint64_t> all_ops;
    for (const auto &entry : report.entries) {
        const int thread = static_cast<int>(entry.op_id / 1000);
        const auto it = last_per_thread.find(thread);
        if (it != last_per_thread.end())
            EXPECT_LT(it->second, entry.op_id);
        last_per_thread[thread] = entry.op_id;
        all_ops.insert(entry.op_id);
    }
    EXPECT_EQ(all_ops.size(), threads * per_thread);
}

INSTANTIATE_TEST_SUITE_P(Kinds, QueueFunctional,
                         ::testing::Values(QueueKind::CopyWhileLocked,
                                           QueueKind::TwoLockConcurrent),
                         [](const ::testing::TestParamInfo<QueueKind> &i) {
                             return std::string(queueKindName(i.param));
                         });

TEST(CwlQueue, RemoveReturnsFifoOrder)
{
    EngineConfig config;
    ExecutionEngine engine(config, nullptr);
    QueueOptions options;
    options.capacity = 64 * 32;
    std::unique_ptr<PersistentQueue> queue;
    engine.runSetup([&](ThreadCtx &ctx) {
        queue = CwlQueue::create(ctx, options, 1);
    });
    engine.run({[&queue](ThreadCtx &ctx) {
        for (std::uint64_t op = 1; op <= 5; ++op) {
            const auto payload = makePayload(op, 50);
            queue->insert(ctx, 0, payload.data(), 50, op);
        }
        std::vector<std::uint8_t> out;
        for (std::uint64_t op = 1; op <= 5; ++op) {
            ASSERT_TRUE(queue->tryRemove(ctx, 0, out));
            EXPECT_EQ(out.size(), 50u);
            EXPECT_EQ(payloadOpId(out.data(), out.size()), op);
            EXPECT_TRUE(verifyPayload(out.data(), out.size()));
        }
        EXPECT_FALSE(queue->tryRemove(ctx, 0, out));
    }});
}

TEST(CwlQueue, WrapsAroundWithRemoval)
{
    // Capacity for 4 slots; insert/remove many more so that the
    // buffer wraps repeatedly.
    EngineConfig config;
    ExecutionEngine engine(config, nullptr);
    QueueOptions options;
    options.capacity = 128 * 4;
    std::unique_ptr<PersistentQueue> queue;
    engine.runSetup([&](ThreadCtx &ctx) {
        queue = CwlQueue::create(ctx, options, 1);
    });
    engine.run({[&queue](ThreadCtx &ctx) {
        std::vector<std::uint8_t> out;
        for (std::uint64_t op = 1; op <= 25; ++op) {
            const auto payload = makePayload(op, 100);
            queue->insert(ctx, 0, payload.data(), 100, op);
            if (op % 2 == 0) {
                // Drain two on even ops to stay within capacity.
                ASSERT_TRUE(queue->tryRemove(ctx, 0, out));
                ASSERT_TRUE(queue->tryRemove(ctx, 0, out));
                EXPECT_TRUE(verifyPayload(out.data(), out.size()));
            }
        }
    }});
    const auto report = recoverQueue(engine.memory(), queue->layout());
    ASSERT_TRUE(report.ok) << report.error;
    EXPECT_EQ(report.entries.size(), 1u); // 25 in, 24 out.
    EXPECT_EQ(report.entries[0].op_id, 25u);
}

TEST(CwlQueue, OverrunIsFatal)
{
    EngineConfig config;
    ExecutionEngine engine(config, nullptr);
    QueueOptions options;
    options.capacity = 128;
    std::unique_ptr<PersistentQueue> queue;
    engine.runSetup([&](ThreadCtx &ctx) {
        queue = CwlQueue::create(ctx, options, 1);
    });
    EXPECT_THROW(engine.run({[&queue](ThreadCtx &ctx) {
        for (std::uint64_t op = 1; op <= 3; ++op) {
            const auto payload = makePayload(op, 100);
            queue->insert(ctx, 0, payload.data(), 100, op);
        }
    }}), FatalError);
}

TEST(TlcQueue, RemoveIsUnsupported)
{
    EngineConfig config;
    ExecutionEngine engine(config, nullptr);
    QueueOptions options;
    options.capacity = 64 * 8;
    std::unique_ptr<PersistentQueue> queue;
    engine.runSetup([&](ThreadCtx &ctx) {
        queue = TlcQueue::create(ctx, options, 1);
    });
    engine.run({[&queue](ThreadCtx &ctx) {
        std::vector<std::uint8_t> out;
        EXPECT_THROW(queue->tryRemove(ctx, 0, out), FatalError);
    }});
}

TEST(TlcQueue, HeadNeverCoversIncompleteEntries)
{
    // Monitor every persist of the head pointer during a concurrent
    // run: the head must always be covered by reservations whose
    // entries were fully copied at that point in the trace. We check
    // the weaker trace-level property that head values only increase
    // and land exactly on slot boundaries recorded in golden.
    EngineConfig config;
    config.seed = 21;
    config.quantum = 3;
    InMemoryTrace trace;
    ExecutionEngine engine(config, &trace);
    QueueOptions options;
    options.capacity = 64 * 512;
    std::unique_ptr<PersistentQueue> queue;
    constexpr int threads = 4;
    engine.runSetup([&](ThreadCtx &ctx) {
        queue = TlcQueue::create(ctx, options, threads);
    });
    std::vector<ExecutionEngine::WorkerFn> workers;
    for (int t = 0; t < threads; ++t) {
        workers.push_back([&queue, t](ThreadCtx &ctx) {
            for (std::uint64_t i = 1; i <= 20; ++i) {
                const std::uint64_t op = t * 100 + i;
                const auto payload = makePayload(op, 100);
                queue->insert(ctx, t, payload.data(), 100, op);
            }
        });
    }
    engine.run(workers);

    const auto golden = queue->golden();
    std::set<std::uint64_t> boundaries{0};
    for (const auto &[offset, entry] : golden)
        boundaries.insert(offset + queue->layout().slotBytes(entry.len));

    const Addr head_addr = queue->layout().headAddr();
    std::uint64_t last_head = 0;
    for (const auto &event : trace.events()) {
        if (event.kind != EventKind::Store || event.addr != head_addr ||
            event.thread == 0)
            continue;
        EXPECT_GE(event.value, last_head) << "head went backward";
        EXPECT_TRUE(boundaries.count(event.value))
            << "head " << event.value << " is not a slot boundary";
        last_head = event.value;
    }
    EXPECT_EQ(last_head, 80u * 128u);
}

TEST(NativeQueues, InsertAccountsBytes)
{
    for (const auto kind : {QueueKind::CopyWhileLocked,
                            QueueKind::TwoLockConcurrent}) {
        auto queue = createNativeQueue(kind, 1 << 20, 64, 2);
        const auto payload = makePayload(1, 100);
        for (int i = 0; i < 10; ++i)
            queue->insert(0, payload.data(), 100);
        if (kind == QueueKind::CopyWhileLocked) {
            EXPECT_EQ(static_cast<NativeCwlQueue *>(queue.get())->head(),
                      10 * 128u);
        } else {
            EXPECT_EQ(static_cast<NativeTlcQueue *>(queue.get())->head(),
                      10 * 128u);
        }
    }
}

TEST(NativeQueues, RateMeasurementIsPositive)
{
    const double rate = measureNativeInsertRate(
        QueueKind::CopyWhileLocked, 1, 20000, 100);
    EXPECT_GT(rate, 1e4);
}

} // namespace
} // namespace persim
