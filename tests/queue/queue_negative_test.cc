/**
 * @file
 * Negative-path queue tests: corrupt-image recovery parsing, golden
 * cross-check failures, option validation, and the verify_content
 * escape hatch.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "queue/payload.hh"
#include "queue/queue.hh"
#include "sim/memory_image.hh"

namespace persim {
namespace {

/** A synthetic layout over a blank image. */
QueueLayout
testLayout()
{
    QueueLayout layout;
    layout.header = persistent_base;
    layout.data = persistent_base + 4096;
    layout.capacity = 64 * 64;
    layout.pad = 64;
    return layout;
}

void
putEntry(MemoryImage &image, const QueueLayout &layout,
         std::uint64_t offset, std::uint64_t op_id, std::uint64_t len)
{
    const auto payload = makePayload(op_id, len);
    image.store(layout.data + offset % layout.capacity, 8, len);
    image.writeBytes(layout.data + (offset + 8) % layout.capacity,
                     payload.data(), payload.size());
}

TEST(QueueRecoveryNegative, EmptyQueueIsOk)
{
    MemoryImage image;
    const auto layout = testLayout();
    const auto report = recoverQueue(image, layout);
    EXPECT_TRUE(report.ok);
    EXPECT_TRUE(report.entries.empty());
}

TEST(QueueRecoveryNegative, TailAheadOfHead)
{
    MemoryImage image;
    const auto layout = testLayout();
    image.store(layout.headAddr(), 8, 64);
    image.store(layout.tailAddr(), 8, 128);
    const auto report = recoverQueue(image, layout);
    EXPECT_FALSE(report.ok);
    EXPECT_NE(report.error.find("tail"), std::string::npos);
}

TEST(QueueRecoveryNegative, LiveRegionBeyondCapacity)
{
    MemoryImage image;
    const auto layout = testLayout();
    image.store(layout.headAddr(), 8, layout.capacity + 128);
    image.store(layout.tailAddr(), 8, 0);
    const auto report = recoverQueue(image, layout);
    EXPECT_FALSE(report.ok);
    EXPECT_NE(report.error.find("capacity"), std::string::npos);
}

TEST(QueueRecoveryNegative, HeadInsideSlot)
{
    MemoryImage image;
    const auto layout = testLayout();
    putEntry(image, layout, 0, 1, 100);
    image.store(layout.headAddr(), 8, 100); // Not a slot boundary.
    const auto report = recoverQueue(image, layout);
    EXPECT_FALSE(report.ok);
}

TEST(QueueRecoveryNegative, GarbageLengthDetected)
{
    MemoryImage image;
    const auto layout = testLayout();
    image.store(layout.data, 8, 0xffffffffffffULL); // Absurd length.
    image.store(layout.headAddr(), 8, 128);
    const auto report = recoverQueue(image, layout);
    EXPECT_FALSE(report.ok);
    EXPECT_NE(report.error.find("length"), std::string::npos);
}

TEST(QueueRecoveryNegative, ZeroLengthDetected)
{
    MemoryImage image;
    const auto layout = testLayout();
    // head covers one slot but the length word was never persisted.
    image.store(layout.headAddr(), 8, 64);
    const auto report = recoverQueue(image, layout);
    EXPECT_FALSE(report.ok);
}

TEST(QueueRecoveryNegative, CorruptPayloadDetected)
{
    MemoryImage image;
    const auto layout = testLayout();
    putEntry(image, layout, 0, 7, 100);
    image.store(layout.data + 30, 1, 0x5a); // Flip a payload byte.
    image.store(layout.headAddr(), 8, 128);
    const auto report = recoverQueue(image, layout);
    EXPECT_FALSE(report.ok);
    ASSERT_EQ(report.entries.size(), 1u);
    EXPECT_FALSE(report.entries[0].content_ok);
}

TEST(QueueRecoveryNegative, VerifyContentOptOut)
{
    MemoryImage image;
    const auto layout = testLayout();
    putEntry(image, layout, 0, 7, 100);
    image.store(layout.data + 30, 1, 0x5a);
    image.store(layout.headAddr(), 8, 128);
    const auto report = recoverQueue(image, layout, false);
    EXPECT_TRUE(report.ok);
    ASSERT_EQ(report.entries.size(), 1u);
    EXPECT_TRUE(report.entries[0].content_ok);
}

TEST(QueueRecoveryNegative, GoldenMismatchDetected)
{
    MemoryImage image;
    const auto layout = testLayout();
    putEntry(image, layout, 0, 7, 100);
    image.store(layout.headAddr(), 8, 128);
    const auto report = recoverQueue(image, layout);
    ASSERT_TRUE(report.ok);

    std::map<std::uint64_t, GoldenEntry> golden;
    EXPECT_NE(checkAgainstGolden(report, golden), ""); // Unreserved.

    golden[0] = GoldenEntry{8, 100}; // Wrong op id.
    EXPECT_NE(checkAgainstGolden(report, golden), "");

    golden[0] = GoldenEntry{7, 50}; // Wrong length.
    EXPECT_NE(checkAgainstGolden(report, golden), "");

    golden[0] = GoldenEntry{7, 100};
    EXPECT_EQ(checkAgainstGolden(report, golden), "");
}

TEST(QueueRecoveryNegative, MakeRecoveryInvariantComposes)
{
    MemoryImage image;
    const auto layout = testLayout();
    putEntry(image, layout, 0, 7, 100);
    image.store(layout.headAddr(), 8, 128);

    std::map<std::uint64_t, GoldenEntry> golden{{0, {7, 100}}};
    const auto invariant = makeRecoveryInvariant(layout, golden);
    EXPECT_EQ(invariant(image), "");

    image.store(layout.headAddr(), 8, 100); // Corrupt the head.
    EXPECT_NE(invariant(image), "");
}

TEST(QueueOptionsValidation, RejectsBadGeometry)
{
    EngineConfig engine_config;
    ExecutionEngine engine(engine_config, nullptr);
    engine.runSetup([](ThreadCtx &ctx) {
        QueueOptions options;
        options.pad = 24; // Not a power of two.
        options.capacity = 240;
        EXPECT_THROW(CwlQueue::create(ctx, options, 1), FatalError);

        options.pad = 64;
        options.capacity = 100; // Not a multiple of pad.
        EXPECT_THROW(CwlQueue::create(ctx, options, 1), FatalError);
        EXPECT_THROW(TlcQueue::create(ctx, options, 1), FatalError);

        options.capacity = 128;
        EXPECT_THROW(CwlQueue::create(ctx, options, 0), FatalError);
    });
}

TEST(QueueOptionsValidation, InsertChecksArguments)
{
    EngineConfig engine_config;
    ExecutionEngine engine(engine_config, nullptr);
    engine.runSetup([](ThreadCtx &ctx) {
        QueueOptions options;
        options.capacity = 64 * 8;
        auto queue = CwlQueue::create(ctx, options, 2);
        const auto payload = makePayload(1, 100);
        EXPECT_THROW(queue->insert(ctx, 5, payload.data(), 100, 1),
                     FatalError); // Bad slot.
        EXPECT_THROW(queue->insert(ctx, 0, payload.data(), 4, 1),
                     FatalError); // Too-short payload.
    });
}

TEST(QueueOptionsValidation, AllowOverwriteSkipsOverrunCheck)
{
    EngineConfig engine_config;
    ExecutionEngine engine(engine_config, nullptr);
    QueueOptions options;
    options.capacity = 128 * 2; // Two slots only.
    options.allow_overwrite = true;
    std::unique_ptr<PersistentQueue> queue;
    engine.runSetup([&](ThreadCtx &ctx) {
        queue = CwlQueue::create(ctx, options, 1);
    });
    engine.run({[&queue](ThreadCtx &ctx) {
        const auto payload = makePayload(1, 100);
        for (std::uint64_t op = 1; op <= 10; ++op)
            queue->insert(ctx, 0, payload.data(), 100, op); // Wraps.
    }});
    EXPECT_EQ(engine.debugLoad(queue->layout().headAddr()), 10 * 128u);
}

} // namespace
} // namespace persim
