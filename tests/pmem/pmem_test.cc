/**
 * @file
 * Tests for the persistent-memory programming helpers.
 */

#include <gtest/gtest.h>

#include "memtrace/trace_stats.hh"
#include "pmem/pmem.hh"

namespace persim {
namespace {

TEST(PVar, LoadStoreTyped)
{
    EngineConfig config;
    ExecutionEngine engine(config, nullptr);
    engine.run({[](ThreadCtx &ctx) {
        PVar<std::uint32_t> var(ctx.pmalloc(4));
        var.store(ctx, 0xdeadbeef);
        EXPECT_EQ(var.load(ctx), 0xdeadbeefu);
        EXPECT_TRUE(var.valid());
        EXPECT_FALSE(PVar<std::uint32_t>().valid());
    }});
}

TEST(PVar, AtomicsWork)
{
    EngineConfig config;
    ExecutionEngine engine(config, nullptr);
    engine.run({[](ThreadCtx &ctx) {
        PVar<std::uint64_t> var(ctx.pmalloc(8));
        var.store(ctx, 5);
        EXPECT_EQ(var.exchange(ctx, 9), 5u);
        EXPECT_EQ(var.fetchAdd(ctx, 3), 9u);
        EXPECT_EQ(var.compareExchange(ctx, 12, 20), 12u);
        EXPECT_EQ(var.load(ctx), 20u);
        EXPECT_EQ(var.compareExchange(ctx, 1, 2), 20u);
        EXPECT_EQ(var.load(ctx), 20u);
    }});
}

TEST(PVar, StoresToPersistentSpaceArePersists)
{
    EngineConfig config;
    TraceStats stats;
    ExecutionEngine engine(config, &stats);
    engine.run({[](ThreadCtx &ctx) {
        PVar<std::uint64_t> pvar(ctx.pmalloc(8));
        PVar<std::uint64_t> vvar(ctx.vmalloc(8));
        pvar.store(ctx, 1);
        vvar.store(ctx, 1);
    }});
    EXPECT_EQ(stats.persists(), 1u);
    EXPECT_EQ(stats.stores(), 2u);
}

TEST(PBuffer, BoundsCheckedIo)
{
    EngineConfig config;
    ExecutionEngine engine(config, nullptr);
    engine.run({[](ThreadCtx &ctx) {
        PBuffer buffer(ctx.pmalloc(64), 64);
        const char msg[] = "hello persistent world";
        buffer.write(ctx, 10, msg, sizeof(msg));
        char out[sizeof(msg)] = {};
        buffer.read(ctx, 10, out, sizeof(msg));
        EXPECT_STREQ(out, msg);
        EXPECT_EQ(buffer.at(0), buffer.base());
        EXPECT_THROW(buffer.at(64), FatalError);
        EXPECT_THROW(buffer.write(ctx, 60, msg, 8), FatalError);
        EXPECT_THROW(buffer.read(ctx, 60, out, 8), FatalError);
    }});
}

TEST(EpochScope, EmitsBarriersAroundScope)
{
    EngineConfig config;
    TraceStats stats;
    ExecutionEngine engine(config, &stats);
    engine.run({[](ThreadCtx &ctx) {
        const Addr a = ctx.pmalloc(8);
        {
            EpochScope epoch(ctx);
            ctx.store(a, 1);
        }
    }});
    EXPECT_EQ(stats.persistBarriers(), 2u);
}

TEST(RootDirectory, SetGetHas)
{
    RootDirectory roots;
    EXPECT_FALSE(roots.has("queue"));
    roots.set("queue", 0x1000);
    EXPECT_TRUE(roots.has("queue"));
    EXPECT_EQ(roots.get("queue"), 0x1000u);
    roots.set("queue", 0x2000);
    EXPECT_EQ(roots.get("queue"), 0x2000u);
    EXPECT_THROW(roots.get("missing"), FatalError);
    EXPECT_EQ(roots.all().size(), 1u);
}

} // namespace
} // namespace persim
