/**
 * @file
 * Recovery under relaxed consistency (paper Section 4.3): running the
 * persistent queue on a TSO machine whose persist barriers are
 * decoupled from store visibility silently breaks recovery — buffered
 * stores (and so their persists) slide past the barrier. Adding a
 * consistency fence before each persist barrier restores correctness.
 */

#include <gtest/gtest.h>

#include "queue/payload.hh"
#include "queue/queue.hh"
#include "recovery/recovery.hh"
#include "sim/engine.hh"

namespace persim {
namespace {

struct TsoWorkload
{
    InMemoryTrace trace;
    QueueLayout layout;
    std::map<std::uint64_t, GoldenEntry> golden;
};

TsoWorkload
runTsoQueue(std::uint64_t seed, bool fence_with_barriers)
{
    TsoWorkload result;
    EngineConfig config;
    config.seed = seed;
    config.quantum = 4;
    config.consistency = ConsistencyModel::TSO;
    config.store_buffer_depth = 16;
    config.max_events = 2'000'000; // Fail fast on TSO livelock bugs.
    ExecutionEngine engine(config, &result.trace);

    QueueOptions options;
    options.capacity = 128 * 128;
    options.conservative_barriers = false;
    options.fence_with_barriers = fence_with_barriers;
    std::unique_ptr<PersistentQueue> queue;
    engine.runSetup([&](ThreadCtx &ctx) {
        queue = CwlQueue::create(ctx, options, 2);
    });
    std::vector<ExecutionEngine::WorkerFn> workers;
    for (int t = 0; t < 2; ++t) {
        workers.push_back([&queue, t](ThreadCtx &ctx) {
            for (std::uint64_t i = 1; i <= 15; ++i) {
                const std::uint64_t op = t * 100 + i;
                const auto payload = makePayload(op, 100);
                queue->insert(ctx, t, payload.data(), 100, op);
            }
        });
    }
    engine.run(workers);
    result.layout = queue->layout();
    result.golden = queue->golden();
    return result;
}

InjectionResult
inject(const TsoWorkload &workload, std::uint64_t seed)
{
    InjectionConfig injection;
    injection.model = ModelConfig::epoch();
    injection.realizations = 16;
    injection.crashes_per_realization = 48;
    injection.seed = seed;
    return injectFailures(
        workload.trace, injection,
        makeRecoveryInvariant(workload.layout, workload.golden));
}

TEST(TsoRecovery, UnfencedBarriersCorruptRecovery)
{
    // Entry data is buffered when the line-8 barrier executes and
    // drains afterward (at the unlock RMW): in visibility order the
    // barrier no longer separates data from head, so a crash can
    // expose a head covering unpersisted data.
    bool corrupted = false;
    for (std::uint64_t seed = 1; seed <= 4 && !corrupted; ++seed) {
        const auto workload = runTsoQueue(seed, false);
        corrupted = inject(workload, seed).violations > 0;
    }
    EXPECT_TRUE(corrupted)
        << "TSO without fences should break the queue's recovery";
}

TEST(TsoRecovery, FencedBarriersRestoreRecovery)
{
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        const auto workload = runTsoQueue(seed, true);
        const auto result = inject(workload, seed);
        EXPECT_TRUE(result.ok())
            << "seed " << seed << ": " << result.first_violation;
    }
}

TEST(TsoRecovery, FinalImageIsIntactEitherWay)
{
    // The bug is a crash-ordering bug, not a logic bug: the final
    // (fully drained) image always recovers.
    for (const bool fenced : {false, true}) {
        const auto workload = runTsoQueue(3, fenced);
        const auto log =
            stochasticLog(workload.trace, ModelConfig::epoch(), 1);
        const auto image = reconstructImage(log, 1e18);
        const auto report = recoverQueue(image, workload.layout);
        EXPECT_TRUE(report.ok) << report.error;
        EXPECT_EQ(report.entries.size(), 30u);
        EXPECT_EQ(checkAgainstGolden(report, workload.golden), "");
    }
}

} // namespace
} // namespace persim
