/**
 * @file
 * Offline/online equivalence: analyses over a trace file must match
 * analyses streamed during execution, for every model — the property
 * that makes recorded traces trustworthy artifacts.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "bench_util/queue_workload.hh"
#include "memtrace/trace_io.hh"
#include "persistency/timing_engine.hh"
#include "recovery/recovery.hh"

namespace persim {
namespace {

std::string
tempPath(const char *tag)
{
    return std::string(::testing::TempDir()) + "persim_int_" + tag +
        ".trc";
}

TEST(OfflineOnline, TimingResultsMatchThroughAFile)
{
    QueueWorkloadConfig config;
    config.kind = QueueKind::TwoLockConcurrent;
    config.variant = AnnotationVariant::Racing;
    config.threads = 3;
    config.inserts_per_thread = 40;

    const std::string path = tempPath("equiv");
    std::vector<TimingResult> online;
    {
        TraceFileWriter writer(path);
        PersistTimingEngine strict({.model = ModelConfig::strict()});
        PersistTimingEngine epoch({.model = ModelConfig::epoch()});
        PersistTimingEngine strand({.model = ModelConfig::strand()});
        std::vector<TraceSink *> sinks{&writer, &strict, &epoch, &strand};
        runQueueWorkload(config, sinks);
        online = {strict.result(), epoch.result(), strand.result()};
    }

    const InMemoryTrace trace = readTraceFile(path);
    const std::vector<ModelConfig> models{
        ModelConfig::strict(), ModelConfig::epoch(),
        ModelConfig::strand()};
    for (std::size_t i = 0; i < models.size(); ++i) {
        PersistTimingEngine offline({.model = models[i]});
        trace.replay(offline);
        EXPECT_EQ(offline.result().critical_path,
                  online[i].critical_path) << models[i].name();
        EXPECT_EQ(offline.result().persists, online[i].persists);
        EXPECT_EQ(offline.result().coalesced, online[i].coalesced);
        EXPECT_EQ(offline.result().ops, online[i].ops);
    }
    std::remove(path.c_str());
}

TEST(OfflineOnline, PersistLogsMatchThroughAFile)
{
    QueueWorkloadConfig config;
    config.kind = QueueKind::CopyWhileLocked;
    config.variant = AnnotationVariant::Conservative;
    config.threads = 2;
    config.inserts_per_thread = 25;

    const std::string path = tempPath("logs");
    PersistLog online;
    {
        TraceFileWriter writer(path);
        TimingConfig timing;
        timing.model = ModelConfig::epoch();
        timing.record_log = true;
        PersistTimingEngine engine(timing);
        std::vector<TraceSink *> sinks{&writer, &engine};
        runQueueWorkload(config, sinks);
        online = engine.takeLog();
    }

    const InMemoryTrace trace = readTraceFile(path);
    TimingConfig timing;
    timing.model = ModelConfig::epoch();
    timing.record_log = true;
    PersistTimingEngine offline(timing);
    trace.replay(offline);

    ASSERT_EQ(offline.log().size(), online.size());
    for (std::size_t i = 0; i < online.size(); ++i) {
        EXPECT_EQ(offline.log()[i].addr, online[i].addr);
        EXPECT_EQ(offline.log()[i].time, online[i].time);
        EXPECT_EQ(offline.log()[i].value, online[i].value);
        EXPECT_EQ(offline.log()[i].binding, online[i].binding);
        EXPECT_EQ(offline.log()[i].op, online[i].op);
    }
    std::remove(path.c_str());
}

TEST(OfflineOnline, RecoveryInjectionWorksFromAFile)
{
    QueueWorkloadConfig config;
    config.kind = QueueKind::CopyWhileLocked;
    config.variant = AnnotationVariant::Racing;
    config.threads = 2;
    config.inserts_per_thread = 10;

    const std::string path = tempPath("inject");
    QueueWorkloadResult workload;
    {
        TraceFileWriter writer(path);
        std::vector<TraceSink *> sinks{&writer};
        workload = runQueueWorkload(config, sinks);
    }

    const InMemoryTrace trace = readTraceFile(path);
    InjectionConfig injection;
    injection.model = ModelConfig::epoch();
    injection.realizations = 4;
    injection.crashes_per_realization = 16;
    const auto result = injectFailures(
        trace, injection,
        makeRecoveryInvariant(workload.layout, workload.golden));
    EXPECT_TRUE(result.ok()) << result.first_violation;
    std::remove(path.c_str());
}

} // namespace
} // namespace persim
