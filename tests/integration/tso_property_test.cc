/**
 * @file
 * Property tests over TSO executions: the analysis stack must accept
 * visibility-order traces, the model hierarchy and log consistency
 * must hold on them, and drained memory must be self-consistent.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "persistency/timing_engine.hh"
#include "recovery/recovery.hh"
#include "sim/engine.hh"

namespace persim {
namespace {

/** Random mixed workload under the given consistency model. */
InMemoryTrace
randomWorkload(ConsistencyModel consistency, std::uint64_t seed)
{
    InMemoryTrace trace;
    EngineConfig config;
    config.seed = seed;
    config.quantum = 3;
    config.consistency = consistency;
    config.store_buffer_depth = 6;
    config.max_events = 2'000'000;
    ExecutionEngine engine(config, &trace);

    Addr pregion = 0;
    Addr vregion = 0;
    engine.runSetup([&](ThreadCtx &ctx) {
        pregion = ctx.pmalloc(512, 64);
        vregion = ctx.vmalloc(256, 64);
    });
    std::vector<ExecutionEngine::WorkerFn> workers;
    for (int t = 0; t < 3; ++t) {
        workers.push_back([pregion, vregion, t, seed](ThreadCtx &ctx) {
            Rng rng(seed * 97 + t);
            for (int i = 0; i < 80; ++i) {
                const Addr paddr = pregion + rng.nextBounded(64) * 8;
                const Addr vaddr = vregion + rng.nextBounded(32) * 8;
                switch (rng.nextBounded(8)) {
                  case 0:
                  case 1:
                  case 2:
                    ctx.store(paddr, rng.next());
                    break;
                  case 3:
                    ctx.store(vaddr, rng.next());
                    break;
                  case 4:
                    ctx.load(rng.nextBool() ? paddr : vaddr);
                    break;
                  case 5:
                    ctx.persistBarrier();
                    break;
                  case 6:
                    ctx.newStrand();
                    break;
                  case 7:
                    ctx.fence();
                    break;
                }
            }
        });
    }
    engine.run(workers);
    return trace;
}

class TsoProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(TsoProperty, HierarchyHoldsOnVisibilityTraces)
{
    const auto trace = randomWorkload(ConsistencyModel::TSO, GetParam());
    auto analyze = [&trace](const ModelConfig &model) {
        TimingConfig config;
        config.model = model;
        PersistTimingEngine engine(config);
        trace.replay(engine);
        return engine.result();
    };
    const auto strict = analyze(ModelConfig::strict());
    const auto epoch = analyze(ModelConfig::epoch());
    const auto strand = analyze(ModelConfig::strand());
    EXPECT_LE(epoch.critical_path, strict.critical_path);
    EXPECT_LE(strand.critical_path, epoch.critical_path);
    EXPECT_EQ(strict.persists, epoch.persists);
}

TEST_P(TsoProperty, LogsStayConsistentOnVisibilityTraces)
{
    const auto trace = randomWorkload(ConsistencyModel::TSO, GetParam());
    for (const auto &model : {ModelConfig::strict(), ModelConfig::epoch(),
                              ModelConfig::strand()}) {
        TimingConfig config;
        config.model = model;
        config.record_log = true;
        PersistTimingEngine engine(config);
        trace.replay(engine);
        EXPECT_EQ(verifyLogConsistency(engine.log()), "")
            << model.name();
        const auto stochastic =
            stochasticLog(trace, model, GetParam() + 5);
        EXPECT_EQ(verifyLogConsistency(stochastic), "") << model.name();
    }
}

TEST_P(TsoProperty, EveryIssuedStoreEventuallyDrains)
{
    const auto trace = randomWorkload(ConsistencyModel::TSO, GetParam());
    // Replaying the trace's stores over a fresh image must reproduce
    // the engine's final memory for the persistent region — i.e. the
    // trace contains every drained store exactly once and in a
    // consistent order. (Checked via the full-time reconstruction.)
    const auto log =
        stochasticLog(trace, ModelConfig::epoch(), GetParam());
    const auto image = reconstructImage(log, 1e18);

    // Rebuild the persistent state directly from Store/Rmw events.
    MemoryImage direct;
    for (const auto &event : trace.events()) {
        if (event.isWrite() && isPersistentAddr(event.addr))
            direct.store(event.addr, event.size, event.value);
    }
    for (std::uint64_t offset = 0; offset < 512; offset += 8) {
        const Addr addr = persistent_base + offset;
        EXPECT_EQ(image.load(addr, 8), direct.load(addr, 8))
            << "offset " << offset;
    }
}

TEST_P(TsoProperty, TsoTraceHasSameStoreMultisetAsItsProgram)
{
    // The same seed under SC and TSO runs the same per-thread store
    // sequences (the programs are interleaving-independent); only the
    // global order differs. Per-thread persistent store sequences
    // must match exactly.
    const auto sc = randomWorkload(ConsistencyModel::SC, GetParam());
    const auto tso = randomWorkload(ConsistencyModel::TSO, GetParam());
    for (ThreadId t = 0; t < 3; ++t) {
        std::vector<std::pair<Addr, std::uint64_t>> sc_stores;
        std::vector<std::pair<Addr, std::uint64_t>> tso_stores;
        for (const auto &event : sc.events())
            if (event.thread == t && event.kind == EventKind::Store &&
                isPersistentAddr(event.addr))
                sc_stores.emplace_back(event.addr, event.value);
        for (const auto &event : tso.events())
            if (event.thread == t && event.kind == EventKind::Store &&
                isPersistentAddr(event.addr))
                tso_stores.emplace_back(event.addr, event.value);
        EXPECT_EQ(sc_stores, tso_stores) << "thread " << t;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TsoProperty,
                         ::testing::Range<std::uint64_t>(1, 9));

} // namespace
} // namespace persim
