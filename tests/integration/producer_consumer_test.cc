/**
 * @file
 * Producer/consumer recovery: with concurrent inserts and removes the
 * queue's tail persists join the ordering problem — a crash must
 * never expose a tail ahead of the head, a tail inside a slot, or a
 * live region that fails to parse. These tests sweep interleavings
 * (many seeds) and crash states (failure injection) over a mixed
 * workload.
 */

#include <gtest/gtest.h>

#include "queue/payload.hh"
#include "queue/queue.hh"
#include "recovery/recovery.hh"
#include "sim/engine.hh"

namespace persim {
namespace {

struct MixedWorkload
{
    InMemoryTrace trace;
    QueueLayout layout;
    std::map<std::uint64_t, GoldenEntry> golden;
    std::uint64_t removed = 0;
};

/** Two producers, one consumer over a CWL queue. */
MixedWorkload
runMixedWorkload(std::uint64_t seed, bool conservative)
{
    MixedWorkload result;
    EngineConfig config;
    config.seed = seed;
    config.quantum = 4;
    ExecutionEngine engine(config, &result.trace);

    QueueOptions options;
    options.capacity = 128 * 64;
    options.conservative_barriers = conservative;
    std::unique_ptr<PersistentQueue> queue;
    engine.runSetup([&](ThreadCtx &ctx) {
        queue = CwlQueue::create(ctx, options, 3);
    });

    constexpr std::uint64_t per_producer = 15;
    std::vector<ExecutionEngine::WorkerFn> workers;
    for (int producer = 0; producer < 2; ++producer) {
        workers.push_back([&queue, producer](ThreadCtx &ctx) {
            for (std::uint64_t i = 1; i <= per_producer; ++i) {
                const std::uint64_t op = producer * 1000 + i;
                const auto payload = makePayload(op, 100);
                queue->insert(ctx, producer, payload.data(), 100, op);
            }
        });
    }
    auto removed = std::make_shared<std::uint64_t>(0);
    workers.push_back([&queue, removed](ThreadCtx &ctx) {
        std::vector<std::uint8_t> out;
        std::uint64_t misses = 0;
        // Consume until both producers are clearly done and the
        // queue is empty (bounded by a miss budget to terminate).
        while (*removed < 20 && misses < 2000) {
            if (queue->tryRemove(ctx, 2, out)) {
                EXPECT_TRUE(verifyPayload(out.data(), out.size()));
                ++*removed;
            } else {
                ++misses;
            }
        }
    });
    engine.run(workers);

    result.layout = queue->layout();
    result.golden = queue->golden();
    result.removed = *removed;
    return result;
}

TEST(ProducerConsumer, RemovedEntriesVerifyAcrossSeeds)
{
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        const auto workload = runMixedWorkload(seed, false);
        EXPECT_GT(workload.removed, 0u) << "seed " << seed;

        // The final image parses and matches reservations.
        const auto log = stochasticLog(workload.trace,
                                       ModelConfig::epoch(), seed);
        const auto image = reconstructImage(log, 1e18);
        const auto report = recoverQueue(image, workload.layout);
        EXPECT_TRUE(report.ok) << report.error;
        EXPECT_EQ(checkAgainstGolden(report, workload.golden), "");
        EXPECT_EQ(report.entries.size(), 30 - workload.removed);
    }
}

class ProducerConsumerInjection
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(ProducerConsumerInjection, CrashStatesRecoverUnderEpoch)
{
    const auto workload = runMixedWorkload(GetParam(), false);

    InjectionConfig injection;
    injection.model = ModelConfig::epoch();
    injection.realizations = 6;
    injection.crashes_per_realization = 40;
    injection.seed = GetParam() * 13 + 1;

    const auto layout = workload.layout;
    const auto golden = workload.golden;
    const auto result = injectFailures(
        workload.trace, injection,
        [&layout, &golden](const MemoryImage &image) {
            const auto report = recoverQueue(image, layout);
            if (!report.ok)
                return report.error;
            return checkAgainstGolden(report, golden);
        });
    EXPECT_TRUE(result.ok()) << result.first_violation;
}

TEST_P(ProducerConsumerInjection, CrashStatesRecoverUnderStrict)
{
    const auto workload = runMixedWorkload(GetParam(), true);
    InjectionConfig injection;
    injection.model = ModelConfig::strict();
    injection.realizations = 4;
    injection.crashes_per_realization = 30;
    const auto result = injectFailures(
        workload.trace, injection,
        makeRecoveryInvariant(workload.layout, workload.golden));
    EXPECT_TRUE(result.ok()) << result.first_violation;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProducerConsumerInjection,
                         ::testing::Values(2u, 3u, 5u, 8u));

} // namespace
} // namespace persim
