/**
 * @file
 * End-to-end pipeline tests: queue workload -> trace -> timing
 * analysis, checking the critical-path structure each persistency
 * model should produce (the backbone of Table 1 and Figures 3-5).
 */

#include <gtest/gtest.h>

#include "bench_util/queue_workload.hh"
#include "persistency/timing_engine.hh"
#include "queue/queue.hh"

namespace persim {
namespace {

TimingResult
analyzeWorkload(const QueueWorkloadConfig &config, const ModelConfig &model)
{
    TimingConfig timing;
    timing.model = model;
    PersistTimingEngine engine(timing);
    std::vector<TraceSink *> sinks{&engine};
    runQueueWorkload(config, sinks);
    return engine.result();
}

QueueWorkloadConfig
cwl1(AnnotationVariant variant, std::uint64_t inserts = 200)
{
    QueueWorkloadConfig config;
    config.kind = QueueKind::CopyWhileLocked;
    config.variant = variant;
    config.threads = 1;
    config.inserts_per_thread = inserts;
    return config;
}

// A 100-byte payload plus the 8-byte length word is 108 bytes: 13
// full words and one 4-byte piece, so 14 data persists plus one head
// persist per insert.
constexpr double pieces_per_insert = 15.0;

TEST(Pipeline, StrictCwlSingleThreadSerializesEveryPersist)
{
    const auto result = analyzeWorkload(cwl1(AnnotationVariant::Conservative),
                                        ModelConfig::strict());
    EXPECT_EQ(result.ops, 200u);
    // All 15 persists of each insert serialize; setup adds O(1).
    EXPECT_NEAR(result.criticalPathPerOp(), pieces_per_insert, 0.1);
}

TEST(Pipeline, EpochCwlSingleThreadTwoLevelsPerInsert)
{
    const auto result = analyzeWorkload(cwl1(AnnotationVariant::Conservative),
                                        ModelConfig::epoch());
    // Data persists concurrently (1 level), head adds a second level.
    EXPECT_NEAR(result.criticalPathPerOp(), 2.0, 0.1);
}

TEST(Pipeline, RacingEpochsMatchEpochOnOneThread)
{
    // Paper Table 1: no distinction between Epoch and Racing Epochs
    // for a single thread.
    const auto epoch = analyzeWorkload(cwl1(AnnotationVariant::Conservative),
                                       ModelConfig::epoch());
    const auto racing = analyzeWorkload(cwl1(AnnotationVariant::Racing),
                                        ModelConfig::epoch());
    EXPECT_EQ(epoch.critical_path, racing.critical_path);
}

TEST(Pipeline, StrandCwlSingleThreadNearlyUnconstrained)
{
    const auto result = analyzeWorkload(cwl1(AnnotationVariant::Strand),
                                        ModelConfig::strand());
    // Each insert's data starts a fresh strand at level 1 and head
    // updates coalesce: the whole run collapses to a handful of
    // levels regardless of insert count.
    EXPECT_LE(result.critical_path, 5.0);
}

TEST(Pipeline, ModelsFormARelaxationHierarchyOnCwl)
{
    const auto strict =
        analyzeWorkload(cwl1(AnnotationVariant::Conservative),
                        ModelConfig::strict());
    const auto epoch =
        analyzeWorkload(cwl1(AnnotationVariant::Conservative),
                        ModelConfig::epoch());
    const auto strand = analyzeWorkload(cwl1(AnnotationVariant::Strand),
                                        ModelConfig::strand());
    EXPECT_GT(strict.critical_path, epoch.critical_path);
    EXPECT_GT(epoch.critical_path, strand.critical_path);
}

TEST(Pipeline, EightThreadRacingBeatsConservativeEpochOnCwl)
{
    QueueWorkloadConfig config;
    config.kind = QueueKind::CopyWhileLocked;
    config.threads = 8;
    config.inserts_per_thread = 25;

    config.variant = AnnotationVariant::Conservative;
    const auto epoch = analyzeWorkload(config, ModelConfig::epoch());

    config.variant = AnnotationVariant::Racing;
    const auto racing = analyzeWorkload(config, ModelConfig::epoch());

    // Conservative barriers order persists across critical sections
    // (two levels per insert system-wide); racing epochs leave only
    // the head-pointer serialization, and head persists from inserts
    // whose data is already durable coalesce, pushing the critical
    // path well below one level per insert.
    EXPECT_LT(racing.critical_path, epoch.critical_path);
    EXPECT_NEAR(epoch.criticalPathPerOp(), 2.0, 0.2);
    EXPECT_LE(racing.criticalPathPerOp(), 1.0);
}

TEST(Pipeline, TwoLockConcurrentAllowsCrossThreadDataConcurrency)
{
    QueueWorkloadConfig config;
    config.kind = QueueKind::TwoLockConcurrent;
    config.threads = 8;
    config.inserts_per_thread = 25;
    config.variant = AnnotationVariant::Racing;

    const auto epoch = analyzeWorkload(config, ModelConfig::epoch());
    // Head persists serialize (strong persist atomicity) but mostly
    // coalesce; data is concurrent across threads, so the critical
    // path stays below one level per insert.
    EXPECT_LE(epoch.criticalPathPerOp(), 1.0);

    const auto strict = analyzeWorkload(config, ModelConfig::strict());
    EXPECT_GT(strict.critical_path, epoch.critical_path);
}

TEST(Pipeline, TracesAreDeterministicAcrossRuns)
{
    InMemoryTrace first;
    InMemoryTrace second;
    {
        std::vector<TraceSink *> sinks{&first};
        runQueueWorkload(cwl1(AnnotationVariant::Conservative, 50), sinks);
    }
    {
        std::vector<TraceSink *> sinks{&second};
        runQueueWorkload(cwl1(AnnotationVariant::Conservative, 50), sinks);
    }
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
        const auto &a = first.events()[i];
        const auto &b = second.events()[i];
        EXPECT_EQ(a.kind, b.kind) << "event " << i;
        EXPECT_EQ(a.thread, b.thread) << "event " << i;
        EXPECT_EQ(a.addr, b.addr) << "event " << i;
        EXPECT_EQ(a.value, b.value) << "event " << i;
    }
}

TEST(Pipeline, MultithreadedWorkloadCommitsAllInserts)
{
    QueueWorkloadConfig config;
    config.kind = QueueKind::TwoLockConcurrent;
    config.threads = 4;
    config.inserts_per_thread = 50;
    config.variant = AnnotationVariant::Racing;

    InMemoryTrace trace;
    std::vector<TraceSink *> sinks{&trace};
    const auto result = runQueueWorkload(config, sinks);
    EXPECT_EQ(result.golden.size(), config.totalInserts());
    EXPECT_EQ(result.inserts, config.totalInserts());
    EXPECT_GT(result.events, 0u);
}

} // namespace
} // namespace persim
