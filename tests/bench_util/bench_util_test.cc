/**
 * @file
 * Tests for the experiment support library: the throughput model,
 * bench-report JSON round-tripping, table formatting, and the queue
 * workload driver configuration.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util/bench_report.hh"
#include "bench_util/queue_workload.hh"
#include "bench_util/table.hh"
#include "bench_util/throughput.hh"
#include "common/bitops.hh"

namespace persim {
namespace {

TEST(Throughput, PersistBoundRateMath)
{
    // 1000 ops, critical path 2000 persists, 500 ns each:
    // 1000 / (2000 * 500ns) = 1M ops/s.
    EXPECT_DOUBLE_EQ(persistBoundRate(1000, 2000.0, 500.0), 1e6);
    EXPECT_TRUE(std::isinf(persistBoundRate(1000, 0.0, 500.0)));
    EXPECT_THROW(persistBoundRate(1, 1.0, 0.0), FatalError);
}

TEST(Throughput, NormalizationAndBounds)
{
    const auto t = makeThroughput(2e6, 1000, 2000.0, 500.0);
    EXPECT_DOUBLE_EQ(t.persist_rate, 1e6);
    EXPECT_DOUBLE_EQ(t.normalized(), 0.5);
    EXPECT_DOUBLE_EQ(t.achievable(), 1e6);
    EXPECT_TRUE(t.persistBound());

    const auto fast = makeThroughput(0.5e6, 1000, 2000.0, 500.0);
    EXPECT_DOUBLE_EQ(fast.normalized(), 2.0);
    EXPECT_DOUBLE_EQ(fast.achievable(), 0.5e6);
    EXPECT_FALSE(fast.persistBound());
}

TEST(Throughput, ZeroInstructionRateIsFatal)
{
    Throughput t;
    t.instruction_rate = 0.0;
    t.persist_rate = 1.0;
    EXPECT_THROW(t.normalized(), FatalError);
}

TEST(BenchReport, SamplesCarryRssFieldsAndRoundTrip)
{
    BenchReport report;
    report.add("replay/a", 1000, 0.5);
    // Touch enough memory between samples that the process high-water
    // mark moves, so the second sample's delta is visibly attributed
    // to work done after the first add().
    std::vector<char> ballast(32 << 20, 1);
    report.add("replay/b", 2000, 0.25);
    ASSERT_EQ(report.size(), 2u);
    EXPECT_NE(ballast[16 << 20], 0);

    const std::string path =
        std::string(::testing::TempDir()) + "persim_bench_report.json";
    report.writeJson(path);
    const auto samples = readBenchJson(path);
    std::remove(path.c_str());

    ASSERT_EQ(samples.size(), 2u);
    const BenchSample &a = samples.at("replay/a");
    EXPECT_EQ(a.events, 1000u);
    EXPECT_DOUBLE_EQ(a.wall_seconds, 0.5);
    EXPECT_DOUBLE_EQ(a.events_per_sec, 2000.0);
    const BenchSample &b = samples.at("replay/b");
    EXPECT_DOUBLE_EQ(b.events_per_sec, 8000.0);

    // peak_rss_kb is the process-wide high-water mark: nonzero and
    // non-decreasing across samples. The ballast guarantees sample b
    // saw a peak at least ~32 MiB above sample a, so its delta
    // reflects the growth since the previous add().
    EXPECT_GT(a.peak_rss_kb, 0u);
    EXPECT_GE(b.peak_rss_kb, a.peak_rss_kb + (30u << 10));
    EXPECT_GE(b.rss_delta_kb, 30u << 10);
    EXPECT_EQ(b.rss_delta_kb, b.peak_rss_kb - a.peak_rss_kb);
}

TEST(BenchReport, RejectsDuplicateAndUnescapableKeys)
{
    BenchReport report;
    report.add("k", 1, 1.0);
    EXPECT_THROW(report.add("k", 1, 1.0), FatalError);
    EXPECT_THROW(report.add("quote\"key", 1, 1.0), FatalError);
}

TEST(Table, AlignsColumns)
{
    TextTable table;
    table.header({"a", "long_header", "c"});
    table.row({"xxxxxx", "1", "2"});
    table.row({"y", "22", "333"});
    const std::string text = table.render();
    // All lines equal length (trailing pads), header separator there.
    EXPECT_NE(text.find("long_header"), std::string::npos);
    EXPECT_NE(text.find("---"), std::string::npos);
    EXPECT_NE(text.find("xxxxxx"), std::string::npos);
}

TEST(Table, Formatting)
{
    EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
    EXPECT_EQ(formatDouble(2.0, 0), "2");
    EXPECT_EQ(formatRate(2.5e6), "2.500 M/s");
    EXPECT_EQ(formatRate(2.5e3), "2.500 K/s");
    EXPECT_EQ(formatRate(12.0), "12.000 /s");
}

TEST(Workload, VariantNamesAndTable1Set)
{
    EXPECT_STREQ(annotationVariantName(AnnotationVariant::Conservative),
                 "conservative");
    EXPECT_STREQ(annotationVariantName(AnnotationVariant::Racing),
                 "racing");
    EXPECT_STREQ(annotationVariantName(AnnotationVariant::Strand),
                 "strand");
    const auto variants = table1Variants();
    ASSERT_EQ(variants.size(), 4u);
    EXPECT_EQ(variants[0].name, "Strict");
    EXPECT_EQ(variants[0].model.kind, ModelKind::Strict);
    EXPECT_EQ(variants[2].trace_variant, AnnotationVariant::Racing);
    EXPECT_EQ(variants[3].model.kind, ModelKind::Strand);
}

TEST(Workload, OptionsFollowVariant)
{
    QueueWorkloadConfig config;
    config.variant = AnnotationVariant::Conservative;
    EXPECT_TRUE(config.queueOptions().conservative_barriers);
    EXPECT_FALSE(config.queueOptions().use_strands);

    config.variant = AnnotationVariant::Racing;
    EXPECT_FALSE(config.queueOptions().conservative_barriers);
    EXPECT_FALSE(config.queueOptions().use_strands);

    config.variant = AnnotationVariant::Strand;
    EXPECT_FALSE(config.queueOptions().conservative_barriers);
    EXPECT_TRUE(config.queueOptions().use_strands);
}

TEST(Workload, WrapSizingFixesCapacity)
{
    QueueWorkloadConfig config;
    config.entry_bytes = 100;
    config.threads = 2;
    config.inserts_per_thread = 100000;
    config.wrap_slots = 512;
    const auto wrapped = config.queueOptions();
    EXPECT_EQ(wrapped.capacity, 512u * 128u);
    EXPECT_TRUE(wrapped.allow_overwrite);

    config.wrap_slots = 0;
    const auto sized = config.queueOptions();
    EXPECT_EQ(sized.capacity, 128u * (config.totalInserts() + 1));
    EXPECT_FALSE(sized.allow_overwrite);
}

TEST(Workload, TotalInsertsAndEventCounts)
{
    QueueWorkloadConfig config;
    config.threads = 3;
    config.inserts_per_thread = 7;
    EXPECT_EQ(config.totalInserts(), 21u);

    InMemoryTrace trace;
    std::vector<TraceSink *> sinks{&trace};
    const auto result = runQueueWorkload(config, sinks);
    EXPECT_EQ(result.inserts, 21u);
    EXPECT_EQ(result.events, trace.size());
    EXPECT_EQ(result.golden.size(), 21u);
    EXPECT_NE(result.layout.header, invalid_addr);
}

TEST(Workload, SeedChangesInterleavingButNotInserts)
{
    QueueWorkloadConfig config;
    config.threads = 3;
    config.inserts_per_thread = 20;
    config.kind = QueueKind::TwoLockConcurrent;
    config.variant = AnnotationVariant::Racing;

    InMemoryTrace a;
    InMemoryTrace b;
    config.seed = 1;
    {
        std::vector<TraceSink *> sinks{&a};
        runQueueWorkload(config, sinks);
    }
    config.seed = 2;
    {
        std::vector<TraceSink *> sinks{&b};
        runQueueWorkload(config, sinks);
    }
    // Different interleavings...
    bool differs = a.size() != b.size();
    for (std::size_t i = 0; !differs && i < a.size(); ++i)
        differs = a.events()[i].thread != b.events()[i].thread;
    EXPECT_TRUE(differs);
}

} // namespace
} // namespace persim
