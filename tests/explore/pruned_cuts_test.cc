/**
 * @file
 * Constraint-guided crash-state pruning tests: checkObservedCuts /
 * observedGroupMask / downwardClosure unit semantics (recovery/
 * cuts.hh) and the Explorer integration (ExploreConfig::prune_cuts +
 * CrashStatePruner). The load-bearing property everywhere: pruned
 * enumeration reaches exactly the observable states of exhaustive
 * enumeration — both directions — while examining far fewer cuts.
 */

#include <set>
#include <string>

#include <gtest/gtest.h>

#include "explore/crash_pruner.hh"
#include "explore/explore.hh"
#include "explore/programs.hh"
#include "recovery/cuts.hh"
#include "tests/support/trace_builder.hh"

namespace persim {
namespace {

using test::paddr;
using test::TraceBuilder;
using test::vaddr;

PersistLog
depsLog(const TraceBuilder &builder,
        const ModelConfig &model = ModelConfig::epoch())
{
    TimingConfig config;
    config.model = model;
    config.record_deps = true;
    PersistTimingEngine engine(config);
    builder.trace().replay(engine);
    return engine.takeLog();
}

/** Invariant that records the observed cells' states into @p states. */
RecoveryInvariant
collect(std::set<std::string> &states,
        const std::vector<AddrRange> &observed)
{
    return [&states, observed](const MemoryImage &image) {
        std::string state;
        for (const AddrRange &range : observed) {
            if (!state.empty())
                state += ' ';
            state += std::to_string(
                image.load(range.addr,
                           static_cast<unsigned>(range.size)));
        }
        states.insert(std::move(state));
        return std::string();
    };
}

TEST(ObservedCuts, MaskIsByteRangeOverlap)
{
    TraceBuilder builder;
    builder.store(0, paddr(0), 1)
           .store(0, paddr(1), 2)
           .store(0, paddr(2), 3);
    const auto log = depsLog(builder);
    const auto dag = buildPersistDag(log);
    ASSERT_EQ(dag.groupCount(), 3u);

    // A 1-byte window into the middle cell: only its group observed.
    const std::vector<AddrRange> observed{{paddr(1) + 3, 1}};
    const std::vector<char> mask = observedGroupMask(log, dag, observed);
    int observed_count = 0;
    for (char m : mask)
        observed_count += m != 0;
    EXPECT_EQ(observed_count, 1);
}

TEST(ObservedCuts, DownwardClosureOfDiamondTop)
{
    TraceBuilder builder;
    builder.store(0, paddr(0), 1)
           .barrier(0)
           .store(0, paddr(1), 2)
           .store(0, paddr(2), 3)
           .barrier(0)
           .store(0, paddr(3), 4);
    const auto log = depsLog(builder);
    const auto dag = buildPersistDag(log);
    ASSERT_EQ(dag.groupCount(), 4u);

    // The sink depends on everything: its closure is the full set.
    std::uint32_t top = 0;
    for (std::uint32_t g = 0; g < dag.groupCount(); ++g)
        if (log[dag.groups[g].records.front()].addr == paddr(3))
            top = g;
    const auto closure = downwardClosure(dag, {top});
    EXPECT_EQ(closure.size(), 4u);
}

TEST(ObservedCuts, IndependentPersistsPruneToObservedSubsets)
{
    // Three concurrent persists, one observed: 8 cuts exhaustively,
    // 2 observable projections — with identical observed state sets.
    TraceBuilder builder;
    builder.store(0, paddr(0), 1)
           .store(0, paddr(1), 2)
           .store(0, paddr(2), 3);
    const auto log = depsLog(builder);
    const auto dag = buildPersistDag(log);
    const std::vector<AddrRange> observed{{paddr(1), 8}};

    std::set<std::string> exhaustive_states;
    const auto exhaustive = checkAllCuts(
        log, dag, collect(exhaustive_states, observed));
    std::set<std::string> pruned_states;
    const auto pruned = checkObservedCuts(
        log, dag, collect(pruned_states, observed), observed);

    EXPECT_EQ(exhaustive.cuts, 8u);
    EXPECT_EQ(pruned.cuts, 2u);
    EXPECT_EQ(pruned_states, exhaustive_states);
    EXPECT_EQ(pruned.violations, 0u);
    EXPECT_FALSE(pruned.budget_exhausted);
}

TEST(ObservedCuts, TransitiveOrderThroughUnobservedGroup)
{
    // A (observed) -> M (unobserved) -> B (observed), a chain through
    // barriers. The pruned enumeration must keep A before B even
    // though the ordering flows through an unobserved middle group:
    // projections are {}, {A}, {A,B} — never B without A.
    TraceBuilder builder;
    builder.store(0, paddr(0), 1)    // A, observed
           .barrier(0)
           .store(0, paddr(1), 2)    // M, unobserved
           .barrier(0)
           .store(0, paddr(2), 3);   // B, observed
    const auto log = depsLog(builder);
    const auto dag = buildPersistDag(log);
    ASSERT_EQ(dag.groupCount(), 3u);
    const std::vector<AddrRange> observed{{paddr(0), 8}, {paddr(2), 8}};

    std::set<std::string> pruned_states;
    const auto pruned = checkObservedCuts(
        log, dag, collect(pruned_states, observed), observed);
    EXPECT_EQ(pruned.cuts, 3u);
    EXPECT_EQ(pruned_states,
              (std::set<std::string>{"0 0", "1 0", "1 3"}));

    std::set<std::string> exhaustive_states;
    checkAllCuts(log, dag, collect(exhaustive_states, observed));
    EXPECT_EQ(pruned_states, exhaustive_states);
}

TEST(ObservedCuts, AllGroupsObservedFallsBackToExhaustive)
{
    TraceBuilder builder;
    builder.store(0, paddr(0), 1)
           .store(0, paddr(1), 2)
           .store(0, paddr(2), 3);
    const auto log = depsLog(builder);
    const auto dag = buildPersistDag(log);
    const std::vector<AddrRange> observed{
        {paddr(0), 8}, {paddr(1), 8}, {paddr(2), 8}};
    const auto pruned =
        checkObservedCuts(log, dag, [](const MemoryImage &) {
            return std::string();
        }, observed);
    EXPECT_EQ(pruned.cuts, 8u);
}

TEST(ObservedCuts, NoObservedPersistsIsOneCheck)
{
    TraceBuilder builder;
    builder.store(0, paddr(0), 1)
           .store(0, paddr(1), 2);
    const auto log = depsLog(builder);
    const auto dag = buildPersistDag(log);
    const std::vector<AddrRange> observed{{paddr(9), 8}};

    std::uint64_t calls = 0;
    const auto pruned =
        checkObservedCuts(log, dag, [&calls](const MemoryImage &image) {
            ++calls;
            EXPECT_EQ(image.load(paddr(9), 8), 0u);
            return std::string();
        }, observed);
    EXPECT_EQ(pruned.cuts, 1u);
    EXPECT_EQ(calls, 1u);
}

TEST(ObservedCuts, ViolationCutIsDownwardClosed)
{
    // Publish bug: B (observed) can persist without A (observed)
    // under barrier-free epoch. The reported counterexample cut must
    // be a genuine consistent cut (closure-expanded), reproducing the
    // violation when reconstructed.
    TraceBuilder builder;
    builder.store(0, paddr(0), 1)    // A
           .store(0, vaddr(0), 1)
           .load(1, vaddr(0))
           .store(1, paddr(2), 1);   // B, unordered with A
    const auto log = depsLog(builder);
    const auto dag = buildPersistDag(log);
    const std::vector<AddrRange> observed{{paddr(0), 8}, {paddr(2), 8}};

    const RecoveryInvariant invariant =
        [](const MemoryImage &image) -> std::string {
        if (image.load(paddr(2), 8) == 1 && image.load(paddr(0), 8) != 1)
            return "B without A";
        return "";
    };
    const auto pruned =
        checkObservedCuts(log, dag, invariant, observed);
    ASSERT_GT(pruned.violations, 0u);
    EXPECT_EQ(pruned.first_violation, "B without A");

    const auto closed =
        downwardClosure(dag, pruned.first_violation_groups);
    EXPECT_EQ(closed, pruned.first_violation_groups);
    const MemoryImage image =
        reconstructImageFromGroups(log, dag, pruned.first_violation_groups);
    EXPECT_FALSE(invariant(image).empty());

    const auto exhaustive = checkAllCuts(log, dag, invariant);
    EXPECT_GT(exhaustive.violations, 0u);
}

TEST(ObservedCuts, BudgetStopsEnumeration)
{
    TraceBuilder builder;
    for (int i = 0; i < 10; ++i)
        builder.store(0, paddr(i), i + 1);
    const auto log = depsLog(builder);
    const auto dag = buildPersistDag(log);
    std::vector<AddrRange> observed;
    for (int i = 0; i < 10; ++i)
        observed.push_back(AddrRange{paddr(i), 8});
    const auto pruned =
        checkObservedCuts(log, dag, [](const MemoryImage &) {
            return std::string();
        }, observed, /*max_cuts=*/16);
    EXPECT_TRUE(pruned.budget_exhausted);
}

TEST(CrashPruner, CountsObservedAndTotalPersists)
{
    TraceBuilder builder;
    builder.store(0, paddr(0), 1)
           .store(0, paddr(1), 2)
           .store(0, paddr(9), 3);
    CrashStatePruner pruner({AddrRange{paddr(0), 8}, {paddr(1), 8}});
    TimingConfig config;
    config.model = ModelConfig::epoch();
    config.plugins.push_back(&pruner);
    PersistTimingEngine engine(config);
    builder.trace().replay(engine);
    EXPECT_EQ(pruner.totalPersists(), 3u);
    EXPECT_EQ(pruner.observedPersists(), 2u);
    EXPECT_GE(pruner.linesTouched(), 1u);
    EXPECT_GT(pruner.lastCommitTime(paddr(0)), 0.0);
}

ExploreConfig
publishConfig(bool prune)
{
    ExploreConfig config;
    config.model = ModelConfig::epoch();
    config.prune_cuts = prune;
    return config;
}

/**
 * Buggy publish (no consumer barrier) plus unobserved persistent
 * scratch traffic on both threads. The plain publish litmus is too
 * clean to prune — its only persists ARE the observed cells (flag is
 * volatile), so pruning correctly falls back to exhaustive there.
 * Here the scratch persists inflate the exhaustive cut lattice while
 * the observable projection stays small.
 */
ProgramFactory
buggyPublishWithScratch()
{
    return []() {
        struct State
        {
            Addr data = invalid_addr;
            Addr seen = invalid_addr;
            Addr flag = invalid_addr;
            Addr scratch = invalid_addr;
        };
        auto state = std::make_shared<State>();

        ExploreProgram program;
        program.observed = std::make_shared<std::vector<ObservedCell>>();
        auto observed = program.observed;
        program.setup = [state, observed](ThreadCtx &ctx) {
            state->data = ctx.pmalloc(8);
            state->seen = ctx.pmalloc(8);
            state->scratch = ctx.pmalloc(32);
            state->flag = ctx.vmalloc(8);
            observed->assign({ObservedCell{"data", state->data, 8},
                              ObservedCell{"seen", state->seen, 8}});
        };
        program.workers.push_back([state](ThreadCtx &ctx) {
            ctx.store(state->scratch, 7);
            ctx.store(state->data, 1);
            ctx.persistBarrier();
            ctx.store(state->scratch + 8, 8);
            ctx.store(state->flag, 1);
        });
        program.workers.push_back([state](ThreadCtx &ctx) {
            ctx.store(state->scratch + 16, 9);
            if (ctx.load(state->flag) == 1)
                ctx.store(state->seen, 1); // Bug: no barrier first.
        });
        program.invariant = [state]() -> RecoveryInvariant {
            return [state](const MemoryImage &image) -> std::string {
                if (image.load(state->seen, 8) == 1 &&
                    image.load(state->data, 8) != 1)
                    return "recovery observed seen=1 without data=1";
                return "";
            };
        };
        return program;
    };
}

TEST(ExplorerPruning, SameVerdictFewerCutsOnBuggyPublish)
{
    Explorer exhaustive(buggyPublishWithScratch(), publishConfig(false));
    const ExploreResult base = exhaustive.run();
    Explorer guided(buggyPublishWithScratch(), publishConfig(true));
    const ExploreResult pruned = guided.run();

    // Same exploration, same verdict...
    EXPECT_EQ(pruned.executions, base.executions);
    EXPECT_EQ(pruned.distinct_executions, base.distinct_executions);
    EXPECT_GT(pruned.violations, 0u);
    ASSERT_TRUE(base.counterexample.has_value());
    ASSERT_TRUE(pruned.counterexample.has_value());
    EXPECT_EQ(pruned.counterexample->violation,
              base.counterexample->violation);
    // ...from a strictly smaller enumeration (the scratch persists
    // drop out of the lattice).
    EXPECT_LT(pruned.cuts_checked, base.cuts_checked);
    EXPECT_EQ(pruned.pruned_analyses, pruned.distinct_executions);
    EXPECT_TRUE(pruned.exhaustive()) << pruned.summary();
}

TEST(ExplorerPruning, CorrectPublishStaysProvenUnderPruning)
{
    Explorer guided(publishLitmusProgram(true), publishConfig(true));
    const ExploreResult pruned = guided.run();
    EXPECT_TRUE(pruned.exhaustive()) << pruned.summary();
    EXPECT_EQ(pruned.violations, 0u) << pruned.summary();
    EXPECT_FALSE(pruned.counterexample.has_value());
    EXPECT_GT(pruned.pruned_analyses, 0u);
    const std::string summary = pruned.summary();
    EXPECT_NE(summary.find("pruned analyses"), std::string::npos);
}

TEST(ExplorerPruning, PrunedCounterexampleReplays)
{
    Explorer guided(publishLitmusProgram(false), publishConfig(true));
    const ExploreResult result = guided.run();
    ASSERT_TRUE(result.counterexample.has_value());
    const Counterexample &ce = *result.counterexample;
    EXPECT_FALSE(ce.cut_groups.empty());

    Explorer replayer(publishLitmusProgram(false), publishConfig(true));
    EXPECT_EQ(replayer.execute(ce.decisions).fingerprint,
              ce.fingerprint);
}

TEST(ExplorerPruning, ShortCircuitWhenObservedNeverPersists)
{
    // The observed cell is allocated but never stored: every analysis
    // collapses to a single invariant check on the initial image.
    ProgramFactory factory = []() {
        auto cell = std::make_shared<Addr>(invalid_addr);
        ExploreProgram program;
        program.observed = std::make_shared<std::vector<ObservedCell>>();
        auto observed = program.observed;
        program.setup = [cell, observed](ThreadCtx &ctx) {
            *cell = ctx.pmalloc(8);
            ctx.pmalloc(8); // scratch the workers actually write
            observed->assign({ObservedCell{"quiet", *cell, 8}});
        };
        program.workers.push_back([cell](ThreadCtx &ctx) {
            ctx.store(*cell + 8, 1);
            ctx.persistBarrier();
            ctx.store(*cell + 8, 2);
        });
        program.invariant = [cell]() -> RecoveryInvariant {
            return [cell](const MemoryImage &image) -> std::string {
                if (image.load(*cell, 8) != 0)
                    return "quiet cell became durable";
                return "";
            };
        };
        return program;
    };
    Explorer guided(factory, publishConfig(true));
    const ExploreResult result = guided.run();
    EXPECT_TRUE(result.exhaustive()) << result.summary();
    EXPECT_EQ(result.violations, 0u) << result.summary();
    EXPECT_GT(result.pruned_short_circuits, 0u);
    EXPECT_EQ(result.pruned_short_circuits, result.distinct_executions);
    EXPECT_EQ(result.cuts_checked, result.distinct_executions);
}

} // namespace
} // namespace persim
