/**
 * @file
 * Explorer tests (src/explore/): bounded exhaustive schedule x
 * crash-state checking. The litmus program is proven correct across
 * every schedule and crash state; deleting the required barrier (the
 * litmus consumer barrier, the CWL data-before-head barrier, the 2LC
 * publish barrier) yields a concrete corrupt cut whose decision
 * string replays deterministically.
 */

#include <gtest/gtest.h>

#include "common/error.hh"
#include "explore/explore.hh"
#include "explore/programs.hh"

namespace persim {
namespace {

ExploreConfig
litmusConfig()
{
    ExploreConfig config;
    config.model = ModelConfig::epoch();
    return config;
}

TEST(ExploreLitmus, ConsumerBarrierProvenCorrectExhaustively)
{
    Explorer explorer(publishLitmusProgram(true), litmusConfig());
    const ExploreResult result = explorer.run();
    EXPECT_TRUE(result.exhaustive()) << result.summary();
    EXPECT_EQ(result.violations, 0u) << result.summary();
    EXPECT_FALSE(result.counterexample.has_value());
    // The two-thread litmus has many distinct interleavings, and all
    // of them were analyzed.
    EXPECT_GT(result.distinct_executions, 10u);
    EXPECT_GT(result.cuts_checked, result.distinct_executions);
}

TEST(ExploreLitmus, MissingConsumerBarrierYieldsCounterexample)
{
    Explorer explorer(publishLitmusProgram(false), litmusConfig());
    const ExploreResult result = explorer.run();
    EXPECT_TRUE(result.exhaustive()) << result.summary();
    EXPECT_GT(result.violations, 0u);
    ASSERT_TRUE(result.counterexample.has_value());

    const Counterexample &ce = *result.counterexample;
    EXPECT_NE(ce.violation.find("seen"), std::string::npos);
    EXPECT_FALSE(ce.cut_groups.empty());
    EXPECT_NE(ce.cut_detail.find("atomic persist groups"),
              std::string::npos);
}

TEST(ExploreLitmus, CounterexampleReplaysDeterministically)
{
    Explorer explorer(publishLitmusProgram(false), litmusConfig());
    const ExploreResult result = explorer.run();
    ASSERT_TRUE(result.counterexample.has_value());
    const Counterexample &ce = *result.counterexample;

    // Feeding the minimized decision string back through ReplayPolicy
    // reproduces the failing execution, fingerprint and all — twice.
    Explorer replayer(publishLitmusProgram(false), litmusConfig());
    const auto first = replayer.execute(ce.decisions);
    const auto second = replayer.execute(ce.decisions);
    EXPECT_EQ(first.fingerprint, ce.fingerprint);
    EXPECT_EQ(second.fingerprint, ce.fingerprint);
    EXPECT_FALSE(first.diverged);
}

TEST(ExploreLitmus, ShardedRunMatchesSerialTotals)
{
    // The parallel driver partitions work, it must not change the
    // explored set: totals are schedule-set invariants.
    ExploreConfig serial = litmusConfig();
    Explorer a(publishLitmusProgram(false), serial);
    const ExploreResult ra = a.run();

    ExploreConfig sharded = litmusConfig();
    sharded.shards = 4;
    Explorer b(publishLitmusProgram(false), sharded);
    const ExploreResult rb = b.run();

    EXPECT_EQ(ra.executions, rb.executions);
    EXPECT_EQ(ra.distinct_executions, rb.distinct_executions);
    EXPECT_EQ(ra.cuts_checked, rb.cuts_checked);
    EXPECT_EQ(ra.violations, rb.violations);
    EXPECT_TRUE(rb.exhaustive());
    ASSERT_TRUE(rb.counterexample.has_value());
}

TEST(ExploreLitmus, StrictModelNeedsNoConsumerBarrier)
{
    // Under strict persistency the load itself orders the persists,
    // so even the barrier-free consumer is correct on every schedule.
    ExploreConfig config;
    config.model = ModelConfig::strict();
    Explorer explorer(publishLitmusProgram(false), config);
    const ExploreResult result = explorer.run();
    EXPECT_TRUE(result.exhaustive()) << result.summary();
    EXPECT_EQ(result.violations, 0u) << result.summary();
}

TEST(ExploreQueue, CwlWithoutDataHeadBarrierIsProvablyCorrupt)
{
    // One thread, one insert, Algorithm 1 line-8 barrier deleted: the
    // head persist races the entry data, so a corrupt crash state is
    // reachable — and with a single worker the exploration is fully
    // exhaustive (one schedule, every cut).
    QueueExploreOptions options;
    options.kind = QueueKind::CopyWhileLocked;
    options.threads = 1;
    options.queue.omit_data_head_barrier = true;

    ExploreConfig config;
    config.model = queueExploreModel();
    Explorer explorer(queueProgram(options), config);
    const ExploreResult result = explorer.run();
    EXPECT_TRUE(result.exhaustive()) << result.summary();
    EXPECT_EQ(result.executions, 1u);
    EXPECT_GT(result.violations, 0u) << result.summary();
    ASSERT_TRUE(result.counterexample.has_value());
    EXPECT_FALSE(result.counterexample->cut_groups.empty());
}

TEST(ExploreQueue, CwlWithRequiredBarrierFindsNoViolation)
{
    QueueExploreOptions options;
    options.kind = QueueKind::CopyWhileLocked;
    options.threads = 1;

    ExploreConfig config;
    config.model = queueExploreModel();
    Explorer explorer(queueProgram(options), config);
    const ExploreResult result = explorer.run();
    EXPECT_TRUE(result.exhaustive()) << result.summary();
    EXPECT_EQ(result.violations, 0u) << result.summary();
}

/** Budgeted two-thread 2LC exploration (the tree is too wide to
    exhaust; single shard keeps the search deterministic). */
ExploreConfig
tlcConfig()
{
    ExploreConfig config;
    config.model = queueExploreModel();
    config.max_executions = 2000;
    config.samples = 500;
    config.shards = 1;
    return config;
}

TEST(ExploreQueue, TlcMissingPublishBarrierFindsCorruptCut)
{
    // DESIGN.md Section 7.2: without the publish barrier, a thread
    // committing a peer's entry persists the head without the peer's
    // data. The explorer must find a concrete schedule + crash cut.
    QueueExploreOptions options;
    options.queue.barrier_before_publish = false;
    Explorer explorer(queueProgram(options), tlcConfig());
    const ExploreResult result = explorer.run();
    EXPECT_GT(result.violations, 0u) << result.summary();
    ASSERT_TRUE(result.counterexample.has_value());

    const Counterexample &ce = *result.counterexample;
    EXPECT_NE(ce.violation.find("corrupt"), std::string::npos);
    EXPECT_FALSE(ce.decisions.empty());

    // The counterexample replays deterministically.
    Explorer replayer(queueProgram(options), tlcConfig());
    EXPECT_EQ(replayer.execute(ce.decisions).fingerprint,
              ce.fingerprint);
}

TEST(ExploreQueue, TlcWithPublishBarrierSurvivesTheSameBudget)
{
    QueueExploreOptions options;
    options.queue.barrier_before_publish = true;
    Explorer explorer(queueProgram(options), tlcConfig());
    const ExploreResult result = explorer.run();
    EXPECT_EQ(result.violations, 0u) << result.summary();
    EXPECT_FALSE(result.counterexample.has_value());
    EXPECT_GT(result.cuts_checked, 1000u);
}

TEST(ExploreResultApi, SummaryMentionsBudgets)
{
    ExploreConfig config;
    config.model = ModelConfig::epoch();
    config.max_executions = 4;
    Explorer explorer(publishLitmusProgram(true), config);
    const ExploreResult result = explorer.run();
    EXPECT_TRUE(result.schedule_budget_exhausted);
    EXPECT_FALSE(result.exhaustive());
    EXPECT_NE(result.summary().find("schedule budget exhausted"),
              std::string::npos);
}

TEST(ExploreResultApi, ExplorerRunsOnlyOnce)
{
    ExploreConfig config;
    config.model = ModelConfig::epoch();
    Explorer explorer(publishLitmusProgram(true), config);
    (void)explorer.run();
    EXPECT_THROW(explorer.run(), FatalError);
}

} // namespace
} // namespace persim
