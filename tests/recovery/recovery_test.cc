/**
 * @file
 * Recovery observer tests: image reconstruction, log consistency,
 * and failure injection — including the headline result that the
 * queues' annotations are sufficient for recovery under each model,
 * and that removing a required barrier is detectably unsafe.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "bench_util/queue_workload.hh"
#include "queue/payload.hh"
#include "queue/queue.hh"
#include "recovery/recovery.hh"
#include "tests/support/trace_builder.hh"

namespace persim {
namespace {

using test::paddr;
using test::TraceBuilder;

TEST(Reconstruct, AppliesOnlyPersistsUpToCrashTime)
{
    TraceBuilder builder;
    builder.store(0, paddr(0), 11)
           .barrier(0)
           .store(0, paddr(1), 22)
           .barrier(0)
           .store(0, paddr(2), 33);
    const auto log = builder.analyzeLog(ModelConfig::epoch());
    ASSERT_EQ(log.size(), 3u);

    const auto none = reconstructImage(log, 0.5);
    EXPECT_EQ(none.load(paddr(0), 8), 0u);

    const auto one = reconstructImage(log, 1.0);
    EXPECT_EQ(one.load(paddr(0), 8), 11u);
    EXPECT_EQ(one.load(paddr(1), 8), 0u);

    const auto two = reconstructImage(log, 2.0);
    EXPECT_EQ(two.load(paddr(1), 8), 22u);
    EXPECT_EQ(two.load(paddr(2), 8), 0u);

    const auto all = reconstructImage(log, 100.0);
    EXPECT_EQ(all.load(paddr(2), 8), 33u);
}

TEST(Reconstruct, SameAddressLastValueWins)
{
    TraceBuilder builder;
    builder.store(0, paddr(0), 1).store(0, paddr(0), 2);
    const auto log = builder.analyzeLog(ModelConfig::epoch());
    // Both coalesce at the same time; trace order breaks the tie.
    const auto image = reconstructImage(log, 1.0);
    EXPECT_EQ(image.load(paddr(0), 8), 2u);
}

TEST(Reconstruct, SubWordPersistsApplyPartially)
{
    // Pin the second half-word behind a foreign persist so the two
    // halves cannot coalesce; a crash after level 1 shows a torn
    // (but model-legal) half-written word.
    TraceBuilder builder;
    builder.store(0, paddr(0), 0x11223344, 4)
           .barrier(0)
           .store(0, paddr(9), 1)
           .barrier(0)
           .store(0, paddr(0) + 4, 0x55667788, 4);
    const auto log = builder.analyzeLog(ModelConfig::epoch());
    const auto image = reconstructImage(log, 1.0);
    EXPECT_EQ(image.load(paddr(0), 8), 0x11223344ull);
    const auto full = reconstructImage(log, 3.0);
    EXPECT_EQ(full.load(paddr(0), 8), 0x5566778811223344ull);
}

TEST(Reconstruct, CrashExactlyAtCompletionTimeIsInclusive)
{
    // The observer's cut is "time <= T": a crash at exactly a
    // persist's completion time includes it.
    TraceBuilder builder;
    builder.store(0, paddr(0), 4).barrier(0).store(0, paddr(1), 6);
    const auto log = builder.analyzeLog(ModelConfig::epoch());
    ASSERT_EQ(log.size(), 2u);

    const auto at_first = reconstructImage(log, log[0].time);
    EXPECT_EQ(at_first.load(paddr(0), 8), 4u);
    EXPECT_EQ(at_first.load(paddr(1), 8), 0u);

    const auto at_second = reconstructImage(log, log[1].time);
    EXPECT_EQ(at_second.load(paddr(1), 8), 6u);
}

TEST(Reconstruct, BoundarySamplesAreNothingAndEverything)
{
    // The crash times injectFailures always includes: before the
    // first persist (empty image) and after the last (full image).
    TraceBuilder builder;
    builder.store(0, paddr(0), 1)
           .barrier(0)
           .store(0, paddr(1), 2)
           .barrier(0)
           .store(0, paddr(2), 3);
    const auto log = builder.analyzeLog(ModelConfig::epoch());
    double last = 0.0;
    for (const auto &record : log)
        last = std::max(last, record.time);

    const auto nothing = reconstructImage(log, -1.0);
    for (std::uint64_t slot = 0; slot < 3; ++slot)
        EXPECT_EQ(nothing.load(paddr(slot), 8), 0u);

    const auto everything = reconstructImage(log, last + 1.0);
    EXPECT_EQ(everything.load(paddr(0), 8), 1u);
    EXPECT_EQ(everything.load(paddr(1), 8), 2u);
    EXPECT_EQ(everything.load(paddr(2), 8), 3u);
}

TEST(Reconstruct, CoalescedGroupTieBreaksInTraceOrder)
{
    // Same-address persists that coalesce share one completion time;
    // trace order must decide which value survives, and crashing at
    // that shared time applies the whole group.
    TraceBuilder builder;
    builder.store(0, paddr(0), 10)
           .store(0, paddr(0), 20)
           .store(0, paddr(0), 30);
    const auto log = builder.analyzeLog(ModelConfig::epoch());
    ASSERT_EQ(log.size(), 3u);
    ASSERT_EQ(log[1].binding_source, DepSource::Coalesced);
    ASSERT_EQ(log[2].binding_source, DepSource::Coalesced);
    ASSERT_EQ(log[0].time, log[2].time);

    const auto image = reconstructImage(log, log[0].time);
    EXPECT_EQ(image.load(paddr(0), 8), 30u);
}

TEST(LogConsistency, DetectsTamperedTimes)
{
    TraceBuilder builder;
    builder.store(0, paddr(0)).barrier(0).store(0, paddr(1));
    auto log = builder.analyzeLog(ModelConfig::epoch());
    EXPECT_EQ(verifyLogConsistency(log), "");

    auto broken = log;
    broken[1].time = 0.5; // Before its binding.
    EXPECT_NE(verifyLogConsistency(broken), "");

    auto misid = log;
    misid[1].id = 7;
    EXPECT_NE(verifyLogConsistency(misid), "");
}

TEST(LogConsistency, DetectsSpaViolation)
{
    TraceBuilder builder;
    builder.store(0, paddr(0), 1)
           .barrier(0)
           .store(0, paddr(5), 2)
           .barrier(0)
           .store(0, paddr(0), 3);
    auto log = builder.analyzeLog(ModelConfig::epoch());
    ASSERT_EQ(log.size(), 3u);
    EXPECT_EQ(verifyLogConsistency(log), "");
    log[2].time = 0.25; // Same word as record 0, earlier time.
    log[2].binding = invalid_persist;
    EXPECT_NE(verifyLogConsistency(log), "");
}

TEST(LogConsistency, DetectsSameAddressTimeRegression)
{
    // Two persists to the same word with the later one rewound to an
    // earlier time: a strong-persist-atomicity violation even though
    // every binding constraint still holds.
    TraceBuilder builder;
    builder.store(0, paddr(0), 1)
           .barrier(0)
           .store(0, paddr(1), 2)
           .barrier(0)
           .store(0, paddr(0), 3);
    auto log = builder.analyzeLog(ModelConfig::epoch());
    ASSERT_EQ(log.size(), 3u);
    ASSERT_EQ(verifyLogConsistency(log), "");

    log[2].time = log[0].time - 0.5;
    log[2].binding = invalid_persist;
    log[2].binding_source = DepSource::None;
    log[2].start = 0.0;
    const auto verdict = verifyLogConsistency(log);
    EXPECT_NE(verdict.find("strong persist atomicity"),
              std::string::npos)
        << verdict;
}

TEST(LogConsistency, DetectsRecordEarlierThanItsBinding)
{
    TraceBuilder builder;
    builder.store(0, paddr(0), 1).barrier(0).store(0, paddr(1), 2);
    auto log = builder.analyzeLog(ModelConfig::epoch());
    ASSERT_EQ(log.size(), 2u);
    ASSERT_NE(log[1].binding, invalid_persist);

    // Record 1 claims to complete before the dependence that must
    // precede it.
    log[1].time = log[0].time / 2.0;
    log[1].start = log[1].time / 2.0;
    const auto verdict = verifyLogConsistency(log);
    EXPECT_NE(verdict.find("does not follow its binding"),
              std::string::npos)
        << verdict;
}

TEST(LogConsistency, ValidatesTheInFlightWindow)
{
    TraceBuilder builder;
    builder.store(0, paddr(0), 1).barrier(0).store(0, paddr(1), 2);
    auto log = builder.analyzeLog(ModelConfig::epoch());
    ASSERT_EQ(log.size(), 2u);
    ASSERT_EQ(verifyLogConsistency(log), "");

    // Inverted window: a persist cannot start after it completes.
    auto inverted = log;
    inverted[1].start = inverted[1].time + 1.0;
    EXPECT_NE(verifyLogConsistency(inverted).find("inverted"),
              std::string::npos);

    // Wrong anchor: a bound persist starts when its binding
    // completes, nowhere else.
    auto unanchored = log;
    unanchored[1].start = log[0].time / 2.0;
    EXPECT_NE(verifyLogConsistency(unanchored).find("anchors"),
              std::string::npos);

    // An unconstrained persist starts at time 0.
    auto eager = log;
    eager[0].start = 0.25;
    EXPECT_NE(verifyLogConsistency(eager).find("unconstrained"),
              std::string::npos);
}

TEST(Injection, OrderedChainNeverExposesSuffixWithoutPrefix)
{
    // Persist X then (barrier) persist Y: no crash state may contain
    // Y without X.
    TraceBuilder builder;
    builder.store(0, paddr(0), 7).barrier(0).store(0, paddr(1), 9);

    InjectionConfig config;
    config.model = ModelConfig::epoch();
    config.realizations = 8;
    config.crashes_per_realization = 32;
    const auto result = injectFailures(
        builder.trace(), config, [](const MemoryImage &image) {
            const bool x = image.load(paddr(0), 8) == 7;
            const bool y = image.load(paddr(1), 8) == 9;
            return (y && !x) ? std::string("Y persisted without X") :
                std::string();
        });
    EXPECT_TRUE(result.ok()) << result.first_violation;
    EXPECT_GT(result.samples, 200u);
}

TEST(Injection, UnorderedPairExposesBothOrders)
{
    // Without a barrier the two persists race: across enough
    // stochastic realizations both one-sided states appear.
    TraceBuilder builder;
    builder.store(0, paddr(0), 7).store(0, paddr(1), 9);

    InjectionConfig config;
    config.model = ModelConfig::epoch();
    config.realizations = 32;
    config.crashes_per_realization = 32;

    bool saw_x_only = false;
    bool saw_y_only = false;
    injectFailures(builder.trace(), config,
                   [&](const MemoryImage &image) {
                       const bool x = image.load(paddr(0), 8) == 7;
                       const bool y = image.load(paddr(1), 8) == 9;
                       saw_x_only |= (x && !y);
                       saw_y_only |= (y && !x);
                       return std::string();
                   });
    EXPECT_TRUE(saw_x_only);
    EXPECT_TRUE(saw_y_only);
}

struct QueueInjectionCase
{
    QueueKind kind;
    AnnotationVariant variant;
    ModelConfig model;
    const char *name;
};

class QueueInjection
    : public ::testing::TestWithParam<QueueInjectionCase>
{
};

TEST_P(QueueInjection, AnnotationsSufficeForRecovery)
{
    const auto &param = GetParam();
    QueueWorkloadConfig config;
    config.kind = param.kind;
    config.variant = param.variant;
    config.threads = 3;
    config.inserts_per_thread = 8;
    config.seed = 99;

    InMemoryTrace trace;
    std::vector<TraceSink *> sinks{&trace};
    const auto workload = runQueueWorkload(config, sinks);

    InjectionConfig injection;
    injection.model = param.model;
    injection.realizations = 6;
    injection.crashes_per_realization = 48;
    const auto result = injectFailures(
        trace, injection,
        makeRecoveryInvariant(workload.layout, workload.golden));
    EXPECT_TRUE(result.ok())
        << param.name << ": " << result.first_violation;
}

INSTANTIATE_TEST_SUITE_P(
    Models, QueueInjection,
    ::testing::Values(
        QueueInjectionCase{QueueKind::CopyWhileLocked,
                           AnnotationVariant::Conservative,
                           ModelConfig::strict(), "cwl_strict"},
        QueueInjectionCase{QueueKind::CopyWhileLocked,
                           AnnotationVariant::Conservative,
                           ModelConfig::epoch(), "cwl_epoch"},
        QueueInjectionCase{QueueKind::CopyWhileLocked,
                           AnnotationVariant::Racing,
                           ModelConfig::epoch(), "cwl_racing"},
        QueueInjectionCase{QueueKind::CopyWhileLocked,
                           AnnotationVariant::Strand,
                           ModelConfig::strand(), "cwl_strand"},
        QueueInjectionCase{QueueKind::TwoLockConcurrent,
                           AnnotationVariant::Racing,
                           ModelConfig::epoch(), "tlc_epoch"},
        QueueInjectionCase{QueueKind::TwoLockConcurrent,
                           AnnotationVariant::Strand,
                           ModelConfig::strand(), "tlc_strand"},
        QueueInjectionCase{QueueKind::TwoLockConcurrent,
                           AnnotationVariant::Racing,
                           ModelConfig::strict(), "tlc_strict"}),
    [](const ::testing::TestParamInfo<QueueInjectionCase> &info) {
        return info.param.name;
    });

TEST(QueueInjectionNegative, RemovingDataHeadBarrierCorruptsRecovery)
{
    // Build the CWL workload without the required line-8 barrier and
    // analyze under epoch persistency: some crash state must expose a
    // head that covers unpersisted data.
    QueueOptions options;
    options.pad = 64;
    options.capacity = 64 * 128;
    options.conservative_barriers = false;
    options.omit_data_head_barrier = true;

    EngineConfig engine_config;
    engine_config.seed = 5;
    InMemoryTrace trace;
    ExecutionEngine engine(engine_config, &trace);
    std::unique_ptr<PersistentQueue> queue;
    engine.runSetup([&](ThreadCtx &ctx) {
        queue = CwlQueue::create(ctx, options, 1);
    });
    engine.run({[&queue](ThreadCtx &ctx) {
        for (std::uint64_t i = 1; i <= 20; ++i) {
            const auto payload = makePayload(i, 100);
            queue->insert(ctx, 0, payload.data(), payload.size(), i);
        }
    }});

    InjectionConfig injection;
    injection.model = ModelConfig::epoch();
    injection.realizations = 16;
    injection.crashes_per_realization = 64;
    const auto result = injectFailures(
        trace, injection,
        makeRecoveryInvariant(queue->layout(), queue->golden()));
    EXPECT_GT(result.violations, 0u)
        << "the line-8 barrier should be load-bearing";
}

TEST(QueueInjectionNegative, TlcWithoutPublishBarrierCorruptsRecovery)
{
    // The deviation documented in queue.hh: without the barrier
    // between COPY and publication, an entry committed by *another*
    // thread may have its head persist race ahead of its data.
    QueueOptions options;
    options.pad = 64;
    options.capacity = 64 * 256;
    options.conservative_barriers = false;
    options.barrier_before_publish = false;

    EngineConfig engine_config;
    engine_config.seed = 11;
    engine_config.quantum = 4;
    InMemoryTrace trace;
    ExecutionEngine engine(engine_config, &trace);
    std::unique_ptr<PersistentQueue> queue;
    engine.runSetup([&](ThreadCtx &ctx) {
        queue = TlcQueue::create(ctx, options, 4);
    });
    std::vector<ExecutionEngine::WorkerFn> workers;
    for (int t = 0; t < 4; ++t) {
        workers.push_back([&queue, t](ThreadCtx &ctx) {
            for (std::uint64_t i = 1; i <= 12; ++i) {
                const std::uint64_t op = t * 100 + i;
                const auto payload = makePayload(op, 100);
                queue->insert(ctx, t, payload.data(), payload.size(), op);
            }
        });
    }
    engine.run(workers);

    InjectionConfig injection;
    injection.model = ModelConfig::epoch();
    injection.realizations = 24;
    injection.crashes_per_realization = 64;
    const auto result = injectFailures(
        trace, injection,
        makeRecoveryInvariant(queue->layout(), queue->golden()));
    EXPECT_GT(result.violations, 0u)
        << "publication without a barrier should be unsafe";
}

// ---------------------------------------------------------------------
// injectFailures degenerate traces
// ---------------------------------------------------------------------

TEST(InjectDegenerate, EmptyTraceChecksTheEmptyImageOnce)
{
    TraceBuilder builder; // No events at all.
    InjectionConfig config;
    config.model = ModelConfig::epoch();

    std::uint64_t calls = 0;
    const auto result = injectFailures(
        builder.trace(), config, [&](const MemoryImage &image) {
            ++calls;
            EXPECT_EQ(image.load(paddr(0), 8), 0u);
            return std::string();
        });
    EXPECT_EQ(result.samples, 1u);
    EXPECT_EQ(calls, 1u);
    EXPECT_TRUE(result.ok());
}

TEST(InjectDegenerate, ZeroPersistTraceChecksTheEmptyImageOnce)
{
    TraceBuilder builder;
    builder.load(0, paddr(0)).load(1, test::vaddr(0)).barrier(0);
    InjectionConfig config;
    config.model = ModelConfig::epoch();

    const auto result = injectFailures(
        builder.trace(), config, [](const MemoryImage &image) {
            return image.load(paddr(0), 8) == 0
                       ? std::string()
                       : std::string("phantom persist");
        });
    EXPECT_EQ(result.samples, 1u);
    EXPECT_TRUE(result.ok());
}

TEST(InjectDegenerate, SinglePersistChecksBothCrashStates)
{
    TraceBuilder builder;
    builder.store(0, paddr(0), 5);
    InjectionConfig config;
    config.model = ModelConfig::epoch();

    bool saw_empty = false;
    bool saw_persisted = false;
    const auto result = injectFailures(
        builder.trace(), config, [&](const MemoryImage &image) {
            const std::uint64_t value = image.load(paddr(0), 8);
            saw_empty |= value == 0;
            saw_persisted |= value == 5;
            return std::string();
        });
    EXPECT_EQ(result.samples, 2u);
    EXPECT_TRUE(saw_empty);
    EXPECT_TRUE(saw_persisted);
    EXPECT_TRUE(result.ok());
}

TEST(InjectDegenerate, SinglePersistViolationIsReported)
{
    TraceBuilder builder;
    builder.store(0, paddr(0), 5);
    InjectionConfig config;
    config.model = ModelConfig::epoch();

    const auto result = injectFailures(
        builder.trace(), config, [](const MemoryImage &image) {
            return image.load(paddr(0), 8) == 5
                       ? std::string("torn value")
                       : std::string();
        });
    EXPECT_EQ(result.violations, 1u);
    EXPECT_NE(result.first_violation.find("degenerate log"),
              std::string::npos);
    EXPECT_NE(result.first_violation.find("torn value"),
              std::string::npos);
}

} // namespace
} // namespace persim
