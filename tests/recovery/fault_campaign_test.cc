/**
 * @file
 * Device-fault campaign tests: the zero-fault campaign reproduces
 * injectFailures bit-identically, parallel fan-out equals the serial
 * baseline, every recorded violation replays to the same verdict from
 * its repro line, and tearing distinguishes correctly-annotated
 * durability protocols from their barrier-elision mutants.
 */

#include <gtest/gtest.h>

#include <mutex>
#include <vector>

#include "bench_util/queue_workload.hh"
#include "pstruct/log.hh"
#include "queue/queue.hh"
#include "recovery/fault_campaign.hh"
#include "tests/support/trace_builder.hh"

namespace persim {
namespace {

using test::paddr;
using test::TraceBuilder;

/** A small CWL-queue workload trace plus its recovery pieces. */
struct QueueFixture
{
    InMemoryTrace trace;
    QueueLayout layout;
    std::map<std::uint64_t, GoldenEntry> golden;
};

QueueFixture
buildQueue(bool checksummed_head)
{
    QueueWorkloadConfig config;
    config.kind = QueueKind::CopyWhileLocked;
    config.variant = AnnotationVariant::Conservative;
    config.threads = 2;
    config.inserts_per_thread = 10;
    config.entry_bytes = 24;
    config.seed = 21;
    config.wrap_slots = 0;
    config.checksummed_head = checksummed_head;

    QueueFixture fixture;
    const auto result = runQueueWorkload(config, {&fixture.trace});
    fixture.layout = result.layout;
    fixture.golden = result.golden;
    return fixture;
}

/** A log workload trace plus its recovery invariant inputs. */
struct LogFixture
{
    InMemoryTrace trace;
    LogLayout layout;
    std::vector<GoldenLogRecord> golden;
};

LogFixture
buildLog(bool omit_order_annotations)
{
    LogOptions options;
    options.capacity = 1 << 14;
    options.use_strands = true;
    options.omit_order_annotations = omit_order_annotations;

    LogFixture fixture;
    EngineConfig engine_config;
    engine_config.seed = 13;
    engine_config.quantum = 4;
    ExecutionEngine engine(engine_config, &fixture.trace);
    auto log = std::make_shared<PersistentLog>();
    engine.runSetup([&](ThreadCtx &ctx) {
        *log = PersistentLog::create(ctx, options, 2);
    });
    std::vector<ExecutionEngine::WorkerFn> workers;
    for (int t = 0; t < 2; ++t) {
        workers.push_back([log, t](ThreadCtx &ctx) {
            for (std::uint64_t i = 0; i < 10; ++i) {
                std::uint8_t payload[20];
                for (unsigned b = 0; b < sizeof(payload); ++b)
                    payload[b] = static_cast<std::uint8_t>(
                        t * 100 + i * 7 + b);
                log->append(ctx, t, payload, sizeof(payload));
            }
        });
    }
    engine.run(workers);
    fixture.layout = log->layout();
    fixture.golden = log->goldenRecords();
    return fixture;
}

void
expectSameResults(const InjectionResult &a, const InjectionResult &b)
{
    EXPECT_EQ(a.samples, b.samples);
    EXPECT_EQ(a.violations, b.violations);
    EXPECT_EQ(a.first_violation, b.first_violation);
    EXPECT_EQ(a.first_violation_time, b.first_violation_time);
    ASSERT_EQ(a.violation_list.size(), b.violation_list.size());
    for (std::size_t i = 0; i < a.violation_list.size(); ++i) {
        const ViolationRecord &va = a.violation_list[i];
        const ViolationRecord &vb = b.violation_list[i];
        EXPECT_EQ(va.realization, vb.realization);
        EXPECT_EQ(va.realization_seed, vb.realization_seed);
        EXPECT_EQ(va.crash_time, vb.crash_time);
        EXPECT_EQ(va.fault_seed, vb.fault_seed);
        EXPECT_EQ(va.verdict, vb.verdict);
        EXPECT_EQ(va.fault_summary, vb.fault_summary);
    }
}

TEST(FaultCampaign, ZeroFaultCampaignReproducesInjectFailures)
{
    // Beyond field-for-field equal results, every sampled image must
    // be byte-identical: hash each image inside the invariant and
    // compare the per-sample digests.
    const QueueFixture fixture = buildQueue(false);
    InjectionConfig injection;
    injection.model = ModelConfig::epoch();
    injection.realizations = 4;
    injection.crashes_per_realization = 24;
    injection.seed = 5;

    const auto digestingInvariant = [&](std::vector<std::uint64_t> *out) {
        const auto base =
            makeRecoveryInvariant(fixture.layout, fixture.golden);
        const Addr lo = fixture.layout.header;
        const std::uint64_t span =
            fixture.layout.data + fixture.layout.capacity - lo;
        return [=](const MemoryImage &image) {
            std::uint64_t digest = 0xcbf29ce484222325ull;
            for (std::uint64_t i = 0; i < span; ++i) {
                digest ^= image.load(lo + i, 1);
                digest *= 0x100000001b3ull;
            }
            out->push_back(digest);
            return base(image);
        };
    };

    std::vector<std::uint64_t> legacy_digests;
    const InjectionResult legacy = injectFailures(
        fixture.trace, injection, digestingInvariant(&legacy_digests));

    FaultCampaignConfig campaign;
    campaign.injection = injection;
    ASSERT_FALSE(campaign.faults.enabled());
    std::vector<std::uint64_t> campaign_digests;
    const InjectionResult faulted = runFaultCampaign(
        fixture.trace, campaign, digestingInvariant(&campaign_digests));

    expectSameResults(legacy, faulted);
    EXPECT_EQ(legacy_digests, campaign_digests);
    EXPECT_GT(legacy.samples, 0u);
    EXPECT_TRUE(legacy.ok()) << legacy.first_violation;
}

TEST(FaultCampaign, ParallelEqualsSerial)
{
    // Full fault mix on a mutant surface (so violations are recorded)
    // at jobs=1 vs jobs=4: bit-identical InjectionResults.
    const LogFixture fixture = buildLog(true);
    FaultCampaignConfig campaign;
    campaign.injection.model = ModelConfig::strand();
    campaign.injection.realizations = 8;
    campaign.injection.crashes_per_realization = 16;
    campaign.injection.seed = 9;
    campaign.faults.tear_persists = true;
    campaign.faults.atomic_write_unit = 4;
    campaign.faults.media_error_per_write = 1e-4;
    campaign.faults.drop_drain_p = 0.25;
    campaign.faults.drain_latency = 0.5;

    const auto invariant =
        makeLogRecoveryInvariant(fixture.layout, fixture.golden);
    campaign.injection.jobs = 1;
    const InjectionResult serial =
        runFaultCampaign(fixture.trace, campaign, invariant);
    campaign.injection.jobs = 4;
    const InjectionResult parallel =
        runFaultCampaign(fixture.trace, campaign, invariant);
    expectSameResults(serial, parallel);
    EXPECT_GT(serial.violations, 0u);
}

TEST(FaultCampaign, EveryRecordedViolationReplaysFromItsRepro)
{
    const LogFixture fixture = buildLog(true);
    FaultCampaignConfig campaign;
    campaign.injection.model = ModelConfig::strand();
    campaign.injection.realizations = 4;
    campaign.injection.crashes_per_realization = 16;
    campaign.injection.seed = 3;
    campaign.injection.max_recorded_violations = 8;
    campaign.faults.tear_persists = true;
    campaign.faults.atomic_write_unit = 4;

    const auto invariant =
        makeLogRecoveryInvariant(fixture.layout, fixture.golden);
    const InjectionResult result =
        runFaultCampaign(fixture.trace, campaign, invariant);
    ASSERT_GT(result.violation_list.size(), 0u);

    for (const ViolationRecord &violation : result.violation_list) {
        const std::string line = violationRepro(violation);
        FaultRepro repro;
        ASSERT_TRUE(parseFaultRepro(line, repro)) << line;
        EXPECT_EQ(repro.realization_seed, violation.realization_seed);
        EXPECT_EQ(repro.crash_time, violation.crash_time);
        EXPECT_EQ(repro.fault_seed, violation.fault_seed);

        FaultOutcome outcome;
        const std::string verdict = replayFaultRepro(
            fixture.trace, campaign, repro, invariant, &outcome);
        EXPECT_EQ(verdict, violation.verdict) << line;
        if (!violation.fault_summary.empty()) {
            EXPECT_EQ(outcome.summary(), violation.fault_summary);
        }
    }
}

TEST(FaultCampaign, TearingIsAbsorbedByTheChecksummedLog)
{
    // The acceptance scenario: with tearing enabled, the correctly
    // annotated log recovers cleanly from every crash state (a torn
    // tail record fails its checksum and truncates away), while the
    // barrier-elision mutant is caught (a later record persists over
    // a torn predecessor — a durable hole).
    FaultCampaignConfig campaign;
    campaign.injection.model = ModelConfig::strand();
    campaign.injection.realizations = 6;
    campaign.injection.crashes_per_realization = 32;
    campaign.injection.seed = 7;
    campaign.faults.tear_persists = true;
    campaign.faults.atomic_write_unit = 4;

    const LogFixture correct = buildLog(false);
    const InjectionResult clean = runFaultCampaign(
        correct.trace, campaign,
        makeLogRecoveryInvariant(correct.layout, correct.golden));
    EXPECT_TRUE(clean.ok()) << clean.first_violation;
    EXPECT_GT(clean.samples, 100u);

    const LogFixture mutant = buildLog(true);
    const InjectionResult caught = runFaultCampaign(
        mutant.trace, campaign,
        makeLogRecoveryInvariant(mutant.layout, mutant.golden));
    EXPECT_GT(caught.violations, 0u)
        << "inter-record ordering should be load-bearing under tearing";
}

TEST(FaultCampaign, TearingIsAbsorbedByDetectAndDiscardRecovery)
{
    // Same story for the queue: with a checksummed head and
    // detect-and-discard recovery, a torn head or torn uncommitted
    // tail entry degrades gracefully. Committed entries cannot tear
    // (their data strictly precedes the covering head persist), so
    // the campaign stays clean.
    const QueueFixture fixture = buildQueue(true);
    FaultCampaignConfig campaign;
    campaign.injection.model = ModelConfig::epoch();
    campaign.injection.realizations = 6;
    campaign.injection.crashes_per_realization = 32;
    campaign.injection.seed = 19;
    campaign.faults.tear_persists = true;
    campaign.faults.atomic_write_unit = 4;

    const InjectionResult result = runFaultCampaign(
        fixture.trace, campaign,
        makeDetectAndDiscardInvariant(fixture.layout, fixture.golden));
    EXPECT_TRUE(result.ok()) << result.first_violation;
    EXPECT_GT(result.samples, 100u);
}

TEST(FaultCampaign, DroppedDrainsViolateEvenCorrectProtocols)
{
    // Dropped drain-buffer writes defeat pointer-publish ordering:
    // data acknowledged as durable vanishes, so even the hardened
    // queue reports discarded committed entries.
    const QueueFixture fixture = buildQueue(true);
    FaultCampaignConfig campaign;
    campaign.injection.model = ModelConfig::epoch();
    campaign.injection.realizations = 8;
    campaign.injection.crashes_per_realization = 32;
    campaign.injection.seed = 23;
    campaign.faults.drop_drain_p = 0.5;
    campaign.faults.drain_latency = 0.5;

    const InjectionResult result = runFaultCampaign(
        fixture.trace, campaign,
        makeDetectAndDiscardInvariant(fixture.layout, fixture.golden));
    EXPECT_GT(result.violations, 0u);
    ASSERT_GT(result.violation_list.size(), 0u);
    // The recorded violation names the injected faults.
    EXPECT_FALSE(result.violation_list[0].fault_summary.empty());
    EXPECT_NE(result.violation_list[0].fault_summary.find("dropped"),
              std::string::npos);
}

TEST(FaultCampaign, ReproParsingIgnoresLeadingTextAndRejectsGarbage)
{
    FaultRepro repro;
    repro.realization_seed = 0xdeadbeefcafeull;
    repro.crash_time = 1.0 / 3.0;
    repro.fault_seed = 0x1234ull;
    const std::string line =
        "cwl-queue/torn repro " + formatFaultRepro(repro) +
        " # some verdict text";
    FaultRepro parsed;
    ASSERT_TRUE(parseFaultRepro(line, parsed));
    EXPECT_EQ(parsed.realization_seed, repro.realization_seed);
    EXPECT_EQ(parsed.crash_time, repro.crash_time); // Exact: hexfloat.
    EXPECT_EQ(parsed.fault_seed, repro.fault_seed);

    EXPECT_FALSE(parseFaultRepro("no repro here", parsed));
    EXPECT_FALSE(parseFaultRepro("seed=0x12 crash=zzz", parsed));
}

} // namespace
} // namespace persim
