/**
 * @file
 * Exhaustive crash-cut enumeration tests (src/recovery/cuts.hh): DAG
 * construction from dependence-recorded persist logs, consistent-cut
 * counting, image reconstruction, and counterexample-cut
 * minimization.
 */

#include <gtest/gtest.h>

#include "common/error.hh"
#include "recovery/cuts.hh"
#include "tests/support/trace_builder.hh"

namespace persim {
namespace {

using test::paddr;
using test::TraceBuilder;
using test::vaddr;

/** Level-clock analysis with full dependence recording. */
PersistLog
depsLog(const TraceBuilder &builder, const ModelConfig &model)
{
    TimingConfig config;
    config.model = model;
    config.record_deps = true;
    PersistTimingEngine engine(config);
    builder.trace().replay(engine);
    return engine.takeLog();
}

/** Invariant that never fails (pure enumeration). */
RecoveryInvariant
acceptAll()
{
    return [](const MemoryImage &) { return std::string(); };
}

TEST(PersistDag, IndependentPersistsEnumerateAllSubsets)
{
    // Three persists in one epoch: pairwise concurrent, so every
    // subset is a consistent cut.
    TraceBuilder builder;
    builder.store(0, paddr(0), 1)
           .store(0, paddr(1), 2)
           .store(0, paddr(2), 3);
    const auto log = depsLog(builder, ModelConfig::epoch());
    const auto dag = buildPersistDag(log);
    EXPECT_EQ(dag.groupCount(), 3u);

    const auto result = checkAllCuts(log, dag, acceptAll());
    EXPECT_EQ(result.cuts, 8u);
    EXPECT_EQ(result.violations, 0u);
    EXPECT_FALSE(result.budget_exhausted);
}

TEST(PersistDag, BarrierChainEnumeratesOnlyPrefixes)
{
    TraceBuilder builder;
    builder.store(0, paddr(0), 1)
           .barrier(0)
           .store(0, paddr(1), 2)
           .barrier(0)
           .store(0, paddr(2), 3);
    const auto log = depsLog(builder, ModelConfig::epoch());
    const auto dag = buildPersistDag(log);
    ASSERT_EQ(dag.groupCount(), 3u);

    // A totally ordered chain has exactly the prefixes as cuts.
    const auto result = checkAllCuts(log, dag, acceptAll());
    EXPECT_EQ(result.cuts, 4u);
}

TEST(PersistDag, DiamondHasSixCuts)
{
    // A; barrier; B, C (concurrent); barrier; D. Ideals of a diamond:
    // {}, {A}, {A,B}, {A,C}, {A,B,C}, {A,B,C,D}.
    TraceBuilder builder;
    builder.store(0, paddr(0), 1)
           .barrier(0)
           .store(0, paddr(1), 2)
           .store(0, paddr(2), 3)
           .barrier(0)
           .store(0, paddr(3), 4);
    const auto log = depsLog(builder, ModelConfig::epoch());
    const auto dag = buildPersistDag(log);
    ASSERT_EQ(dag.groupCount(), 4u);
    EXPECT_EQ(checkAllCuts(log, dag, acceptAll()).cuts, 6u);
}

TEST(PersistDag, CoalescedPersistsShareOneAtomicGroup)
{
    TraceBuilder builder;
    builder.store(0, paddr(0), 1).store(0, paddr(0), 2);
    const auto log = depsLog(builder, ModelConfig::epoch());
    ASSERT_EQ(log.size(), 2u);
    const auto dag = buildPersistDag(log);
    ASSERT_EQ(dag.groupCount(), 1u);
    EXPECT_EQ(dag.groups[0].records.size(), 2u);

    // The group applies atomically: its cut shows the *last* value.
    const auto image = reconstructImageFromGroups(log, dag, {0});
    EXPECT_EQ(image.load(paddr(0), 8), 2u);
    EXPECT_EQ(checkAllCuts(log, dag, acceptAll()).cuts, 2u);
}

TEST(PersistDag, CrossThreadInheritedDependenceOrdersGroups)
{
    // Conservative publish: consumer's persist must depend on the
    // producer's, so "B without A" is not an enumerable crash state.
    TraceBuilder builder;
    builder.store(0, paddr(0), 1)   // A
           .barrier(0)
           .store(0, vaddr(0), 1)   // flag
           .load(1, vaddr(0))
           .barrier(1)
           .store(1, paddr(1), 2);  // B
    const auto log = depsLog(builder, ModelConfig::epoch());
    const auto dag = buildPersistDag(log);
    ASSERT_EQ(dag.groupCount(), 2u);
    const auto result = checkAllCuts(log, dag, [](const MemoryImage &i) {
        if (i.load(paddr(1), 8) == 2 && i.load(paddr(0), 8) != 1)
            return std::string("B without A");
        return std::string();
    });
    EXPECT_EQ(result.cuts, 3u);
    EXPECT_EQ(result.violations, 0u);
}

TEST(PersistDag, LogWithoutDependenceSetsIsRejected)
{
    TraceBuilder builder;
    builder.store(0, paddr(0), 1).barrier(0).store(0, paddr(1), 2);
    // analyzeLog records bindings only (no record_deps): the ordered
    // second persist has a binding but an empty dependence set.
    const auto log = builder.analyzeLog(ModelConfig::epoch());
    EXPECT_THROW(buildPersistDag(log), FatalError);
}

TEST(PersistDag, CutBudgetTruncatesButReportsIt)
{
    TraceBuilder builder;
    for (int i = 0; i < 6; ++i)
        builder.store(0, paddr(i), i + 1);
    const auto log = depsLog(builder, ModelConfig::epoch());
    const auto dag = buildPersistDag(log);
    const auto result = checkAllCuts(log, dag, acceptAll(), 10);
    EXPECT_EQ(result.cuts, 10u);
    EXPECT_TRUE(result.budget_exhausted);
}

TEST(PersistDag, EmptyLogHasExactlyTheEmptyCut)
{
    TraceBuilder builder;
    builder.load(0, paddr(0));
    const auto log = depsLog(builder, ModelConfig::epoch());
    ASSERT_TRUE(log.empty());
    const auto dag = buildPersistDag(log);
    EXPECT_EQ(dag.groupCount(), 0u);
    const auto result = checkAllCuts(log, dag, acceptAll());
    EXPECT_EQ(result.cuts, 1u);
}

TEST(MinimizeCut, DropsGroupsIrrelevantToTheViolation)
{
    // X, Y, Z independent; the invariant only cares about X.
    TraceBuilder builder;
    builder.store(0, paddr(0), 7)
           .store(0, paddr(1), 8)
           .store(0, paddr(2), 9);
    const auto log = depsLog(builder, ModelConfig::epoch());
    const auto dag = buildPersistDag(log);
    const RecoveryInvariant invariant = [](const MemoryImage &i) {
        return i.load(paddr(0), 8) == 7 ? "X persisted" : "";
    };
    const auto minimal =
        minimizeViolatingCut(log, dag, invariant, {0, 1, 2});
    ASSERT_EQ(minimal.size(), 1u);
    EXPECT_EQ(minimal[0], dag.group_of_record[0]);
}

TEST(MinimizeCut, KeepsPredecessorsNeededForClosure)
{
    // A -> B, invariant fires on B: A cannot be dropped (closure),
    // so the minimal violating cut is {A, B}.
    TraceBuilder builder;
    builder.store(0, paddr(0), 1).barrier(0).store(0, paddr(1), 2);
    const auto log = depsLog(builder, ModelConfig::epoch());
    const auto dag = buildPersistDag(log);
    const RecoveryInvariant invariant = [](const MemoryImage &i) {
        return i.load(paddr(1), 8) == 2 ? "B persisted" : "";
    };
    const auto minimal =
        minimizeViolatingCut(log, dag, invariant, {0, 1});
    EXPECT_EQ(minimal.size(), 2u);
}

TEST(FormatCut, ListsGroupsAndValues)
{
    TraceBuilder builder;
    builder.store(0, paddr(0), 0xab);
    const auto log = depsLog(builder, ModelConfig::epoch());
    const auto dag = buildPersistDag(log);
    const auto text = formatCut(log, dag, {0});
    EXPECT_NE(text.find("1 of 1 atomic persist groups"),
              std::string::npos);
    EXPECT_NE(text.find("value=0xab"), std::string::npos);
}

} // namespace
} // namespace persim
