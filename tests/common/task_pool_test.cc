/**
 * @file
 * TaskPool tests: submit/wait semantics, recursive submission,
 * parallelFor, and per-task error capture.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/error.hh"
#include "common/task_pool.hh"

namespace persim {
namespace {

TEST(TaskPool, RunsEverySubmittedTask)
{
    TaskPool pool(4);
    EXPECT_EQ(pool.workerCount(), 4u);
    std::atomic<int> ran{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&ran] { ++ran; });
    pool.wait();
    EXPECT_EQ(ran.load(), 100);
}

TEST(TaskPool, WaitIsReusable)
{
    TaskPool pool(2);
    std::atomic<int> ran{0};
    pool.submit([&ran] { ++ran; });
    pool.wait();
    pool.submit([&ran] { ++ran; });
    pool.wait();
    EXPECT_EQ(ran.load(), 2);
}

TEST(TaskPool, TasksMaySubmitSubtasks)
{
    // Recursive decomposition: a task forks children; wait() must
    // cover work submitted by running tasks, not just the roots.
    TaskPool pool(3);
    std::atomic<int> leaves{0};
    std::function<void(int)> fork = [&](int depth) {
        if (depth == 0) {
            ++leaves;
            return;
        }
        for (int i = 0; i < 2; ++i)
            pool.submit([&fork, depth] { fork(depth - 1); });
    };
    pool.submit([&fork] { fork(5); });
    pool.wait();
    EXPECT_EQ(leaves.load(), 32);
}

TEST(TaskPool, ParallelForCoversTheRange)
{
    TaskPool pool(4);
    std::vector<int> hits(257, 0);
    pool.parallelFor(hits.size(),
                     [&hits](std::size_t i) { hits[i] = 1; });
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i], 1) << "index " << i;
}

TEST(TaskPool, ParallelForZeroIsANoop)
{
    TaskPool pool(2);
    pool.parallelFor(0, [](std::size_t) { FAIL(); });
}

TEST(TaskPool, WaitRethrowsFirstTaskError)
{
    TaskPool pool(2);
    std::atomic<int> ran{0};
    pool.submit([] { throw FatalError("task boom"); });
    for (int i = 0; i < 10; ++i)
        pool.submit([&ran] { ++ran; });
    EXPECT_THROW(pool.wait(), FatalError);
    // The failure neither killed a worker nor dropped peer tasks.
    EXPECT_EQ(ran.load(), 10);
    // The error was consumed: a later quiet batch waits cleanly.
    pool.submit([&ran] { ++ran; });
    pool.wait();
    EXPECT_EQ(ran.load(), 11);
}

TEST(TaskPool, ParallelForRethrowsBodyError)
{
    TaskPool pool(3);
    std::atomic<int> ran{0};
    EXPECT_THROW(pool.parallelFor(16,
                                  [&ran](std::size_t i) {
                                      if (i == 7)
                                          throw FatalError("body boom");
                                      ++ran;
                                  }),
                 FatalError);
    EXPECT_EQ(ran.load(), 15);
    // parallelFor failures do not leak into submit()/wait() batches.
    pool.submit([] {});
    pool.wait();
}

TEST(TaskPool, NestedParallelForDoesNotDeadlock)
{
    // A parallelFor body issuing its own parallelFor on the same pool
    // must make progress even when the pool is smaller than the outer
    // fan-out: every outer body parks in an inner batch, so the inner
    // tasks can only run if waiting callers help-execute.
    TaskPool pool(2);
    std::atomic<int> inner_hits{0};
    pool.parallelFor(8, [&](std::size_t) {
        pool.parallelFor(8, [&](std::size_t) { ++inner_hits; });
    });
    EXPECT_EQ(inner_hits.load(), 64);
}

TEST(TaskPool, DeeplyNestedParallelForOnOneWorker)
{
    // One worker, three levels of nesting: progress relies entirely
    // on help-execution, never on a free worker.
    TaskPool pool(1);
    std::atomic<int> leaves{0};
    pool.parallelFor(3, [&](std::size_t) {
        pool.parallelFor(3, [&](std::size_t) {
            pool.parallelFor(3, [&](std::size_t) { ++leaves; });
        });
    });
    EXPECT_EQ(leaves.load(), 27);
}

TEST(TaskPool, NestedParallelForPropagatesInnerError)
{
    TaskPool pool(2);
    std::atomic<int> outer_done{0};
    EXPECT_THROW(
        pool.parallelFor(4,
                         [&](std::size_t i) {
                             pool.parallelFor(2, [&](std::size_t j) {
                                 if (i == 2 && j == 1)
                                     throw FatalError("inner boom");
                             });
                             ++outer_done;
                         }),
        FatalError);
    // The other outer bodies finished their inner batches normally.
    EXPECT_EQ(outer_done.load(), 3);
    pool.submit([] {});
    pool.wait();
}

TEST(TaskPool, DefaultWorkersIsPositive)
{
    EXPECT_GE(TaskPool::defaultWorkers(), 1u);
    TaskPool pool; // 0 => defaultWorkers()
    EXPECT_EQ(pool.workerCount(), TaskPool::defaultWorkers());
}

TEST(TaskPool, NullTaskIsFatal)
{
    TaskPool pool(1);
    EXPECT_THROW(pool.submit(nullptr), FatalError);
    EXPECT_THROW(pool.parallelFor(1, nullptr), FatalError);
}

TEST(TaskPool, DestructorDrainsQueuedTasks)
{
    std::atomic<int> ran{0};
    {
        TaskPool pool(1);
        for (int i = 0; i < 50; ++i)
            pool.submit([&ran] { ++ran; });
        // No wait(): the destructor must drain, not drop.
    }
    EXPECT_EQ(ran.load(), 50);
}

} // namespace
} // namespace persim
