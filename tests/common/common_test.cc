/**
 * @file
 * Unit tests for src/common: bit utilities, RNG, statistics, errors.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/bitops.hh"
#include "common/error.hh"
#include "common/flat_map.hh"
#include "common/rng.hh"
#include "common/stats.hh"

namespace persim {
namespace {

TEST(Bitops, PowerOfTwoDetection)
{
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_TRUE(isPowerOfTwo(64));
    EXPECT_TRUE(isPowerOfTwo(1ULL << 63));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_FALSE(isPowerOfTwo(96));
}

TEST(Bitops, AlignmentHelpers)
{
    EXPECT_EQ(alignDown(100, 64), 64u);
    EXPECT_EQ(alignUp(100, 64), 128u);
    EXPECT_EQ(alignUp(128, 64), 128u);
    EXPECT_EQ(alignDown(128, 64), 128u);
    EXPECT_TRUE(isAligned(128, 64));
    EXPECT_FALSE(isAligned(100, 64));
}

TEST(Bitops, Log2Exact)
{
    EXPECT_EQ(log2Exact(1), 0u);
    EXPECT_EQ(log2Exact(8), 3u);
    EXPECT_EQ(log2Exact(256), 8u);
}

TEST(Bitops, BlockIndexing)
{
    EXPECT_EQ(blockIndex(0, 64), 0u);
    EXPECT_EQ(blockIndex(63, 64), 0u);
    EXPECT_EQ(blockIndex(64, 64), 1u);
    EXPECT_EQ(blockBase(100, 64), 64u);
}

TEST(Bitops, FitsInBlock)
{
    EXPECT_TRUE(fitsInBlock(0, 8, 8));
    EXPECT_TRUE(fitsInBlock(8, 8, 8));
    EXPECT_FALSE(fitsInBlock(4, 8, 8));
    EXPECT_TRUE(fitsInBlock(4, 4, 8));
    EXPECT_TRUE(fitsInBlock(100, 28, 64));
    EXPECT_FALSE(fitsInBlock(60, 8, 64));
    EXPECT_FALSE(fitsInBlock(0, 0, 8));
}

TEST(Rng, DeterministicFromSeed)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 2);
}

TEST(Rng, BoundedStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBounded(17), 17u);
}

TEST(Rng, BoundedCoversRange)
{
    Rng rng(7);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.nextBounded(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(7);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 200; ++i) {
        const auto v = rng.nextRange(5, 7);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 7u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 3u);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, ExponentialMeanRoughlyCorrect)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += rng.nextExponential(3.0);
    EXPECT_NEAR(sum / n, 3.0, 0.15);
}

TEST(Rng, ExponentialAlwaysPositive)
{
    Rng rng(13);
    for (int i = 0; i < 1000; ++i)
        EXPECT_GT(rng.nextExponential(1.0), 0.0);
}

TEST(Rng, SplitProducesIndependentStream)
{
    Rng a(5);
    Rng b = a.split();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 2);
}

TEST(Rng, RejectsZeroBound)
{
    Rng rng(1);
    EXPECT_THROW(rng.nextBounded(0), FatalError);
}

TEST(RunningStat, BasicMoments)
{
    RunningStat stat;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        stat.add(x);
    EXPECT_EQ(stat.count(), 8u);
    EXPECT_DOUBLE_EQ(stat.mean(), 5.0);
    EXPECT_DOUBLE_EQ(stat.min(), 2.0);
    EXPECT_DOUBLE_EQ(stat.max(), 9.0);
    EXPECT_NEAR(stat.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(stat.sum(), 40.0);
}

TEST(RunningStat, MergeMatchesCombined)
{
    RunningStat a;
    RunningStat b;
    RunningStat all;
    Rng rng(3);
    for (int i = 0; i < 100; ++i) {
        const double x = rng.nextDouble() * 10;
        (i % 2 ? a : b).add(x);
        all.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStat, EmptyThrowsOnAccess)
{
    RunningStat stat;
    EXPECT_THROW(stat.mean(), FatalError);
    EXPECT_THROW(stat.min(), FatalError);
    EXPECT_EQ(stat.variance(), 0.0);
}

TEST(RunningStat, MergeIntoEmpty)
{
    RunningStat a;
    RunningStat b;
    b.add(1.0);
    b.add(3.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
}

TEST(Histogram, BucketsAndBounds)
{
    Histogram hist(0.0, 10.0, 5);
    hist.add(-1.0);
    hist.add(0.0);
    hist.add(3.9);
    hist.add(9.999);
    hist.add(10.0);
    hist.add(100.0);
    EXPECT_EQ(hist.underflow(), 1u);
    EXPECT_EQ(hist.overflow(), 2u);
    EXPECT_EQ(hist.bucketCount(0), 1u);
    EXPECT_EQ(hist.bucketCount(1), 1u);
    EXPECT_EQ(hist.bucketCount(4), 1u);
    EXPECT_EQ(hist.total(), 6u);
    EXPECT_DOUBLE_EQ(hist.bucketLo(1), 2.0);
    EXPECT_DOUBLE_EQ(hist.bucketHi(1), 4.0);
}

TEST(Histogram, RejectsBadRange)
{
    EXPECT_THROW(Histogram(5.0, 5.0, 4), FatalError);
    EXPECT_THROW(Histogram(0.0, 1.0, 0), FatalError);
}

TEST(CounterSet, IncrementAndMerge)
{
    CounterSet a;
    a.inc("x");
    a.inc("x", 4);
    a.inc("y");
    EXPECT_EQ(a.get("x"), 5u);
    EXPECT_EQ(a.get("y"), 1u);
    EXPECT_EQ(a.get("missing"), 0u);

    CounterSet b;
    b.inc("x", 10);
    b.inc("z", 2);
    a.merge(b);
    EXPECT_EQ(a.get("x"), 15u);
    EXPECT_EQ(a.get("z"), 2u);
    EXPECT_EQ(a.all().size(), 3u);
}

TEST(Error, FatalCarriesContext)
{
    try {
        PERSIM_FATAL("bad config " << 42);
        FAIL() << "should have thrown";
    } catch (const FatalError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("bad config 42"), std::string::npos);
        EXPECT_NE(what.find("common_test.cc"), std::string::npos);
    }
}

TEST(Error, PanicIsDistinctFromFatal)
{
    EXPECT_THROW(PERSIM_PANIC("broken"), PanicError);
    bool caught_as_error = false;
    try {
        PERSIM_PANIC("broken");
    } catch (const Error &) {
        caught_as_error = true;
    }
    EXPECT_TRUE(caught_as_error);
}

TEST(Error, AssertAndRequireMacros)
{
    EXPECT_NO_THROW(PERSIM_ASSERT(1 + 1 == 2, "math"));
    EXPECT_THROW(PERSIM_ASSERT(1 + 1 == 3, "math"), PanicError);
    EXPECT_NO_THROW(PERSIM_REQUIRE(true, "ok"));
    EXPECT_THROW(PERSIM_REQUIRE(false, "no"), FatalError);
}

TEST(FlatIndexMap, AssignsDenseSlotsInInsertionOrder)
{
    FlatIndexMap map;
    bool inserted = false;
    EXPECT_EQ(map.findOrInsert(100, inserted), 0u);
    EXPECT_TRUE(inserted);
    EXPECT_EQ(map.findOrInsert(7, inserted), 1u);
    EXPECT_TRUE(inserted);
    EXPECT_EQ(map.findOrInsert(100, inserted), 0u);
    EXPECT_FALSE(inserted);
    EXPECT_EQ(map.find(7), 1u);
    EXPECT_EQ(map.find(8), FlatIndexMap::no_slot);
    EXPECT_EQ(map.size(), 2u);
}

TEST(FlatIndexMap, SentinelKeyIsRejectedNotAliased)
{
    // ~0 is the empty-bucket sentinel: probing for it would match the
    // first empty bucket and hand back no_slot as a "real" slot
    // (silent corruption). It must be a hard error instead.
    FlatIndexMap map;
    bool inserted = false;
    EXPECT_THROW(map.findOrInsert(FlatIndexMap::empty_key, inserted),
                 FatalError);
    // find() on the sentinel is benign "absent".
    EXPECT_EQ(map.find(FlatIndexMap::empty_key),
              FlatIndexMap::no_slot);
}

TEST(FlatIndexMap, CapacityBoundIsAHardError)
{
    // Beyond max_slots the unchecked count_++ would eventually mint
    // no_slot itself as a live slot; the bound turns that into a
    // deterministic FatalError at the first over-insert.
    FlatIndexMap map(4);
    bool inserted = false;
    for (std::uint64_t key = 0; key < 4; ++key)
        map.findOrInsert(key, inserted);
    EXPECT_EQ(map.size(), 4u);
    // Existing keys still resolve below the bound.
    EXPECT_EQ(map.findOrInsert(3, inserted), 3u);
    EXPECT_FALSE(inserted);
    EXPECT_THROW(map.findOrInsert(99, inserted), FatalError);
    // clear() frees the budget again.
    map.clear();
    EXPECT_EQ(map.findOrInsert(99, inserted), 0u);
    EXPECT_TRUE(inserted);
}

TEST(ShardedIndexMap, MatchesFlatIndexMapSlotNumbering)
{
    // The sharded map must hand out the same dense insertion-order
    // slots as the unsharded map — the timing engine's slot numbers
    // are part of the bit-identity surface (compiled artifacts bake
    // them in).
    FlatIndexMap flat;
    ShardedIndexMap sharded;
    Rng rng(7);
    std::vector<std::uint64_t> keys;
    for (int i = 0; i < 5000; ++i)
        keys.push_back(rng.next() % 1024); // Dense keyspace: collisions.
    bool fi = false, si = false;
    for (const std::uint64_t key : keys) {
        EXPECT_EQ(flat.findOrInsert(key, fi),
                  sharded.findOrInsert(key, si));
        EXPECT_EQ(fi, si);
    }
    EXPECT_EQ(flat.size(), sharded.size());
    for (std::uint64_t key = 0; key < 1100; ++key)
        EXPECT_EQ(flat.find(key), sharded.find(key));
}

TEST(ShardedIndexMap, SentinelAndCapacityMirrorFlatMap)
{
    ShardedIndexMap map(4);
    bool inserted = false;
    EXPECT_THROW(map.findOrInsert(ShardedIndexMap::empty_key, inserted),
                 FatalError);
    EXPECT_EQ(map.find(ShardedIndexMap::empty_key),
              ShardedIndexMap::no_slot);
    for (std::uint64_t key = 0; key < 4; ++key)
        map.findOrInsert(key, inserted);
    EXPECT_THROW(map.findOrInsert(99, inserted), FatalError);
    map.clear();
    EXPECT_EQ(map.findOrInsert(99, inserted), 0u);
    EXPECT_TRUE(inserted);
    EXPECT_EQ(map.size(), 1u);
}

TEST(ShardedIndexMap, SurvivesPerShardRehash)
{
    // Far past the initial per-shard bucket count: every shard
    // rehashes several times and lookups still resolve.
    ShardedIndexMap map;
    bool inserted = false;
    constexpr std::uint64_t n = 100000;
    for (std::uint64_t key = 0; key < n; ++key)
        EXPECT_EQ(map.findOrInsert(key * 64 + 1, inserted),
                  static_cast<std::uint32_t>(key));
    EXPECT_EQ(map.size(), n);
    for (std::uint64_t key = 0; key < n; ++key)
        EXPECT_EQ(map.find(key * 64 + 1),
                  static_cast<std::uint32_t>(key));
    EXPECT_EQ(map.find(3), ShardedIndexMap::no_slot);
}

} // namespace
} // namespace persim
