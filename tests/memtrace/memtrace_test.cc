/**
 * @file
 * Unit tests for src/memtrace: events, sinks, trace file I/O, stats.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "memtrace/event.hh"
#include "memtrace/sink.hh"
#include "memtrace/trace_io.hh"
#include "memtrace/trace_stats.hh"
#include "tests/support/trace_builder.hh"

namespace persim {
namespace {

using test::paddr;
using test::vaddr;

std::string
tempPath(const char *tag)
{
    return std::string(::testing::TempDir()) + "persim_" + tag + ".trc";
}

std::vector<unsigned char>
readBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<unsigned char>(
        std::istreambuf_iterator<char>(in),
        std::istreambuf_iterator<char>());
}

void
writeBytes(const std::string &path,
           const std::vector<unsigned char> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
}

/** A two-event trace file (threads 0 and 3) for corruption tests. */
std::string
writeSmallTrace(const char *tag)
{
    test::TraceBuilder builder;
    builder.store(0, paddr(0), 1).store(3, paddr(1), 2);
    const std::string path = tempPath(tag);
    writeTraceFile(path, builder.trace());
    return path;
}

TEST(Event, AddressSpaceClassification)
{
    EXPECT_TRUE(isPersistentAddr(persistent_base));
    EXPECT_TRUE(isPersistentAddr(persistent_base + 12345));
    EXPECT_FALSE(isPersistentAddr(volatile_base));
    EXPECT_FALSE(isPersistentAddr(0));
}

TEST(Event, PersistDetection)
{
    TraceEvent event;
    event.kind = EventKind::Store;
    event.addr = persistent_base;
    EXPECT_TRUE(event.isPersist());
    event.addr = volatile_base;
    EXPECT_FALSE(event.isPersist());
    event.kind = EventKind::Load;
    event.addr = persistent_base;
    EXPECT_FALSE(event.isPersist());
    event.kind = EventKind::Rmw;
    EXPECT_TRUE(event.isPersist());
    EXPECT_TRUE(event.isRead());
    EXPECT_TRUE(event.isWrite());
}

TEST(Event, KindNamesAndFormat)
{
    TraceEvent event;
    event.seq = 7;
    event.thread = 3;
    event.kind = EventKind::Store;
    event.addr = persistent_base;
    event.size = 8;
    event.value = 0xff;
    const std::string text = formatEvent(event);
    EXPECT_NE(text.find("store"), std::string::npos);
    EXPECT_NE(text.find("[persist]"), std::string::npos);
    EXPECT_STREQ(eventKindName(EventKind::PersistBarrier),
                 "persist_barrier");
    EXPECT_STREQ(eventKindName(EventKind::NewStrand), "new_strand");
}

TEST(Sink, FanoutDeliversInOrderToAll)
{
    InMemoryTrace a;
    InMemoryTrace b;
    FanoutSink fanout;
    fanout.addSink(&a);
    fanout.addSink(&b);

    TraceEvent event;
    event.kind = EventKind::Load;
    for (int i = 0; i < 5; ++i) {
        event.seq = i;
        fanout.onEvent(event);
    }
    fanout.onFinish();
    ASSERT_EQ(a.size(), 5u);
    ASSERT_EQ(b.size(), 5u);
    for (int i = 0; i < 5; ++i) {
        EXPECT_EQ(a.events()[i].seq, static_cast<SeqNum>(i));
        EXPECT_EQ(b.events()[i].seq, static_cast<SeqNum>(i));
    }
}

TEST(Sink, InMemoryTraceTracksThreadCount)
{
    InMemoryTrace trace;
    TraceEvent event;
    event.thread = 0;
    trace.onEvent(event);
    event.thread = 4;
    trace.onEvent(event);
    EXPECT_EQ(trace.threadCount(), 5u);
    EXPECT_FALSE(trace.empty());
}

TEST(Sink, ReplayFeedsAnotherSink)
{
    test::TraceBuilder builder;
    builder.store(0, paddr(0), 1).barrier(0).store(0, paddr(1), 2);

    InMemoryTrace copy;
    builder.trace().replay(copy);
    EXPECT_EQ(copy.size(), 3u);
}

TEST(TraceIo, RoundTripPreservesEvents)
{
    test::TraceBuilder builder;
    builder.opBegin(1, 99)
        .store(1, paddr(3), 0xdeadbeef)
        .load(1, vaddr(2))
        .rmw(0, vaddr(5), 7)
        .barrier(1)
        .strand(0)
        .opEnd(1, 99);

    const std::string path = tempPath("roundtrip");
    writeTraceFile(path, builder.trace());
    const InMemoryTrace loaded = readTraceFile(path);

    ASSERT_EQ(loaded.size(), builder.trace().size());
    for (std::size_t i = 0; i < loaded.size(); ++i) {
        const auto &a = builder.trace().events()[i];
        const auto &b = loaded.events()[i];
        EXPECT_EQ(a.seq, b.seq);
        EXPECT_EQ(a.addr, b.addr);
        EXPECT_EQ(a.value, b.value);
        EXPECT_EQ(a.thread, b.thread);
        EXPECT_EQ(a.kind, b.kind);
        EXPECT_EQ(a.size, b.size);
        EXPECT_EQ(a.marker, b.marker);
    }
    std::remove(path.c_str());
}

TEST(TraceIo, HeaderRecordsCounts)
{
    test::TraceBuilder builder;
    builder.store(0, paddr(0)).store(3, paddr(1));
    const std::string path = tempPath("header");
    writeTraceFile(path, builder.trace());

    TraceFileReader reader(path);
    EXPECT_EQ(reader.eventCount(), 2u);
    EXPECT_EQ(reader.threadCount(), 4u);
    std::remove(path.c_str());
}

TEST(TraceIo, StreamingReaderMatchesReadAll)
{
    test::TraceBuilder builder;
    for (int i = 0; i < 20; ++i)
        builder.store(0, paddr(i), i);
    const std::string path = tempPath("stream");
    writeTraceFile(path, builder.trace());

    TraceFileReader reader(path);
    TraceEvent event;
    int count = 0;
    while (reader.readNext(event)) {
        EXPECT_EQ(event.value, static_cast<std::uint64_t>(count));
        ++count;
    }
    EXPECT_EQ(count, 20);
    std::remove(path.c_str());
}

TEST(TraceIo, MissingFileIsFatal)
{
    EXPECT_THROW(TraceFileReader("/nonexistent/path/trace.trc"),
                 FatalError);
}

TEST(TraceIo, BadMagicIsFatal)
{
    const std::string path = tempPath("badmagic");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("NOTATRACEFILE_________________", f);
    std::fclose(f);
    EXPECT_THROW(TraceFileReader reader(path), FatalError);
    std::remove(path.c_str());
}

TEST(TraceIo, WriterAsSinkIsStreamable)
{
    const std::string path = tempPath("sink");
    {
        TraceFileWriter writer(path);
        test::TraceBuilder builder;
        builder.store(0, paddr(0), 1).store(1, paddr(1), 2);
        builder.trace().replay(writer);
        EXPECT_EQ(writer.eventsWritten(), 2u);
    }
    const InMemoryTrace loaded = readTraceFile(path);
    EXPECT_EQ(loaded.size(), 2u);
    std::remove(path.c_str());
}

TEST(TraceIo, HeaderIsLittleEndianOnDisk)
{
    // The records were always serialized little-endian; the header
    // must be too, or traces aren't portable across endianness. Check
    // the raw bytes: version 1, 4 threads, 2 events.
    const std::string path = writeSmallTrace("le_header");
    const auto bytes = readBytes(path);
    ASSERT_GE(bytes.size(), 24u);
    const std::vector<unsigned char> expected{
        'P', 'S', 'I', 'M', 'T', 'R', 'C', '1', // magic
        1,   0,   0,   0,                       // version, LE
        4,   0,   0,   0,                       // thread count, LE
        2,   0,   0,   0,   0,   0,   0,   0,   // event count, LE
    };
    EXPECT_EQ(std::vector<unsigned char>(bytes.begin(),
                                         bytes.begin() + 24),
              expected);
    std::remove(path.c_str());
}

TEST(TraceIo, TruncatedFileIsRejectedAtOpen)
{
    // The header claims two events; chop off part of the last record.
    const std::string path = writeSmallTrace("truncated");
    auto bytes = readBytes(path);
    bytes.resize(bytes.size() - 10);
    writeBytes(path, bytes);
    try {
        TraceFileReader reader(path);
        FAIL() << "expected a size-mismatch error";
    } catch (const FatalError &error) {
        EXPECT_NE(std::string(error.what()).find("size mismatch"),
                  std::string::npos)
            << error.what();
    }
    std::remove(path.c_str());
}

TEST(TraceIo, OverstatedEventCountIsRejectedAtOpen)
{
    // Bump the header count without appending records: the reader
    // must not trust it and walk off the end of the file.
    const std::string path = writeSmallTrace("overcount");
    auto bytes = readBytes(path);
    bytes[16] = 200; // event_count LE low byte: claim 200 events.
    writeBytes(path, bytes);
    EXPECT_THROW(TraceFileReader reader(path), FatalError);
    std::remove(path.c_str());
}

TEST(TraceIo, BadEventKindByteIsRejected)
{
    // Corrupt the kind byte of the second record (offset 24 + 32 + 28)
    // — the file size still matches, so the open succeeds and the
    // poisoned record must be caught during reading.
    const std::string path = writeSmallTrace("badkind");
    auto bytes = readBytes(path);
    const std::size_t kind_offset = 24 + 32 + 28;
    ASSERT_GT(bytes.size(), kind_offset);
    bytes[kind_offset] = 0xee;
    writeBytes(path, bytes);

    TraceFileReader reader(path);
    TraceEvent event;
    EXPECT_TRUE(reader.readNext(event)); // First record is intact.
    try {
        reader.readNext(event);
        FAIL() << "expected a bad-kind error";
    } catch (const FatalError &error) {
        EXPECT_NE(std::string(error.what()).find("kind byte"),
                  std::string::npos)
            << error.what();
    }
    std::remove(path.c_str());
}

// The x86 flush/fence kinds (ISSUE 6) must survive every trace
// surface: the buffered reader, the streaming reader, and the mmap
// reader all reproduce them bit-exactly.
TEST(TraceIo, FlushAndFenceKindsRoundTrip)
{
    test::TraceBuilder builder;
    builder.store(0, paddr(0), 1)
        .clflush(0, paddr(0))
        .clflushopt(1, paddr(8))
        .clwb(0, paddr(16))
        .sfence(1)
        .mfence(0);
    const std::string path = tempPath("flushkinds");
    writeTraceFile(path, builder.trace());

    const InMemoryTrace buffered = readTraceFile(path);
    MmapTraceReader mapped(path);
    TraceFileReader streaming(path);
    const auto &expect = builder.trace().events();
    ASSERT_EQ(buffered.size(), expect.size());
    ASSERT_EQ(mapped.events().size(), expect.size());
    for (std::size_t i = 0; i < expect.size(); ++i) {
        TraceEvent streamed;
        ASSERT_TRUE(streaming.readNext(streamed));
        EXPECT_EQ(buffered.events()[i].kind, expect[i].kind) << i;
        EXPECT_EQ(mapped.events()[i].kind, expect[i].kind) << i;
        EXPECT_EQ(streamed.kind, expect[i].kind) << i;
        EXPECT_EQ(buffered.events()[i].addr, expect[i].addr) << i;
        EXPECT_EQ(mapped.events()[i].addr, expect[i].addr) << i;
        EXPECT_EQ(streamed.thread, expect[i].thread) << i;
    }

    EXPECT_STREQ(eventKindName(EventKind::CacheFlush), "clflush");
    EXPECT_STREQ(eventKindName(EventKind::CacheFlushOpt),
                 "clflushopt");
    EXPECT_STREQ(eventKindName(EventKind::CacheWriteBack), "clwb");
    EXPECT_STREQ(eventKindName(EventKind::StoreFence), "sfence");
    EXPECT_STREQ(eventKindName(EventKind::FullFence), "mfence");
    std::remove(path.c_str());
}

// The kind validators accept exactly [0, kMaxEventKind]: the highest
// legal byte (mfence) reads back, while kMaxEventKind + 1 is rejected
// by both the streaming and the mmap decoder. Guards against the
// validator bound lagging behind a future EventKind growth.
TEST(TraceIo, KindJustBeyondMaxIsRejected)
{
    test::TraceBuilder builder;
    builder.store(0, paddr(0), 1).mfence(0);
    const std::string path = tempPath("overmax");
    writeTraceFile(path, builder.trace());

    auto bytes = readBytes(path);
    const std::size_t kind_offset = 24 + 32 + 28;
    ASSERT_GT(bytes.size(), kind_offset);
    ASSERT_EQ(bytes[kind_offset], kMaxEventKind); // mfence is the max
    bytes[kind_offset] = kMaxEventKind + 1;
    writeBytes(path, bytes);

    TraceFileReader reader(path);
    TraceEvent event;
    EXPECT_TRUE(reader.readNext(event));
    EXPECT_THROW(reader.readNext(event), FatalError);
    EXPECT_THROW(MmapTraceReader mapped(path), FatalError);
    std::remove(path.c_str());
}

TEST(MmapTraceIo, RoundTripAndSegmentViews)
{
    const std::string path = writeSmallTrace("mmap_roundtrip");
    MmapTraceReader reader(path);
    EXPECT_EQ(reader.eventCount(), 2u);
    EXPECT_EQ(reader.threadCount(), 4u);

    const auto all = reader.events();
    ASSERT_EQ(all.size(), 2u);
    EXPECT_EQ(all[0].value, 1u);
    EXPECT_EQ(all[1].value, 2u);
    EXPECT_EQ(all[1].thread, 3u);
    EXPECT_EQ(all[1].kind, EventKind::Store);

    // The mapped records must read back exactly as the streaming
    // decoder produces them (layout equivalence, not just field
    // plausibility).
    const InMemoryTrace streamed = readTraceFile(path);
    for (std::size_t i = 0; i < all.size(); ++i) {
        EXPECT_EQ(all[i].seq, streamed.events()[i].seq);
        EXPECT_EQ(all[i].addr, streamed.events()[i].addr);
        EXPECT_EQ(all[i].value, streamed.events()[i].value);
        EXPECT_EQ(all[i].marker, streamed.events()[i].marker);
    }

    const auto tail = reader.segment(1, 1);
    ASSERT_EQ(tail.size(), 1u);
    EXPECT_EQ(tail[0].value, 2u);
    EXPECT_EQ(reader.segment(2, 0).size(), 0u);
    EXPECT_THROW(reader.segment(1, 2), FatalError);
    EXPECT_THROW(reader.segment(3, 0), FatalError);

    InMemoryTrace sunk;
    reader.readAll(sunk);
    EXPECT_EQ(sunk.size(), 2u);
    std::remove(path.c_str());
}

TEST(MmapTraceIo, MissingFileIsFatal)
{
    EXPECT_THROW(MmapTraceReader("/nonexistent/path/trace.trc"),
                 FatalError);
}

TEST(MmapTraceIo, BadMagicIsFatal)
{
    const std::string path = tempPath("mmap_badmagic");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("NOTATRACEFILE_________________", f);
    std::fclose(f);
    EXPECT_THROW(MmapTraceReader reader(path), FatalError);
    std::remove(path.c_str());
}

TEST(MmapTraceIo, TruncatedFileIsRejectedAtOpen)
{
    const std::string path = writeSmallTrace("mmap_truncated");
    auto bytes = readBytes(path);
    bytes.resize(bytes.size() - 10);
    writeBytes(path, bytes);
    try {
        MmapTraceReader reader(path);
        FAIL() << "expected a size-mismatch error";
    } catch (const FatalError &error) {
        EXPECT_NE(std::string(error.what()).find("size mismatch"),
                  std::string::npos)
            << error.what();
    }
    std::remove(path.c_str());
}

TEST(MmapTraceIo, OverstatedEventCountIsRejectedAtOpen)
{
    const std::string path = writeSmallTrace("mmap_overcount");
    auto bytes = readBytes(path);
    bytes[16] = 200; // event_count LE low byte: claim 200 events.
    writeBytes(path, bytes);
    EXPECT_THROW(MmapTraceReader reader(path), FatalError);
    std::remove(path.c_str());
}

TEST(MmapTraceIo, BadEventKindByteIsRejectedAtOpen)
{
    // Unlike the streaming reader, the mmap reader validates every
    // record's kind byte up front: the views it hands out must be
    // safe to consume without per-event checks, so the poisoned
    // record fails the OPEN, not some later segment replay.
    const std::string path = writeSmallTrace("mmap_badkind");
    auto bytes = readBytes(path);
    const std::size_t kind_offset = 24 + 32 + 28;
    ASSERT_GT(bytes.size(), kind_offset);
    bytes[kind_offset] = 0xee;
    writeBytes(path, bytes);
    try {
        MmapTraceReader reader(path);
        FAIL() << "expected a bad-kind error";
    } catch (const FatalError &error) {
        EXPECT_NE(std::string(error.what()).find("kind byte"),
                  std::string::npos)
            << error.what();
    }
    std::remove(path.c_str());
}

TEST(TraceIo, WriterDestructorIsBestEffortOnFullDisk)
{
    // /dev/full returns ENOSPC on flush: the explicit onFinish() must
    // report it, and the destructor must swallow it rather than call
    // std::terminate.
    std::FILE *probe = std::fopen("/dev/full", "wb");
    if (probe == nullptr)
        GTEST_SKIP() << "/dev/full not available";
    std::fclose(probe);

    test::TraceBuilder builder;
    builder.store(0, paddr(0), 1);

    {
        TraceFileWriter writer("/dev/full");
        for (const auto &event : builder.trace().events())
            writer.onEvent(event);
        EXPECT_THROW(writer.onFinish(), FatalError);
    } // Destructor after a failed finish: must not throw.

    {
        TraceFileWriter writer("/dev/full");
        for (const auto &event : builder.trace().events())
            writer.onEvent(event);
    } // Destructor alone hits the short write: must not terminate.
}

TEST(TraceStats, CountsByKind)
{
    test::TraceBuilder builder;
    builder.opBegin(0, 1)
        .load(0, vaddr(0))
        .store(0, paddr(0), 5)
        .store(0, vaddr(1), 6)
        .rmw(0, paddr(1), 7)
        .barrier(0)
        .strand(0)
        .sync(0)
        .opEnd(0, 1);

    TraceStats stats;
    builder.trace().replay(stats);
    EXPECT_EQ(stats.loads(), 1u);
    EXPECT_EQ(stats.stores(), 2u);
    EXPECT_EQ(stats.rmws(), 1u);
    EXPECT_EQ(stats.persists(), 2u); // persistent store + persistent rmw
    EXPECT_EQ(stats.persistedBytes(), 16u);
    EXPECT_EQ(stats.persistBarriers(), 1u);
    EXPECT_EQ(stats.newStrands(), 1u);
    EXPECT_EQ(stats.persistSyncs(), 1u);
    EXPECT_EQ(stats.operations(), 1u);
    EXPECT_EQ(stats.markers(), 2u);
    EXPECT_EQ(stats.totalEvents(), 9u);
}

TEST(TraceStats, PerThreadCounts)
{
    test::TraceBuilder builder;
    builder.store(0, paddr(0)).store(2, paddr(1)).store(2, paddr(2));
    TraceStats stats;
    builder.trace().replay(stats);
    EXPECT_EQ(stats.threadEvents(0), 1u);
    EXPECT_EQ(stats.threadEvents(1), 0u);
    EXPECT_EQ(stats.threadEvents(2), 2u);
    EXPECT_EQ(stats.threadCount(), 3u);
    EXPECT_FALSE(stats.render().empty());
}

} // namespace
} // namespace persim
