/**
 * @file
 * Trace filter sink and predicate combinator tests.
 */

#include <gtest/gtest.h>

#include "memtrace/filter.hh"
#include "tests/support/trace_builder.hh"

namespace persim {
namespace {

using test::paddr;
using test::TraceBuilder;
using test::vaddr;

InMemoryTrace
sampleTrace()
{
    TraceBuilder builder;
    builder.store(0, paddr(0), 1)
           .load(1, vaddr(0))
           .store(1, paddr(1), 2)
           .barrier(0)
           .rmw(2, vaddr(1), 3)
           .store(2, vaddr(2), 4);
    InMemoryTrace trace;
    builder.trace().replay(trace);
    return trace;
}

std::size_t
countMatching(const InMemoryTrace &trace, EventPredicate predicate)
{
    InMemoryTrace out;
    FilterSink filter(&out, std::move(predicate));
    trace.replay(filter);
    return out.size();
}

TEST(Filter, ByThread)
{
    const auto trace = sampleTrace();
    EXPECT_EQ(countMatching(trace, byThread(0)), 2u);
    EXPECT_EQ(countMatching(trace, byThread(1)), 2u);
    EXPECT_EQ(countMatching(trace, byThread(2)), 2u);
    EXPECT_EQ(countMatching(trace, byThread(9)), 0u);
}

TEST(Filter, ByKind)
{
    const auto trace = sampleTrace();
    EXPECT_EQ(countMatching(trace, byKind(EventKind::Store)), 3u);
    EXPECT_EQ(countMatching(trace, byKind(EventKind::Load)), 1u);
    EXPECT_EQ(countMatching(trace, byKind(EventKind::PersistBarrier)),
              1u);
}

TEST(Filter, PersistsOnly)
{
    const auto trace = sampleTrace();
    EXPECT_EQ(countMatching(trace, persistsOnly()), 2u);
}

TEST(Filter, ByAddressRangeOverlapsPartially)
{
    const auto trace = sampleTrace();
    // Range covering just the second half of paddr(0)'s word.
    EXPECT_EQ(countMatching(trace,
                            byAddressRange(paddr(0) + 4, paddr(0) + 8)),
              1u);
    EXPECT_EQ(countMatching(trace, byAddressRange(paddr(0), paddr(2))),
              2u);
    // Barriers are not accesses: never matched by address.
    EXPECT_EQ(countMatching(trace, byAddressRange(0, ~0ULL)), 5u);
}

TEST(Filter, BySeqWindow)
{
    const auto trace = sampleTrace();
    EXPECT_EQ(countMatching(trace, bySeqWindow(0, 3)), 3u);
    EXPECT_EQ(countMatching(trace, bySeqWindow(3, 6)), 3u);
    EXPECT_EQ(countMatching(trace, bySeqWindow(6, 100)), 0u);
}

TEST(Filter, Combinators)
{
    const auto trace = sampleTrace();
    EXPECT_EQ(countMatching(trace,
                            both(byThread(1), persistsOnly())), 1u);
    EXPECT_EQ(countMatching(trace,
                            either(byThread(0), byThread(1))), 4u);
    EXPECT_EQ(countMatching(trace, negate(persistsOnly())), 4u);
}

TEST(Filter, CountsAndFinishPropagate)
{
    const auto trace = sampleTrace();

    struct FinishProbe : TraceSink
    {
        bool finished = false;
        void onEvent(const TraceEvent &) override {}
        void onFinish() override { finished = true; }
    } probe;

    FilterSink filter(&probe, persistsOnly());
    trace.replay(filter);
    EXPECT_TRUE(probe.finished);
    EXPECT_EQ(filter.seen(), 6u);
    EXPECT_EQ(filter.forwarded(), 2u);
}

TEST(Filter, RejectsNulls)
{
    InMemoryTrace out;
    EXPECT_THROW(FilterSink(nullptr, persistsOnly()), FatalError);
    EXPECT_THROW(FilterSink(&out, nullptr), FatalError);
}

} // namespace
} // namespace persim
