/**
 * @file
 * Compiled-trace format and replay tests.
 *
 * Three surfaces:
 *
 *  - the .ctc artifact format itself: layout invariants, the
 *    little-endian gate, and rejection of corrupt artifacts — bad
 *    magic, wrong version, flipped header/payload checksum bytes,
 *    truncation (errors must name the offending byte offset), plus
 *    the .ctp pack round-trip;
 *  - the cache discipline: loadOrCompileTrace must recompile — never
 *    silently replay stale micro-ops — when the source trace changed
 *    under a caller-chosen tag, and must recover from corrupt cache
 *    files in place;
 *  - bit-identity: compiledReplay must produce the same TimingResult
 *    (and, where recorded, the same persist-log hash) as interpreted
 *    replay for every golden fixture under the full frozen golden
 *    configuration matrix, and for the 1M synthetic bench trace
 *    under strict/epoch/strand/px86 at jobs in {1, 4}.
 *
 * The streaming/mmap trace readers' truncation diagnostics
 * (byte-offset reporting) are covered here too — they share the
 * "reject short files loudly" contract with the compiled format.
 */

#include <bit>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench_util/synthetic_trace.hh"
#include "common/error.hh"
#include "common/task_pool.hh"
#include "memtrace/compiled_trace.hh"
#include "memtrace/event.hh"
#include "memtrace/trace_io.hh"
#include "persistency/compiled_replay.hh"
#include "persistency/segment_compile.hh"
#include "tests/persistency/golden_support.hh"

namespace persim::test {
namespace {

// Layout invariants the .ctc format depends on. TraceEvent must stay
// fully packed (source hashing covers raw bytes) and the compiled
// sentinels must match the segment compiler's.
static_assert(sizeof(TraceEvent) == 32,
              "TraceEvent layout feeds fnv1a source hashing");
static_assert(compiled_no_slot == 0xffffffffu,
              "compiled_no_slot must match the engine's no-slot-hint");
static_assert(compiled_trace_version == 1, "bump tests with the format");
static_assert(compiled_flag_write == 1 && compiled_flag_persistent == 2,
              "flag bits are baked into committed artifacts");
static_assert(std::endian::native == std::endian::little,
              "compiled artifacts are little-endian; the mmap path is "
              "gated on LE hosts like MmapTraceReader");

std::string
goldenDir()
{
    const char *dir = std::getenv("PERSIM_GOLDEN_DIR");
    return dir != nullptr ? dir : "tests/persistency/golden";
}

std::uint64_t
syntheticEvents()
{
    const char *env = std::getenv("PERSIM_SYNTH_EVENTS");
    if (env != nullptr && *env != '\0')
        return std::strtoull(env, nullptr, 10);
    return 1'000'000;
}

std::vector<TraceEvent>
loadGolden(const std::string &name)
{
    MmapTraceReader reader(goldenDir() + "/" + name + ".trc");
    const auto view = reader.events();
    return {view.begin(), view.end()};
}

/** Scratch path inside gtest's per-run temp directory. */
std::string
scratchPath(const std::string &name)
{
    return ::testing::TempDir() + "persim_ctc_" + name;
}

/** Byte-level surgery on a written artifact. */
void
flipByte(const std::string &path, std::uint64_t offset)
{
    std::fstream file(path,
                      std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file.is_open());
    file.seekg(static_cast<std::streamoff>(offset));
    char byte = 0;
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0xff);
    file.seekp(static_cast<std::streamoff>(offset));
    file.write(&byte, 1);
}

void
truncateFile(const std::string &path, std::uint64_t size)
{
    std::error_code ec;
    std::filesystem::resize_file(path, size, ec);
    ASSERT_FALSE(ec);
}

/** What the error said, or "" if @p fn did not throw. */
template <typename Fn>
std::string
errorOf(Fn &&fn)
{
    try {
        fn();
    } catch (const Error &error) {
        return error.what();
    }
    return {};
}

/** A small but structurally rich compiled artifact. */
CompiledTrace
compileMixed(const TimingConfig &config)
{
    const std::vector<TraceEvent> events = loadGolden("mixed");
    return compileTrace(events.data(), events.size(), config);
}

TimingConfig
epochConfig()
{
    TimingConfig config;
    config.model = ModelConfig::epoch();
    return config;
}

// ---------------------------------------------------------------
// Format: write -> mmap round trip and corrupt-artifact rejection.
// ---------------------------------------------------------------

TEST(CompiledTraceFormat, WriteThenMapRoundTripsColumns)
{
    const TimingConfig config = epochConfig();
    const CompiledTrace trace = compileMixed(config);
    const std::string path = scratchPath("roundtrip.ctc");
    writeCompiledTrace(path, trace);

    MmapCompiledTrace mapped(path, kMaxMicroOpKind);
    const CompiledTraceView &a = trace.view();
    const CompiledTraceView &b = mapped.view();
    ASSERT_EQ(a.micro_ops, b.micro_ops);
    ASSERT_EQ(a.events, b.events);
    ASSERT_EQ(a.track_slots, b.track_slots);
    ASSERT_EQ(a.atomic_slots, b.atomic_slots);
    ASSERT_EQ(a.runs, b.runs);
    ASSERT_EQ(a.thread_count, b.thread_count);
    EXPECT_EQ(a.source_hash, b.source_hash);
    EXPECT_EQ(a.spec_fp, b.spec_fp);
    for (std::uint64_t i = 0; i < a.micro_ops; ++i) {
        ASSERT_EQ(a.kind[i], b.kind[i]) << "op " << i;
        ASSERT_EQ(a.size[i], b.size[i]) << "op " << i;
        ASSERT_EQ(a.flags[i], b.flags[i]) << "op " << i;
        ASSERT_EQ(a.thread[i], b.thread[i]) << "op " << i;
        ASSERT_EQ(a.tslot[i], b.tslot[i]) << "op " << i;
        ASSERT_EQ(a.aslot[i], b.aslot[i]) << "op " << i;
        ASSERT_EQ(a.addr[i], b.addr[i]) << "op " << i;
        ASSERT_EQ(a.value[i], b.value[i]) << "op " << i;
        ASSERT_EQ(a.seq[i], b.seq[i]) << "op " << i;
    }
    std::remove(path.c_str());
}

TEST(CompiledTraceFormat, RejectsBadMagic)
{
    const std::string path = scratchPath("magic.ctc");
    writeCompiledTrace(path, compileMixed(epochConfig()));
    flipByte(path, 0);
    const std::string what = errorOf(
        [&] { MmapCompiledTrace mapped(path, kMaxMicroOpKind); });
    EXPECT_NE(what.find("magic"), std::string::npos) << what;
    std::remove(path.c_str());
}

TEST(CompiledTraceFormat, RejectsWrongVersion)
{
    const std::string path = scratchPath("version.ctc");
    writeCompiledTrace(path, compileMixed(epochConfig()));
    // Version lives at byte 8; bump it and refresh the header
    // checksum is deliberately NOT done — the version check fires
    // first and must name the version it saw.
    flipByte(path, 8);
    const std::string what = errorOf(
        [&] { MmapCompiledTrace mapped(path, kMaxMicroOpKind); });
    EXPECT_NE(what.find("version"), std::string::npos) << what;
    std::remove(path.c_str());
}

TEST(CompiledTraceFormat, RejectsFlippedHeaderChecksum)
{
    const std::string path = scratchPath("hsum.ctc");
    writeCompiledTrace(path, compileMixed(epochConfig()));
    flipByte(path, 96); // Header checksum field itself.
    const std::string what = errorOf(
        [&] { MmapCompiledTrace mapped(path, kMaxMicroOpKind); });
    EXPECT_NE(what.find("checksum"), std::string::npos) << what;
    std::remove(path.c_str());
}

TEST(CompiledTraceFormat, RejectsFlippedPayloadByte)
{
    const std::string path = scratchPath("psum.ctc");
    const CompiledTrace trace = compileMixed(epochConfig());
    writeCompiledTrace(path, trace);
    // Flip one byte mid-payload: the payload checksum must catch it
    // before any column is interpreted.
    const std::uint64_t payload_mid =
        128 + trace.view().micro_ops / 2;
    flipByte(path, payload_mid);
    const std::string what = errorOf(
        [&] { MmapCompiledTrace mapped(path, kMaxMicroOpKind); });
    EXPECT_NE(what.find("checksum"), std::string::npos) << what;
    std::remove(path.c_str());
}

TEST(CompiledTraceFormat, TruncationInsideHeaderNamesOffset)
{
    const std::string path = scratchPath("trunc_hdr.ctc");
    writeCompiledTrace(path, compileMixed(epochConfig()));
    truncateFile(path, 57);
    const std::string what = errorOf(
        [&] { MmapCompiledTrace mapped(path, kMaxMicroOpKind); });
    EXPECT_NE(what.find("byte 57"), std::string::npos) << what;
    EXPECT_NE(what.find("header"), std::string::npos) << what;
    std::remove(path.c_str());
}

TEST(CompiledTraceFormat, TruncationInsidePayloadNamesOffset)
{
    const std::string path = scratchPath("trunc_pay.ctc");
    writeCompiledTrace(path, compileMixed(epochConfig()));
    const std::uint64_t full =
        std::filesystem::file_size(path);
    const std::uint64_t cut = full - 100;
    truncateFile(path, cut);
    const std::string what = errorOf(
        [&] { MmapCompiledTrace mapped(path, kMaxMicroOpKind); });
    EXPECT_NE(what.find("byte " + std::to_string(cut)),
              std::string::npos)
        << what;
    std::remove(path.c_str());
}

TEST(CompiledTraceFormat, PackUnpackIsExact)
{
    const TimingConfig config = epochConfig();
    const CompiledTrace trace = compileMixed(config);
    const std::vector<std::uint8_t> packed =
        packCompiledTrace(trace.view());
    // Packed must actually compress the aligned layout.
    const std::string ctc = scratchPath("pack.ctc");
    writeCompiledTrace(ctc, trace);
    EXPECT_LT(packed.size(), std::filesystem::file_size(ctc));

    const CompiledTrace unpacked =
        unpackCompiledTrace(packed.data(), packed.size());
    const std::string ctc2 = scratchPath("pack2.ctc");
    writeCompiledTrace(ctc2, unpacked);
    // Byte-exact through the full pack -> unpack -> write chain.
    std::ifstream a(ctc, std::ios::binary), b(ctc2, std::ios::binary);
    const std::vector<char> ab((std::istreambuf_iterator<char>(a)),
                               std::istreambuf_iterator<char>());
    const std::vector<char> bb((std::istreambuf_iterator<char>(b)),
                               std::istreambuf_iterator<char>());
    EXPECT_EQ(ab, bb);
    std::remove(ctc.c_str());
    std::remove(ctc2.c_str());
}

TEST(CompiledTraceFormat, TruncatedPackedStreamNamesColumn)
{
    const CompiledTrace trace = compileMixed(epochConfig());
    std::vector<std::uint8_t> packed =
        packCompiledTrace(trace.view());
    packed.resize(packed.size() / 2);
    const std::string what = errorOf(
        [&] { unpackCompiledTrace(packed.data(), packed.size()); });
    EXPECT_FALSE(what.empty());
    EXPECT_NE(what.find("byte"), std::string::npos) << what;
}

// ---------------------------------------------------------------
// Trace reader truncation diagnostics (same loud-rejection contract).
// ---------------------------------------------------------------

TEST(TraceReaderErrors, StreamingTruncationNamesByteOffset)
{
    const std::vector<TraceEvent> events = loadGolden("mixed");
    const std::string path = scratchPath("trunc.trc");
    {
        TraceFileWriter writer(path);
        writer.onBatch(events.data(), events.size());
        writer.onFinish();
    }
    const std::uint64_t full = std::filesystem::file_size(path);
    const std::uint64_t cut = full - 7; // Mid-record.
    truncateFile(path, cut);

    // Header still reads fine (the reader checks size at open) —
    // so the size mismatch fires at construction, naming both sizes.
    const std::string open_what =
        errorOf([&] { TraceFileReader reader(path); });
    EXPECT_NE(open_what.find(std::to_string(cut)), std::string::npos)
        << open_what;

    // Slice below the header to hit the in-header truncation path.
    truncateFile(path, 9);
    const std::string hdr_what =
        errorOf([&] { TraceFileReader reader(path); });
    EXPECT_NE(hdr_what.find("byte 9"), std::string::npos) << hdr_what;
    EXPECT_NE(hdr_what.find("header"), std::string::npos) << hdr_what;

    const std::string mmap_what =
        errorOf([&] { MmapTraceReader reader(path); });
    EXPECT_NE(mmap_what.find("byte 9"), std::string::npos) << mmap_what;
    std::remove(path.c_str());
}

TEST(TraceReaderErrors, ReadPastShrunkenFileNamesRecord)
{
    // A file that shrinks after open (or lies in its header) must
    // fail the read loop with the record index and byte offset.
    const std::vector<TraceEvent> events = loadGolden("mixed");
    const std::string path = scratchPath("shrink.trc");
    {
        TraceFileWriter writer(path);
        writer.onBatch(events.data(), events.size());
        writer.onFinish();
    }
    TraceFileReader reader(path);
    TraceFileReader batch_reader(path);
    const std::uint64_t full = std::filesystem::file_size(path);
    truncateFile(path, full - 13);
    const std::string what = errorOf([&] {
        TraceEvent event;
        while (reader.readNext(event)) {
        }
    });
    EXPECT_NE(what.find("truncated trace file"), std::string::npos)
        << what;
    EXPECT_NE(what.find("byte"), std::string::npos) << what;
    EXPECT_NE(what.find("record"), std::string::npos) << what;

    std::vector<TraceEvent> buffer(events.size());
    const std::string batch_what = errorOf([&] {
        while (batch_reader.readBatch(buffer.data(), buffer.size()) >
               0) {
        }
    });
    EXPECT_NE(batch_what.find("truncated trace file"),
              std::string::npos)
        << batch_what;
    EXPECT_NE(batch_what.find("record"), std::string::npos)
        << batch_what;
    std::remove(path.c_str());
}

// ---------------------------------------------------------------
// Cache discipline: stale artifacts must recompile, never replay.
// ---------------------------------------------------------------

TEST(CompiledCache, HitsOnSecondLoadAndValidatesSourceHash)
{
    const std::vector<TraceEvent> events = loadGolden("cwl1");
    const TimingConfig config = epochConfig();
    const std::string cache = scratchPath("cache_hit");
    std::filesystem::remove_all(cache);

    bool hit = true;
    const CompiledTraceHandle cold = loadOrCompileTrace(
        events.data(), events.size(), config, cache, "cwl1", 1,
        nullptr, &hit);
    EXPECT_FALSE(hit);
    const CompiledTraceHandle warm = loadOrCompileTrace(
        events.data(), events.size(), config, cache, "cwl1", 1,
        nullptr, &hit);
    EXPECT_TRUE(hit);
    EXPECT_EQ(cold.view().source_hash, warm.view().source_hash);
    EXPECT_EQ(compiledReplay(warm.view(), config).critical_path,
              compiledReplay(cold.view(), config).critical_path);
    std::filesystem::remove_all(cache);
}

TEST(CompiledCache, StaleArtifactRecompilesUnderSameTag)
{
    // Same tag, different trace contents: the cached artifact's
    // source hash no longer matches, so the loader must recompile —
    // silently replaying the stale micro-ops would produce results
    // for the wrong trace.
    std::vector<TraceEvent> events = loadGolden("cwl1");
    const TimingConfig config = epochConfig();
    const std::string cache = scratchPath("cache_stale");
    std::filesystem::remove_all(cache);

    bool hit = true;
    (void)loadOrCompileTrace(events.data(), events.size(), config,
                             cache, "fixed-tag", 1, nullptr, &hit);
    EXPECT_FALSE(hit);

    // Mutate the trace; interpreted replay notices, the cache must
    // too.
    events[events.size() / 2].value ^= 0xdeadbeef;
    const CompiledTraceHandle handle = loadOrCompileTrace(
        events.data(), events.size(), config, cache, "fixed-tag", 1,
        nullptr, &hit);
    EXPECT_FALSE(hit) << "stale artifact served from cache";

    PersistTimingEngine engine(config);
    engine.onBatch(events.data(), events.size());
    engine.onFinish();
    const TimingResult want = engine.result();
    const TimingResult got = compiledReplay(handle.view(), config);
    EXPECT_EQ(want.critical_path, got.critical_path);
    EXPECT_EQ(want.persists, got.persists);
    std::filesystem::remove_all(cache);
}

TEST(CompiledCache, CorruptArtifactRecompilesInPlace)
{
    const std::vector<TraceEvent> events = loadGolden("cwl1");
    const TimingConfig config = epochConfig();
    const std::string cache = scratchPath("cache_corrupt");
    std::filesystem::remove_all(cache);

    bool hit = true;
    (void)loadOrCompileTrace(events.data(), events.size(), config,
                             cache, "t", 1, nullptr, &hit);
    // Corrupt the single cached artifact's payload.
    std::string artifact;
    for (const auto &entry :
         std::filesystem::directory_iterator(cache))
        artifact = entry.path().string();
    ASSERT_FALSE(artifact.empty());
    flipByte(artifact, 200);

    const CompiledTraceHandle handle = loadOrCompileTrace(
        events.data(), events.size(), config, cache, "t", 1, nullptr,
        &hit);
    EXPECT_FALSE(hit);
    // And the rewritten artifact is valid again.
    const CompiledTraceHandle again = loadOrCompileTrace(
        events.data(), events.size(), config, cache, "t", 1, nullptr,
        &hit);
    EXPECT_TRUE(hit);
    EXPECT_EQ(compiledReplay(handle.view(), config).persists,
              compiledReplay(again.view(), config).persists);
    std::filesystem::remove_all(cache);
}

TEST(CompiledCache, WrongSpecFingerprintIsAHardError)
{
    const std::vector<TraceEvent> events = loadGolden("cwl1");
    const TimingConfig config = epochConfig();
    const CompiledTrace trace =
        compileTrace(events.data(), events.size(), config);
    TimingConfig other = config;
    other.model.atomic_granularity = 64; // Different compile spec.
    EXPECT_THROW((void)compiledReplay(trace.view(), other),
                 FatalError);
}

// ---------------------------------------------------------------
// Bit-identity: compiled == interpreted, everywhere.
// ---------------------------------------------------------------

/** observeReplay's twin through compile -> execute. */
GoldenObservation
observeCompiledReplay(const std::vector<TraceEvent> &events,
                      const TimingConfig &config, std::uint32_t jobs,
                      TaskPool *pool)
{
    const CompiledTrace trace =
        compileTrace(events.data(), events.size(), config, jobs, pool);
    CompiledReplayOptions options;
    options.jobs = jobs;
    options.pool = pool;
    PersistLog log;
    const TimingResult result =
        compiledReplay(trace.view(), config, options,
                       config.record_log ? &log : nullptr);
    GoldenObservation seen;
    seen.critical_path = result.critical_path;
    seen.persists = result.persists;
    seen.coalesced = result.coalesced;
    seen.window_blocked = result.window_blocked;
    seen.races = result.races;
    seen.barriers = result.barriers;
    seen.strands = result.strands;
    seen.ops = result.ops;
    seen.events = result.events;
    seen.log_hash = hashPersistLog(log);
    return seen;
}

void
expectSameObservation(const GoldenObservation &want,
                      const GoldenObservation &got,
                      const std::string &label)
{
    EXPECT_EQ(want.critical_path, got.critical_path) << label;
    EXPECT_EQ(want.persists, got.persists) << label;
    EXPECT_EQ(want.coalesced, got.coalesced) << label;
    EXPECT_EQ(want.window_blocked, got.window_blocked) << label;
    EXPECT_EQ(want.races, got.races) << label;
    EXPECT_EQ(want.barriers, got.barriers) << label;
    EXPECT_EQ(want.strands, got.strands) << label;
    EXPECT_EQ(want.ops, got.ops) << label;
    EXPECT_EQ(want.events, got.events) << label;
    EXPECT_EQ(want.log_hash, got.log_hash) << label;
}

TEST(CompiledReplayBitIdentity, GoldenFixturesFullConfigMatrix)
{
    // Every fixture under every frozen golden configuration — the
    // same surface the golden regression test pins, including the
    // order-sensitive persist-log hash (record_log forces the
    // generic path; the log must match record for record).
    for (const std::string &name : goldenFixtureNames()) {
        const std::vector<TraceEvent> events = loadGolden(name);
        InMemoryTrace trace;
        trace.onBatch(events.data(), events.size());
        trace.onFinish();
        for (const GoldenConfig &config : goldenConfigs()) {
            const GoldenObservation want =
                observeReplay(trace, config.timing);
            const GoldenObservation got = observeCompiledReplay(
                events, config.timing, 1, nullptr);
            expectSameObservation(want, got,
                                  name + "/" + config.name);
        }
    }
}

TEST(CompiledReplayBitIdentity, SyntheticAllModelsSerialAndJobs)
{
    SyntheticTraceConfig synth;
    synth.events = syntheticEvents();
    const InMemoryTrace trace = buildSyntheticTrace(synth);
    const std::vector<TraceEvent> events(trace.events().begin(),
                                         trace.events().end());

    const std::vector<ModelConfig> models{
        ModelConfig::strict(), ModelConfig::epoch(),
        ModelConfig::strand(), ModelConfig::px86()};
    TaskPool pool(4);
    for (const ModelConfig &model : models) {
        TimingConfig config;
        config.model = model;
        PersistTimingEngine engine(config);
        engine.onBatch(events.data(), events.size());
        engine.onFinish();
        const TimingResult want = engine.result();
        for (const std::uint32_t jobs : {1u, 4u}) {
            const CompiledTrace compiled = compileTrace(
                events.data(), events.size(), config, jobs,
                jobs > 1 ? &pool : nullptr);
            CompiledReplayOptions options;
            options.jobs = jobs;
            options.pool = jobs > 1 ? &pool : nullptr;
            const TimingResult got =
                compiledReplay(compiled.view(), config, options);
            const std::string label = std::string(model.name()) +
                "/jobs" + std::to_string(jobs);
            EXPECT_EQ(want.critical_path, got.critical_path) << label;
            EXPECT_EQ(want.persists, got.persists) << label;
            EXPECT_EQ(want.coalesced, got.coalesced) << label;
            EXPECT_EQ(want.ops, got.ops) << label;
            EXPECT_EQ(want.events, got.events) << label;
            EXPECT_EQ(want.barriers, got.barriers) << label;
            EXPECT_EQ(want.strands, got.strands) << label;
            EXPECT_EQ(want.flushes, got.flushes) << label;
            EXPECT_EQ(want.fences, got.fences) << label;
            EXPECT_EQ(want.unflushed, got.unflushed) << label;
        }
    }
}

TEST(CompiledReplayBitIdentity, MappedArtifactMatchesInMemory)
{
    // The zero-copy mmap execution path must agree with the
    // freshly-compiled in-memory columns.
    const std::vector<TraceEvent> events = loadGolden("tlc2");
    for (const ModelConfig &model :
         {ModelConfig::strict(), ModelConfig::px86()}) {
        TimingConfig config;
        config.model = model;
        const CompiledTrace trace =
            compileTrace(events.data(), events.size(), config);
        const TimingResult want =
            compiledReplay(trace.view(), config);

        const std::string path = scratchPath(
            std::string("mapped_") + model.name() + ".ctc");
        writeCompiledTrace(path, trace);
        const CompiledTraceHandle handle =
            CompiledTraceHandle::fromFile(path);
        CompiledReplayStats stats;
        const TimingResult got = compiledReplay(
            handle.view(), config, {}, nullptr, &stats);
        EXPECT_EQ(want.critical_path, got.critical_path);
        EXPECT_EQ(want.persists, got.persists);
        EXPECT_EQ(want.coalesced, got.coalesced);
        EXPECT_EQ(stats.micro_ops, trace.view().micro_ops);
        std::remove(path.c_str());
    }
}

TEST(CompiledReplayBitIdentity, PackedRoundTripReplaysIdentically)
{
    const std::vector<TraceEvent> events = loadGolden("strand1");
    TimingConfig config;
    config.model = ModelConfig::strand();
    PersistTimingEngine engine(config);
    engine.onBatch(events.data(), events.size());
    engine.onFinish();
    const TimingResult want = engine.result();

    const CompiledTrace compiled =
        compileTrace(events.data(), events.size(), config);
    const std::vector<std::uint8_t> packed =
        packCompiledTrace(compiled.view());
    CompiledTrace unpacked =
        unpackCompiledTrace(packed.data(), packed.size());
    const CompiledTraceHandle handle =
        CompiledTraceHandle::fromMemory(std::move(unpacked));
    const TimingResult got = compiledReplay(handle.view(), config);
    EXPECT_EQ(want.critical_path, got.critical_path);
    EXPECT_EQ(want.persists, got.persists);
    EXPECT_EQ(want.coalesced, got.coalesced);
    EXPECT_EQ(want.strands, got.strands);
}

} // namespace
} // namespace persim::test
