/**
 * @file
 * Pruned-vs-exhaustive cross-check over the full conformance litmus
 * suite: running every litmus program (hand-written + generated)
 * under every persistency model with constraint-guided crash-state
 * pruning (ConformanceOptions::prune_cuts → checkObservedCuts) must
 * yield exactly the reachable-state sets, budget flags, and race
 * counts of blind checkAllCuts enumeration. This is the soundness
 * and completeness pin for DESIGN.md §14's pruning rule: the
 * observable projections of the full cut lattice are precisely the
 * order ideals of the observed groups under
 * reachability-through-unobserved-groups.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "conformance/litmus.hh"

namespace persim {
namespace {

TEST(PrunedConformance, IdenticalVerdictsOnEveryLitmusProgram)
{
    const std::vector<LitmusTest> tests = allLitmusTests();
    ASSERT_GE(tests.size(), 31u);

    ConformanceOptions exhaustive;
    exhaustive.jobs = 4;
    ConformanceOptions pruned = exhaustive;
    pruned.prune_cuts = true;

    const std::vector<LitmusResult> base =
        runConformanceSuite(tests, exhaustive);
    const std::vector<LitmusResult> opt =
        runConformanceSuite(tests, pruned);

    ASSERT_EQ(base.size(), opt.size());
    for (std::size_t i = 0; i < base.size(); ++i) {
        ASSERT_EQ(base[i].name, opt[i].name);
        ASSERT_EQ(base[i].models.size(), opt[i].models.size())
            << base[i].name;
        EXPECT_EQ(base[i].schedules, opt[i].schedules) << base[i].name;
        for (std::size_t m = 0; m < base[i].models.size(); ++m) {
            const ModelStates &b = base[i].models[m];
            const ModelStates &o = opt[i].models[m];
            ASSERT_EQ(b.model, o.model) << base[i].name;
            // Both directions: no state lost (soundness of skipping
            // unobserved-only cuts), no state invented (projections
            // are genuine consistent cuts).
            EXPECT_EQ(b.states, o.states)
                << base[i].name << "/" << b.model;
            EXPECT_EQ(b.budget_exhausted, o.budget_exhausted)
                << base[i].name << "/" << b.model;
            // Pruning only changes cut enumeration; the race
            // detector watches the replay, which is identical.
            EXPECT_EQ(b.persist_races, o.persist_races)
                << base[i].name << "/" << b.model;
        }
    }
}

// The divergence report itself — the subsystem's user-facing
// artifact — must be byte-identical under pruning.
TEST(PrunedConformance, ReportBytesUnchangedByPruning)
{
    const std::vector<LitmusTest> tests = handwrittenLitmusTests();
    ConformanceOptions exhaustive;
    ConformanceOptions pruned;
    pruned.prune_cuts = true;
    EXPECT_EQ(
        formatDivergenceReport(runConformanceSuite(tests, exhaustive)),
        formatDivergenceReport(runConformanceSuite(tests, pruned)));
}

} // namespace
} // namespace persim
