/**
 * @file
 * Conformance-suite tests: semantic spot checks of the hand-written
 * Px86 litmus results, --jobs byte-determinism of the divergence
 * report, and a golden byte-comparison against the committed report
 * (tests/conformance/golden/conformance_report.txt, located via the
 * PERSIM_CONFORMANCE_GOLDEN environment variable).
 *
 * The spot checks pin the two disagreements the subsystem exists to
 * document — epoch-vs-sfence and clflushopt-reordering/coalescing —
 * as directional set-membership assertions, so an engine change that
 * silently weakens either shows up as a named failure here, not just
 * as a golden diff.
 */

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "conformance/litmus.hh"

namespace persim {
namespace {

const std::vector<LitmusResult> &
handwrittenResults()
{
    static const std::vector<LitmusResult> results =
        runConformanceSuite(handwrittenLitmusTests());
    return results;
}

const LitmusResult &
findResult(const std::vector<LitmusResult> &results,
           const std::string &name)
{
    for (const LitmusResult &result : results)
        if (result.name == name)
            return result;
    ADD_FAILURE() << "no litmus result named " << name;
    static const LitmusResult empty;
    return empty;
}

const ModelStates &
findModel(const LitmusResult &result, const std::string &model)
{
    for (const ModelStates &states : result.models)
        if (states.model == model)
            return states;
    ADD_FAILURE() << "no model " << model << " in " << result.name;
    static const ModelStates empty;
    return empty;
}

bool
hasState(const ModelStates &states, const std::string &state)
{
    return std::find(states.states.begin(), states.states.end(),
                     state) != states.states.end();
}

TEST(Conformance, SuiteShapeAndBudget)
{
    const std::vector<LitmusResult> &results = handwrittenResults();
    ASSERT_GE(results.size(), 8u); // ISSUE floor for hand-written tests
    for (const LitmusResult &result : results) {
        EXPECT_GE(result.schedules, 1u) << result.name;
        ASSERT_EQ(result.models.size(), conformanceModels().size())
            << result.name;
        for (const ModelStates &states : result.models) {
            EXPECT_FALSE(states.budget_exhausted)
                << result.name << "/" << states.model;
            EXPECT_TRUE(std::is_sorted(states.states.begin(),
                                       states.states.end()))
                << result.name << "/" << states.model;
            // The all-zero initial state is always a reachable cut.
            EXPECT_FALSE(states.states.empty())
                << result.name << "/" << states.model;
        }
    }
}

// The headline disagreement: sfence alone persists nothing under
// px86, while the epoch reading of sfence acts as a persist barrier
// that orders (and eventually persists) the surrounding stores.
TEST(Conformance, EpochVsSfenceDivergence)
{
    const LitmusResult &result =
        findResult(handwrittenResults(), "epoch_vs_sfence");
    const ModelStates &px86 = findModel(result, "px86");
    const ModelStates &epoch = findModel(result, "epoch-a64");

    // Under px86 only y (flushed+fenced) can be durable; x never is.
    EXPECT_TRUE(hasState(px86, "x=0 y=1"));
    EXPECT_FALSE(hasState(px86, "x=1 y=0"));
    EXPECT_FALSE(hasState(px86, "x=1 y=1"));

    // Epoch persists x at the store and orders it before y.
    EXPECT_FALSE(hasState(epoch, "x=0 y=1"));
    EXPECT_TRUE(hasState(epoch, "x=1 y=1"));
}

// clflush orders before younger stores: y-without-x is forbidden
// under px86 but reachable under barrier-free epoch persistency.
TEST(Conformance, ClflushOrdersYoungerStores)
{
    const LitmusResult &result =
        findResult(handwrittenResults(), "clflush_chain");
    EXPECT_FALSE(hasState(findModel(result, "px86"), "x=0 y=1"));
    EXPECT_TRUE(hasState(findModel(result, "epoch-a64"), "x=0 y=1"));
}

// The clflushopt-reordering side of the same coin: a younger clflush
// may overtake an older unfenced clflushopt, so px86 agrees with
// epoch here and both diverge from strict.
TEST(Conformance, ClflushoptMayBeOvertaken)
{
    const LitmusResult &result =
        findResult(handwrittenResults(), "clflushopt_overtaken");
    EXPECT_TRUE(hasState(findModel(result, "px86"), "x=0 y=1"));
    EXPECT_TRUE(hasState(findModel(result, "epoch-a64"), "x=0 y=1"));
    EXPECT_FALSE(hasState(findModel(result, "strict-a64"), "x=0 y=1"));
}

// Coalescing disagreement: flushing a line between two stores to it
// exposes the intermediate per-line state that epoch's 64-byte
// same-block coalescing hides.
TEST(Conformance, FlushExposesIntermediateLineState)
{
    const LitmusResult &result =
        findResult(handwrittenResults(), "same_line_two_flushes");
    EXPECT_TRUE(hasState(findModel(result, "px86"), "a=1 b=0"));
    EXPECT_FALSE(hasState(findModel(result, "epoch-a64"), "a=1 b=0"));
}

// An unflushed store is never durable under px86.
TEST(Conformance, UnflushedStoreNeverDurable)
{
    const LitmusResult &result =
        findResult(handwrittenResults(), "store_no_flush");
    const ModelStates &px86 = findModel(result, "px86");
    EXPECT_EQ(px86.states, std::vector<std::string>{"x=0"});
    EXPECT_TRUE(hasState(findModel(result, "epoch-a64"), "x=1"));
}

// Durable-before-visible: the consumer inherits the producer's
// clflush through the volatile flag it reads, so px86 is STRONGER
// than barrier-free epoch on the message-passing idiom.
TEST(Conformance, DurableBeforeVisiblePropagation)
{
    const LitmusResult &result =
        findResult(handwrittenResults(), "message_passing_flush");
    EXPECT_FALSE(hasState(findModel(result, "px86"), "x=0 y=1"));
    EXPECT_TRUE(hasState(findModel(result, "epoch-a64"), "x=0 y=1"));
}

// mfence/sfence and clwb/clflushopt are persistency-equivalent, and
// a fenced clflushopt restores epoch-like ordering: px86 agrees with
// epoch on all three rows.
TEST(Conformance, AgreementRows)
{
    for (const char *name :
         {"flushopt_sfence_ordered", "mfence_same_as_sfence",
          "clwb_same_as_clflushopt", "independent_flushes"}) {
        const LitmusResult &result =
            findResult(handwrittenResults(), name);
        EXPECT_EQ(findModel(result, "px86").states,
                  findModel(result, "epoch-a64").states)
            << name;
    }
}

// The seeded persistency race: the consumer reads x while it is
// dirty and persists y without anything ordering x's durability
// first. The PersistRace detector must flag it under every model
// that exhibits the hazard — dirty_read under px86 (TSO made the
// dirty value visible), unordered_persist under the SC-shadow
// models — and the px86 state set must actually contain the
// y-without-x recovery the race warns about.
TEST(Conformance, SeededPersistRaceIsFlagged)
{
    const LitmusResult &result =
        findResult(handwrittenResults(), "dirty_read_race");
    EXPECT_GT(findModel(result, "px86").persist_races, 0u);
    EXPECT_GT(findModel(result, "epoch-a64").persist_races, 0u);
    EXPECT_GT(findModel(result, "strand-a64").persist_races, 0u);
    EXPECT_TRUE(hasState(findModel(result, "px86"), "x=0 y=1"));
}

// Properly synchronized rows must stay race-free: every persist is
// ordered by its own thread's flush+fence chain (agreement rows) or
// the threads touch disjoint lines with no conflicting access
// carrying a stale shadow (independent_flushes under px86).
TEST(Conformance, SynchronizedRowsAreRaceFree)
{
    for (const char *name :
         {"clflush_chain", "flushopt_sfence_ordered",
          "mfence_same_as_sfence", "clwb_same_as_clflushopt",
          "independent_flushes"}) {
        const LitmusResult &result =
            findResult(handwrittenResults(), name);
        for (const ModelStates &states : result.models)
            EXPECT_EQ(states.persist_races, 0u)
                << name << "/" << states.model;
    }
}

// The full suite (hand-written + generated) must produce a
// byte-identical report for every --jobs value.
TEST(Conformance, ReportIsJobsDeterministic)
{
    const std::vector<LitmusTest> tests = allLitmusTests();
    ConformanceOptions serial;
    serial.jobs = 1;
    ConformanceOptions parallel;
    parallel.jobs = 4;
    const std::string a =
        formatDivergenceReport(runConformanceSuite(tests, serial));
    const std::string b =
        formatDivergenceReport(runConformanceSuite(tests, parallel));
    EXPECT_EQ(a, b);
}

// Byte-compare the generated report against the committed golden.
// Regenerate after an INTENTIONAL semantic change with:
//   conformance_report --out=tests/conformance/golden/conformance_report.txt
TEST(Conformance, GoldenDivergenceReport)
{
    const char *path = std::getenv("PERSIM_CONFORMANCE_GOLDEN");
    ASSERT_NE(path, nullptr)
        << "PERSIM_CONFORMANCE_GOLDEN not set (run via ctest)";
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good()) << "cannot open golden: " << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string golden = buf.str();

    const std::string report =
        formatDivergenceReport(runConformanceSuite(allLitmusTests()));
    ASSERT_EQ(report.size(), golden.size())
        << "report size drifted from golden; if the semantic change "
           "is intentional, regenerate with conformance_report --out=";
    EXPECT_EQ(report, golden);
}

} // namespace
} // namespace persim
