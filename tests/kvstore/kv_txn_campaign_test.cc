/**
 * @file
 * Fault-campaign tests over the cross-shard service layer: the
 * TxnResolve tier absorbs every fault mix (none / torn / media /
 * drops / all) on transaction-heavy and migration-heavy workloads
 * across all three update strategies with zero violations; the
 * no-commit-barrier mutant is *detected* under the Repair-tier
 * invariant (non-zero violations naming the torn transaction) and
 * resolved loudly — scrubbed and counted, never silent — under
 * TxnResolve; recorded violations replay from their repro lines; and
 * serial vs parallel campaigns are bit-identical on the router
 * surface, group-level stats included.
 */

#include <gtest/gtest.h>

#include "bench_util/kv_workload.hh"
#include "kvstore/router.hh"
#include "recovery/fault_campaign.hh"

namespace persim {
namespace {

/** Transaction-heavy router workload (the kv-txn surface); set
    @p migrate to add thread-0 rebalancing (the kv-migrate surface). */
KvRouterWorkloadConfig
campaignWorkload(KvUpdateStrategy strategy, bool migrate)
{
    KvRouterWorkloadConfig config;
    config.router.shards = 2;
    config.router.partitions = 8;
    config.router.max_txns = 512;
    config.router.group_log_capacity = 1 << 16;
    config.router.store.buckets = 128;
    config.router.store.heap_bytes = 1 << 15;
    config.router.store.max_value_bytes = 64;
    config.router.store.log_capacity = 1 << 17;
    config.router.store.strategy = strategy;
    config.threads = 2;
    config.ops_per_thread = 60;
    config.key_space = 40;
    config.txn_ratio = 0.35;
    config.snapshot_ratio = 0.05;
    config.put_ratio = 0.35;
    config.get_ratio = 0.15;
    config.migrate_every = migrate ? 10 : 0;
    config.max_value_bytes = 48;
    config.seed = 17;
    return config;
}

/** The five fault mixes of the acceptance criterion. */
FaultConfig
faultMix(int kind)
{
    FaultConfig faults;
    switch (kind) {
    case 0: // Pure crash cuts, no device faults.
        break;
    case 1: // Torn persists.
        faults.tear_persists = true;
        faults.atomic_write_unit = 4;
        break;
    case 2: // Media bit flips.
        faults.media_error_per_write = 5e-4;
        break;
    case 3: // Dropped drain-buffer writes.
        faults.drop_drain_p = 0.25;
        faults.drain_latency = 0.5;
        break;
    default: // Everything at once.
        faults.tear_persists = true;
        faults.atomic_write_unit = 4;
        faults.media_error_per_write = 5e-4;
        faults.drop_drain_p = 0.25;
        faults.drain_latency = 0.5;
        break;
    }
    return faults;
}

KvGroupRecoveryOptions
resolveOptions()
{
    KvGroupRecoveryOptions options;
    options.mode = KvRecoveryMode::TxnResolve;
    return options;
}

TEST(KvTxnCampaign, TxnResolveAbsorbsEveryFaultMixOnEveryStrategy)
{
    // The acceptance criterion: 5 fault mixes x 3 strategies x
    // {kv-txn, kv-migrate}, TxnResolve recovery, zero violations.
    // In-doubt transactions, scrubbed partials, and lost participants
    // are graceful, *counted* degradation — never a wrong answer.
    for (KvUpdateStrategy strategy :
         {KvUpdateStrategy::InPlace, KvUpdateStrategy::Cow,
          KvUpdateStrategy::LogStructured}) {
        for (const bool migrate : {false, true}) {
            const KvRouterWorkloadResult workload = runKvRouterWorkload(
                campaignWorkload(strategy, migrate));
            ASSERT_GT(workload.txns_committed, 0u);
            if (migrate)
                ASSERT_GT(workload.migrations, 0u);
            for (int mix = 0; mix < 5; ++mix) {
                FaultCampaignConfig campaign;
                campaign.injection.model = ModelConfig::strand();
                campaign.injection.realizations = 3;
                campaign.injection.crashes_per_realization = 16;
                campaign.injection.seed = 29 + mix;
                campaign.faults = faultMix(mix);

                auto stats =
                    std::make_shared<KvRouterInvariantStats>();
                const InjectionResult result = runFaultCampaign(
                    workload.trace, campaign,
                    makeKvRouterInvariant(workload.layout,
                                          workload.golden,
                                          workload.txn_golden,
                                          resolveOptions(), stats));
                EXPECT_TRUE(result.ok())
                    << kvUpdateStrategyName(strategy)
                    << (migrate ? " kv-migrate" : " kv-txn")
                    << " mix " << mix << ": "
                    << result.first_violation;
                EXPECT_GT(result.samples, 0u);
                EXPECT_EQ(stats->shard.images.load(), result.samples);
            }
        }
    }
}

TEST(KvTxnCampaign, NoCommitBarrierMutantIsDetectedNeverSilent)
{
    // The mutant drops the commit barriers and the per-entry publish
    // barriers, so table applications race the commit record. Two
    // claims, one campaign: under the Repair-tier invariant (no
    // scrub) sampled crash states expose partially visible
    // uncommitted transactions as *violations*; under TxnResolve the
    // same images recover with zero violations because the partial
    // state is scrubbed — and the scrubs land in the stats, so the
    // damage is counted, never silent.
    // Cow applies flip a pointer-sized word, so a sampled crash shows
    // the complete new version without its commit record directly;
    // in-place tears land in checksum quarantine more often than in
    // clean partial visibility (the exhaustive per-strategy proof is
    // the atomicity battery's job, not the sampler's).
    KvRouterWorkloadConfig config =
        campaignWorkload(KvUpdateStrategy::Cow, false);
    config.router.omit_commit_barrier = true;
    config.router.store.omit_publish_barrier = true;
    const KvRouterWorkloadResult workload = runKvRouterWorkload(config);
    ASSERT_GT(workload.txns_committed, 0u);

    FaultCampaignConfig campaign;
    campaign.injection.model = ModelConfig::strand();
    campaign.injection.realizations = 6;
    campaign.injection.crashes_per_realization = 32;
    campaign.injection.seed = 37;

    KvGroupRecoveryOptions repair;
    repair.mode = KvRecoveryMode::Repair;
    const InjectionResult caught = runFaultCampaign(
        workload.trace, campaign,
        makeKvRouterInvariant(workload.layout, workload.golden,
                              workload.txn_golden, repair));
    EXPECT_GT(caught.violations, 0u)
        << "the missing commit barrier never surfaced";
    EXPECT_NE(caught.first_violation.find("uncommitted"),
              std::string::npos)
        << caught.first_violation;

    auto stats = std::make_shared<KvRouterInvariantStats>();
    const InjectionResult resolved = runFaultCampaign(
        workload.trace, campaign,
        makeKvRouterInvariant(workload.layout, workload.golden,
                              workload.txn_golden, resolveOptions(),
                              stats));
    EXPECT_TRUE(resolved.ok()) << resolved.first_violation;
    EXPECT_GT(stats->txn_partial.load(), 0u)
        << "TxnResolve hid the mutant without counting a scrub";
}

TEST(KvTxnCampaign, ViolationsReplayFromTheirReproLines)
{
    // Round-trip every recorded violation on the router surface
    // through format -> parse -> replay, like the single-shard KV,
    // queue, and log surfaces.
    KvRouterWorkloadConfig config =
        campaignWorkload(KvUpdateStrategy::Cow, false);
    config.router.omit_commit_barrier = true;
    config.router.store.omit_publish_barrier = true;
    const KvRouterWorkloadResult workload = runKvRouterWorkload(config);

    FaultCampaignConfig campaign;
    campaign.injection.model = ModelConfig::strand();
    campaign.injection.realizations = 4;
    campaign.injection.crashes_per_realization = 24;
    campaign.injection.seed = 41;
    campaign.injection.max_recorded_violations = 8;

    KvGroupRecoveryOptions repair;
    repair.mode = KvRecoveryMode::Repair;
    const auto invariant = makeKvRouterInvariant(
        workload.layout, workload.golden, workload.txn_golden, repair);
    const InjectionResult result =
        runFaultCampaign(workload.trace, campaign, invariant);
    ASSERT_GT(result.violation_list.size(), 0u);

    for (const ViolationRecord &violation : result.violation_list) {
        const std::string line = violationRepro(violation);
        FaultRepro repro;
        ASSERT_TRUE(parseFaultRepro(line, repro)) << line;
        FaultOutcome outcome;
        const std::string verdict = replayFaultRepro(
            workload.trace, campaign, repro, invariant, &outcome);
        EXPECT_EQ(verdict, violation.verdict) << line;
        if (!violation.fault_summary.empty())
            EXPECT_EQ(outcome.summary(), violation.fault_summary);
    }
}

TEST(KvTxnCampaign, ParallelEqualsSerial)
{
    // Full fault mix over the migration-enabled router trace, jobs=1
    // vs jobs=4: bit-identical results, recorded violations included,
    // and identical order-independent group stats.
    const KvRouterWorkloadResult workload = runKvRouterWorkload(
        campaignWorkload(KvUpdateStrategy::LogStructured, true));
    FaultCampaignConfig campaign;
    campaign.injection.model = ModelConfig::strand();
    campaign.injection.realizations = 8;
    campaign.injection.crashes_per_realization = 16;
    campaign.injection.seed = 43;
    campaign.faults = faultMix(4);

    campaign.injection.jobs = 1;
    auto serial_stats = std::make_shared<KvRouterInvariantStats>();
    const InjectionResult serial = runFaultCampaign(
        workload.trace, campaign,
        makeKvRouterInvariant(workload.layout, workload.golden,
                              workload.txn_golden, resolveOptions(),
                              serial_stats));
    campaign.injection.jobs = 4;
    auto parallel_stats = std::make_shared<KvRouterInvariantStats>();
    const InjectionResult parallel = runFaultCampaign(
        workload.trace, campaign,
        makeKvRouterInvariant(workload.layout, workload.golden,
                              workload.txn_golden, resolveOptions(),
                              parallel_stats));

    EXPECT_EQ(serial.samples, parallel.samples);
    EXPECT_EQ(serial.violations, parallel.violations);
    EXPECT_EQ(serial.first_violation, parallel.first_violation);
    EXPECT_EQ(serial.first_violation_time,
              parallel.first_violation_time);
    ASSERT_EQ(serial.violation_list.size(),
              parallel.violation_list.size());
    for (std::size_t i = 0; i < serial.violation_list.size(); ++i)
        EXPECT_EQ(violationRepro(serial.violation_list[i]),
                  violationRepro(parallel.violation_list[i]));
    EXPECT_EQ(serial_stats->shard.images.load(),
              parallel_stats->shard.images.load());
    EXPECT_EQ(serial_stats->shard.quarantined.load(),
              parallel_stats->shard.quarantined.load());
    EXPECT_EQ(serial_stats->shard.repaired.load(),
              parallel_stats->shard.repaired.load());
    EXPECT_EQ(serial_stats->in_doubt.load(),
              parallel_stats->in_doubt.load());
    EXPECT_EQ(serial_stats->txn_partial.load(),
              parallel_stats->txn_partial.load());
    EXPECT_EQ(serial_stats->txn_lost.load(),
              parallel_stats->txn_lost.load());
    EXPECT_EQ(serial_stats->owner_faults.load(),
              parallel_stats->owner_faults.load());
    EXPECT_EQ(serial_stats->stale_copies.load(),
              parallel_stats->stale_copies.load());
}

} // namespace
} // namespace persim
