/**
 * @file
 * Fault-campaign tests over the KV-store surface: the Repair tier
 * absorbs every fault kind across all three update strategies with
 * zero violations; eliding the publish barrier makes corruption
 * *detected* (quarantined) but never silent under DetectAndDiscard,
 * and a Strict failure; recorded violations replay from their repro
 * lines; and serial vs parallel campaigns are bit-identical.
 */

#include <gtest/gtest.h>

#include "bench_util/kv_workload.hh"
#include "kvstore/recovery.hh"
#include "recovery/fault_campaign.hh"

namespace persim {
namespace {

KvWorkloadConfig
campaignWorkload(KvUpdateStrategy strategy)
{
    KvWorkloadConfig config;
    config.store.buckets = 128;
    config.store.heap_bytes = 1 << 15;
    config.store.log_capacity = 1 << 17;
    config.store.strategy = strategy;
    config.threads = 2;
    config.ops_per_thread = 60;
    config.key_space = 40;
    config.put_ratio = 0.6;
    config.get_ratio = 0.2;
    config.seed = 17;
    return config;
}

/** The three device-fault mixes of the acceptance criterion. */
FaultConfig
faultMix(int kind)
{
    FaultConfig faults;
    switch (kind) {
    case 0: // Torn persists.
        faults.tear_persists = true;
        faults.atomic_write_unit = 4;
        break;
    case 1: // Media bit flips.
        faults.media_error_per_write = 5e-4;
        break;
    default: // Dropped drain-buffer writes.
        faults.drop_drain_p = 0.25;
        faults.drain_latency = 0.5;
        break;
    }
    return faults;
}

KvRecoveryOptions
repairOptions(const KvWorkloadResult &workload)
{
    KvRecoveryOptions options;
    options.mode = KvRecoveryMode::Repair;
    options.journal = workload.journal;
    return options;
}

TEST(KvCampaign, RepairTierAbsorbsEveryFaultMixOnEveryStrategy)
{
    // The acceptance criterion: 3 fault kinds x 3 update strategies,
    // Repair-tier recovery with barriers enabled, zero violations.
    // Detected corruption is graceful degradation (quarantine /
    // repair / discard in the stats), never a wrong answer.
    for (KvUpdateStrategy strategy :
         {KvUpdateStrategy::InPlace, KvUpdateStrategy::Cow,
          KvUpdateStrategy::LogStructured}) {
        const KvWorkloadResult workload =
            runKvWorkload(campaignWorkload(strategy));
        for (int mix = 0; mix < 3; ++mix) {
            FaultCampaignConfig campaign;
            campaign.injection.model = ModelConfig::epoch();
            campaign.injection.realizations = 4;
            campaign.injection.crashes_per_realization = 24;
            campaign.injection.seed = 29 + mix;
            campaign.faults = faultMix(mix);

            auto stats = std::make_shared<KvInvariantStats>();
            const InjectionResult result = runFaultCampaign(
                workload.trace, campaign,
                makeKvRecoveryInvariant(workload.layout,
                                        workload.golden,
                                        repairOptions(workload),
                                        stats));
            EXPECT_TRUE(result.ok())
                << kvUpdateStrategyName(strategy) << " mix " << mix
                << ": " << result.first_violation;
            EXPECT_GT(result.samples, 0u);
            EXPECT_EQ(stats->images.load(), result.samples);
        }
    }
}

TEST(KvCampaign, FaultsAreDetectedNotSilent)
{
    // Media bit flips must leave fingerprints: across the campaign the
    // recovery ladder quarantines at least one bucket (the checksum is
    // load-bearing), yet no silent corruption surfaces.
    const KvWorkloadResult workload =
        runKvWorkload(campaignWorkload(KvUpdateStrategy::Cow));
    FaultCampaignConfig campaign;
    campaign.injection.model = ModelConfig::epoch();
    campaign.injection.realizations = 4;
    campaign.injection.crashes_per_realization = 32;
    campaign.injection.seed = 31;
    campaign.faults.media_error_per_write = 5e-3;

    KvRecoveryOptions options;
    options.mode = KvRecoveryMode::DetectAndDiscard;
    auto stats = std::make_shared<KvInvariantStats>();
    const InjectionResult result = runFaultCampaign(
        workload.trace, campaign,
        makeKvRecoveryInvariant(workload.layout, workload.golden,
                                options, stats));
    EXPECT_TRUE(result.ok()) << result.first_violation;
    EXPECT_GT(stats->quarantined.load(), 0u)
        << "bit flips should trip the bucket checksums";
    std::uint64_t by_cause = 0;
    for (const auto &count : stats->by_cause)
        by_cause += count.load();
    EXPECT_EQ(by_cause, stats->quarantined.load());

    // The same faulted images fail the Strict tier: detection is
    // real, the ladder's policy is what differs.
    KvRecoveryOptions strict;
    strict.mode = KvRecoveryMode::Strict;
    const InjectionResult strict_result = runFaultCampaign(
        workload.trace, campaign,
        makeKvRecoveryInvariant(workload.layout, workload.golden,
                                strict));
    EXPECT_GT(strict_result.violations, 0u);
}

TEST(KvCampaign, ElidedPublishBarrierIsCaughtNeverSilent)
{
    // The mutant: omit the pre-publish barrier, so a bucket can go
    // live before its payload/checksum persist. Detect-and-discard
    // must see quarantined buckets across the campaign — and still
    // zero *silent* violations (the checksum catches every torn
    // publish; nothing unissued is ever served).
    KvWorkloadConfig config = campaignWorkload(KvUpdateStrategy::Cow);
    config.store.omit_publish_barrier = true;
    config.store.use_strands = false;
    const KvWorkloadResult workload = runKvWorkload(config);

    FaultCampaignConfig campaign;
    campaign.injection.model = ModelConfig::epoch();
    campaign.injection.realizations = 6;
    campaign.injection.crashes_per_realization = 32;
    campaign.injection.seed = 37;

    KvRecoveryOptions options;
    options.mode = KvRecoveryMode::DetectAndDiscard;
    auto stats = std::make_shared<KvInvariantStats>();
    const InjectionResult discard = runFaultCampaign(
        workload.trace, campaign,
        makeKvRecoveryInvariant(workload.layout, workload.golden,
                                options, stats));
    EXPECT_TRUE(discard.ok()) << discard.first_violation;
    EXPECT_GT(stats->quarantined.load(), 0u)
        << "the elided barrier should expose mid-publish crash states";

    // Strict recovery reports the same inconsistencies as violations.
    KvRecoveryOptions strict;
    strict.mode = KvRecoveryMode::Strict;
    const InjectionResult caught = runFaultCampaign(
        workload.trace, campaign,
        makeKvRecoveryInvariant(workload.layout, workload.golden,
                                strict));
    EXPECT_GT(caught.violations, 0u);
}

TEST(KvCampaign, ViolationsReplayFromTheirReproLines)
{
    // Round-trip every recorded violation on the KV surface through
    // format -> parse -> replay, like the queue and log surfaces.
    const KvWorkloadResult workload =
        runKvWorkload(campaignWorkload(KvUpdateStrategy::InPlace));
    FaultCampaignConfig campaign;
    campaign.injection.model = ModelConfig::strand();
    campaign.injection.realizations = 4;
    campaign.injection.crashes_per_realization = 24;
    campaign.injection.seed = 41;
    campaign.injection.max_recorded_violations = 8;
    campaign.faults.media_error_per_write = 5e-3;

    KvRecoveryOptions strict;
    strict.mode = KvRecoveryMode::Strict;
    const auto invariant = makeKvRecoveryInvariant(
        workload.layout, workload.golden, strict);
    const InjectionResult result =
        runFaultCampaign(workload.trace, campaign, invariant);
    ASSERT_GT(result.violation_list.size(), 0u);

    for (const ViolationRecord &violation : result.violation_list) {
        const std::string line = violationRepro(violation);
        FaultRepro repro;
        ASSERT_TRUE(parseFaultRepro(line, repro)) << line;
        FaultOutcome outcome;
        const std::string verdict = replayFaultRepro(
            workload.trace, campaign, repro, invariant, &outcome);
        EXPECT_EQ(verdict, violation.verdict) << line;
        if (!violation.fault_summary.empty())
            EXPECT_EQ(outcome.summary(), violation.fault_summary);
    }
}

TEST(KvCampaign, ParallelEqualsSerial)
{
    // Full fault mix, jobs=1 vs jobs=4: bit-identical results on the
    // KV surface, including recorded violations, and identical
    // order-independent invariant stats.
    const KvWorkloadResult workload =
        runKvWorkload(campaignWorkload(KvUpdateStrategy::LogStructured));
    FaultCampaignConfig campaign;
    campaign.injection.model = ModelConfig::strand();
    campaign.injection.realizations = 8;
    campaign.injection.crashes_per_realization = 16;
    campaign.injection.seed = 43;
    campaign.faults.tear_persists = true;
    campaign.faults.atomic_write_unit = 4;
    campaign.faults.media_error_per_write = 1e-3;

    KvRecoveryOptions strict;
    strict.mode = KvRecoveryMode::Strict;

    campaign.injection.jobs = 1;
    auto serial_stats = std::make_shared<KvInvariantStats>();
    const InjectionResult serial = runFaultCampaign(
        workload.trace, campaign,
        makeKvRecoveryInvariant(workload.layout, workload.golden,
                                strict, serial_stats));
    campaign.injection.jobs = 4;
    auto parallel_stats = std::make_shared<KvInvariantStats>();
    const InjectionResult parallel = runFaultCampaign(
        workload.trace, campaign,
        makeKvRecoveryInvariant(workload.layout, workload.golden,
                                strict, parallel_stats));

    EXPECT_EQ(serial.samples, parallel.samples);
    EXPECT_EQ(serial.violations, parallel.violations);
    EXPECT_EQ(serial.first_violation, parallel.first_violation);
    EXPECT_EQ(serial.first_violation_time,
              parallel.first_violation_time);
    ASSERT_EQ(serial.violation_list.size(),
              parallel.violation_list.size());
    for (std::size_t i = 0; i < serial.violation_list.size(); ++i) {
        EXPECT_EQ(violationRepro(serial.violation_list[i]),
                  violationRepro(parallel.violation_list[i]));
        EXPECT_EQ(serial.violation_list[i].verdict,
                  parallel.violation_list[i].verdict);
    }
    EXPECT_EQ(serial_stats->images.load(),
              parallel_stats->images.load());
    EXPECT_EQ(serial_stats->quarantined.load(),
              parallel_stats->quarantined.load());
    EXPECT_EQ(serial_stats->repaired.load(),
              parallel_stats->repaired.load());
}

} // namespace
} // namespace persim
