/**
 * @file
 * KV recovery-ladder tests: clean images recover exactly; handcrafted
 * corruption is detected with the right BucketFault cause; the three
 * tiers apply their policies (Strict fails, DetectAndDiscard serves
 * the rest, Repair rebuilds from the journal with a bounded budget);
 * and a seeded bit-flip fuzzer checks that recovery of a mutilated
 * image never crashes, never serves a value no writer issued, and
 * accounts for every fault it finds.
 */

#include <gtest/gtest.h>

#include "bench_util/kv_workload.hh"
#include "kvstore/recovery.hh"
#include "recovery/recovery.hh"

namespace persim {
namespace {

/** Final (crash-free) image of a workload run. */
MemoryImage
finalImage(const KvWorkloadResult &workload)
{
    const PersistLog log = stochasticLog(
        workload.trace, ModelConfig::strand(), /*seed=*/3);
    return reconstructImage(log, 1e30);
}

KvWorkloadConfig
smallConfig(KvUpdateStrategy strategy)
{
    KvWorkloadConfig config;
    config.store.buckets = 256;
    config.store.heap_bytes = 1 << 16;
    config.store.log_capacity = 1 << 18;
    config.store.strategy = strategy;
    config.threads = 2;
    config.ops_per_thread = 120;
    config.key_space = 60;
    config.put_ratio = 0.6;
    config.get_ratio = 0.2;
    config.seed = 11;
    return config;
}

/** Expected final state from the golden history. */
std::map<std::uint64_t, std::vector<std::uint8_t>>
goldenFinal(const KvGoldenHistory &golden)
{
    std::map<std::uint64_t, std::vector<std::uint8_t>> state;
    for (const auto &[key, versions] : golden) {
        if (!versions.empty() && !versions.back().erased)
            state[key] = versions.back().value;
    }
    return state;
}

class KvRecoveryStrategies
    : public ::testing::TestWithParam<KvUpdateStrategy>
{
};

TEST_P(KvRecoveryStrategies, CleanImageRecoversExactly)
{
    const KvWorkloadResult workload =
        runKvWorkload(smallConfig(GetParam()));
    const MemoryImage image = finalImage(workload);
    KvRecoveryOptions options;
    options.mode = KvRecoveryMode::Strict;
    const KvRecovery recovery =
        recoverKvStore(image, workload.layout, options);
    ASSERT_TRUE(recovery.ok) << recovery.error;
    EXPECT_TRUE(recovery.faults.empty());
    const auto expect = goldenFinal(*workload.golden);
    ASSERT_EQ(recovery.entries.size(), expect.size());
    for (const auto &[key, value] : expect) {
        auto it = recovery.entries.find(key);
        ASSERT_NE(it, recovery.entries.end()) << key;
        EXPECT_EQ(it->second.value, value) << key;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, KvRecoveryStrategies,
    ::testing::Values(KvUpdateStrategy::InPlace, KvUpdateStrategy::Cow,
                      KvUpdateStrategy::LogStructured),
    [](const ::testing::TestParamInfo<KvUpdateStrategy> &info) {
        return std::string(kvUpdateStrategyName(info.param));
    });

/** A tiny handcrafted layout with self-consistent live buckets. */
struct Handcrafted
{
    KvLayout layout;
    MemoryImage image;

    Handcrafted()
    {
        layout.table = persistent_base;
        layout.buckets = 16;
        layout.heap = persistent_base + 16 * KvLayout::bucket_bytes;
        layout.heap_bytes = 1 << 12;
        layout.max_value_bytes = 256;
    }

    /** Write a fully valid live bucket at the key's home slot. */
    std::uint64_t
    addLive(std::uint64_t key, std::uint64_t seq,
            std::vector<std::uint8_t> value, std::uint64_t slot_shift = 0)
    {
        const std::uint64_t index =
            (KvStore::hashIndex(key, layout.buckets) + slot_shift) &
            (layout.buckets - 1);
        const std::uint64_t val_off = next_heap_;
        next_heap_ += (value.size() + 7) & ~7ULL;
        image.writeBytes(layout.heap + val_off, value.data(),
                         value.size());
        const Addr bucket = layout.bucketAddr(index);
        image.store(bucket + KvLayout::key_off, 8, key);
        image.store(bucket + KvLayout::val_off_off, 8, val_off);
        image.store(bucket + KvLayout::val_len_off, 8, value.size());
        image.store(bucket + KvLayout::seq_off, 8, seq);
        image.store(bucket + KvLayout::cksum_off, 8,
                    KvLayout::checksum(index, key, val_off,
                                       value.size(), seq,
                                       value.data()));
        image.store(bucket + KvLayout::state_off, 8,
                    KvLayout::state_live);
        return index;
    }

  private:
    std::uint64_t next_heap_ = 0;
};

TEST(KvRecovery, DetectsEveryFaultKind)
{
    // Checksum mismatch (payload bit rot).
    {
        Handcrafted h;
        const std::uint64_t index = h.addLive(7, 1, {1, 2, 3});
        (void)index;
        const Addr payload = h.layout.heap + 0;
        h.image.store(payload, 1, h.image.load(payload, 1) ^ 0x40);
        const KvRecovery r =
            recoverKvStore(h.image, h.layout, {});
        ASSERT_EQ(r.faults.size(), 1u);
        EXPECT_EQ(r.faults[0].kind, BucketFaultKind::BadChecksum);
        EXPECT_TRUE(r.entries.empty());
    }
    // Bad value reference.
    {
        Handcrafted h;
        const std::uint64_t index = h.addLive(7, 1, {1, 2, 3});
        h.image.store(h.layout.bucketAddr(index) +
                          KvLayout::val_len_off,
                      8, h.layout.heap_bytes + 1);
        const KvRecovery r = recoverKvStore(h.image, h.layout, {});
        ASSERT_EQ(r.faults.size(), 1u);
        EXPECT_EQ(r.faults[0].kind, BucketFaultKind::BadValueRef);
    }
    // Invalid state.
    {
        Handcrafted h;
        h.image.store(h.layout.bucketAddr(3) + KvLayout::state_off, 8,
                      9);
        const KvRecovery r = recoverKvStore(h.image, h.layout, {});
        ASSERT_EQ(r.faults.size(), 1u);
        EXPECT_EQ(r.faults[0].kind, BucketFaultKind::InvalidState);
    }
    // Zero key.
    {
        Handcrafted h;
        h.image.store(h.layout.bucketAddr(3) + KvLayout::state_off, 8,
                      KvLayout::state_live);
        const KvRecovery r = recoverKvStore(h.image, h.layout, {});
        ASSERT_EQ(r.faults.size(), 1u);
        EXPECT_EQ(r.faults[0].kind, BucketFaultKind::ZeroKey);
    }
    // Duplicate key: the stale generation quarantines, the newer
    // seq survives.
    {
        Handcrafted h;
        h.addLive(7, 1, {1});
        h.addLive(7, 5, {2}, /*slot_shift=*/1);
        const KvRecovery r = recoverKvStore(h.image, h.layout, {});
        ASSERT_EQ(r.faults.size(), 1u);
        EXPECT_EQ(r.faults[0].kind, BucketFaultKind::DuplicateKey);
        ASSERT_EQ(r.entries.count(7), 1u);
        EXPECT_EQ(r.entries.at(7).seq, 5u);
        EXPECT_EQ(r.entries.at(7).value,
                  std::vector<std::uint8_t>({2}));
    }
    // Unreachable: a live bucket stranded past an empty slot.
    {
        Handcrafted h;
        const std::uint64_t index =
            h.addLive(7, 1, {1}, /*slot_shift=*/3);
        const KvRecovery r = recoverKvStore(h.image, h.layout, {});
        ASSERT_EQ(r.faults.size(), 1u);
        EXPECT_EQ(r.faults[0].kind, BucketFaultKind::Unreachable);
        EXPECT_EQ(r.faults[0].bucket, index);
        EXPECT_TRUE(r.entries.empty());
    }
    // Tombstones are self-describing: stale words are not faults.
    {
        Handcrafted h;
        const std::uint64_t index = h.addLive(7, 1, {1, 2, 3});
        h.image.store(h.layout.bucketAddr(index) + KvLayout::state_off,
                      8, KvLayout::state_tombstone);
        h.image.store(h.layout.bucketAddr(index) + KvLayout::cksum_off,
                      8, 0xdeadbeef); // Garbage checksum: ignored.
        const KvRecovery r = recoverKvStore(h.image, h.layout, {});
        EXPECT_TRUE(r.faults.empty());
        EXPECT_EQ(r.tombstones, 1u);
        EXPECT_TRUE(r.entries.empty());
    }
}

TEST(KvRecovery, TiersApplyTheirPolicies)
{
    Handcrafted h;
    h.addLive(7, 1, {1, 2, 3});
    h.addLive(9, 2, {4});
    // Rot key 7's payload.
    const Addr payload = h.layout.heap + 0;
    h.image.store(payload, 1, h.image.load(payload, 1) ^ 0x01);

    // Strict: the fault fails recovery.
    KvRecoveryOptions strict;
    strict.mode = KvRecoveryMode::Strict;
    const KvRecovery s = recoverKvStore(h.image, h.layout, strict);
    EXPECT_FALSE(s.ok);
    EXPECT_FALSE(s.error.empty());

    // DetectAndDiscard: quarantine 7, serve 9.
    KvRecoveryOptions discard;
    discard.mode = KvRecoveryMode::DetectAndDiscard;
    const KvRecovery d = recoverKvStore(h.image, h.layout, discard);
    EXPECT_TRUE(d.ok);
    EXPECT_EQ(d.discarded, 1u);
    EXPECT_EQ(d.entries.count(7), 0u);
    ASSERT_EQ(d.entries.count(9), 1u);
    EXPECT_EQ(d.entries.at(9).value, std::vector<std::uint8_t>({4}));

    // Repair without a journal degrades to DetectAndDiscard.
    KvRecoveryOptions repair;
    repair.mode = KvRecoveryMode::Repair;
    const KvRecovery r = recoverKvStore(h.image, h.layout, repair);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.repaired, 0u);
    EXPECT_EQ(r.discarded, 1u);
}

TEST(KvRecovery, RepairRebuildsFromJournal)
{
    const KvWorkloadResult workload =
        runKvWorkload(smallConfig(KvUpdateStrategy::LogStructured));
    MemoryImage image = finalImage(workload);
    const auto expect = goldenFinal(*workload.golden);
    ASSERT_FALSE(expect.empty());

    // Rot the checksum word of one live bucket.
    const std::uint64_t victim_key = expect.begin()->first;
    std::uint64_t index =
        KvStore::hashIndex(victim_key, workload.layout.buckets);
    Addr victim = invalid_addr;
    for (std::uint64_t probe = 0; probe < workload.layout.buckets;
         ++probe) {
        const Addr bucket = workload.layout.bucketAddr(index);
        if (image.load(bucket + KvLayout::state_off, 8) ==
                KvLayout::state_live &&
            image.load(bucket + KvLayout::key_off, 8) == victim_key) {
            victim = bucket;
            break;
        }
        index = (index + 1) & (workload.layout.buckets - 1);
    }
    ASSERT_NE(victim, invalid_addr);
    image.store(victim + KvLayout::cksum_off, 8,
                image.load(victim + KvLayout::cksum_off, 8) ^ 0xff);

    // DetectAndDiscard loses the key...
    KvRecoveryOptions discard;
    discard.mode = KvRecoveryMode::DetectAndDiscard;
    const KvRecovery d =
        recoverKvStore(image, workload.layout, discard);
    EXPECT_TRUE(d.ok);
    EXPECT_EQ(d.entries.count(victim_key), 0u);
    EXPECT_GE(d.discarded, 1u);

    // ...Repair resurrects it from the journal.
    KvRecoveryOptions repair;
    repair.mode = KvRecoveryMode::Repair;
    repair.journal = workload.journal;
    const KvRecovery r = recoverKvStore(image, workload.layout, repair);
    EXPECT_TRUE(r.ok);
    EXPECT_GE(r.repaired, 1u);
    EXPECT_GT(r.log_records, 0u);
    ASSERT_EQ(r.entries.count(victim_key), 1u);
    EXPECT_EQ(r.entries.at(victim_key).value, expect.at(victim_key));
    EXPECT_TRUE(r.entries.at(victim_key).repaired);

    // A zero budget falls back to discard.
    repair.repair_budget = 0;
    const KvRecovery capped =
        recoverKvStore(image, workload.layout, repair);
    EXPECT_TRUE(capped.ok);
    EXPECT_EQ(capped.repaired, 0u);
    EXPECT_EQ(capped.entries.count(victim_key), 0u);

    // A corrupt journal is distrusted, not crashed on: rot its first
    // record's checksum region and repair again.
    MemoryImage rotted = image.clone();
    rotted.store(workload.journal.base + 8, 8, 0x12345678);
    const KvRecovery fallback =
        recoverKvStore(rotted, workload.layout,
                       KvRecoveryOptions{KvRecoveryMode::Repair,
                                         workload.journal, 1 << 20});
    EXPECT_TRUE(fallback.ok);
    EXPECT_EQ(fallback.log_records, 0u);
}

TEST(KvRecovery, InvariantFlagsSilentCorruption)
{
    // A bucket whose checksum validates but whose value no writer
    // issued is the one thing detection cannot catch — the invariant
    // (which knows the golden history) must.
    Handcrafted h;
    h.addLive(7, 1, {1, 2, 3});
    auto golden = std::make_shared<KvGoldenHistory>();
    KvGoldenVersion version;
    version.seq = 1;
    version.value = {9, 9, 9}; // The writer issued something else.
    (*golden)[7].push_back(version);

    KvRecoveryOptions options;
    options.mode = KvRecoveryMode::DetectAndDiscard;
    auto invariant = makeKvRecoveryInvariant(
        h.layout, std::move(golden), options);
    const std::string verdict = invariant(h.image);
    EXPECT_NE(verdict.find("silent corruption"), std::string::npos)
        << verdict;
}

TEST(KvRecovery, BitFlipFuzzer)
{
    // Seeded fuzz: flip K random bits anywhere in the store's
    // persistent footprint (table, heap, journal), then recover under
    // every tier. Recovery must never throw, never serve a (seq,
    // value) pair no writer issued, and its accounting must classify
    // what it saw: every served key is clean or repaired, everything
    // else it detected is quarantined with a cause.
    const KvWorkloadResult workload =
        runKvWorkload(smallConfig(KvUpdateStrategy::LogStructured));
    const MemoryImage base = finalImage(workload);
    const KvLayout &layout = workload.layout;

    struct Region
    {
        Addr base;
        std::uint64_t bytes;
    };
    std::vector<Region> regions{
        {layout.table, layout.buckets * KvLayout::bucket_bytes},
        {layout.heap, layout.heap_bytes},
        {workload.journal.base, workload.journal.capacity},
    };

    KvRecoveryOptions repair;
    repair.mode = KvRecoveryMode::Repair;
    repair.journal = workload.journal;
    auto stats = std::make_shared<KvInvariantStats>();
    auto invariant = makeKvRecoveryInvariant(layout, workload.golden,
                                             repair, stats);

    Rng rng(0xf1122ed);
    for (int trial = 0; trial < 150; ++trial) {
        MemoryImage image = base.clone();
        const int flips = 1 + rng.nextBounded(8);
        for (int f = 0; f < flips; ++f) {
            const Region &region =
                regions[rng.nextBounded(regions.size())];
            const Addr addr = region.base +
                              rng.nextBounded(region.bytes);
            image.store(addr, 1,
                        image.load(addr, 1) ^
                            (1u << rng.nextBounded(8)));
        }
        for (KvRecoveryMode mode :
             {KvRecoveryMode::Strict, KvRecoveryMode::DetectAndDiscard,
              KvRecoveryMode::Repair}) {
            KvRecoveryOptions options = repair;
            options.mode = mode;
            KvRecovery recovery;
            ASSERT_NO_THROW(recovery = recoverKvStore(image, layout,
                                                      options))
                << "trial " << trial;
            // Never a wrong value: every served entry matches an
            // issued version.
            for (const auto &[key, entry] : recovery.entries) {
                auto history = workload.golden->find(key);
                ASSERT_NE(history, workload.golden->end())
                    << "trial " << trial << " invented key " << key;
                bool issued = false;
                for (const KvGoldenVersion &v : history->second)
                    if (v.seq == entry.seq && !v.erased &&
                        v.value == entry.value)
                        issued = true;
                ASSERT_TRUE(issued)
                    << "trial " << trial << " key " << key
                    << " served a value no writer issued";
            }
            // Classification: per-cause counts sum to the faults.
            std::uint64_t by_cause = 0;
            for (std::size_t k = 0; k < bucket_fault_kinds; ++k)
                by_cause += recovery.faultCount(
                    static_cast<BucketFaultKind>(k));
            EXPECT_EQ(by_cause, recovery.faults.size());
            if (mode == KvRecoveryMode::Strict)
                EXPECT_EQ(recovery.ok, recovery.faults.empty());
            else
                EXPECT_TRUE(recovery.ok);
            if (mode != KvRecoveryMode::Repair)
                EXPECT_EQ(recovery.repaired, 0u);
        }
        // The campaign-facing invariant agrees: no silent corruption.
        EXPECT_EQ(invariant(image), "") << "trial " << trial;
    }
    EXPECT_EQ(stats->images.load(), 150u);
}

} // namespace
} // namespace persim
