/**
 * @file
 * Functional tests for the KvRouter service layer: cross-shard
 * transaction commit and backpressure, consistent multi-shard
 * snapshots, crash-consistent migration, the TxnResolve recovery
 * tier on clean images, txn-record codec negatives, and the
 * host-visible publication counter (a TSan regression test: the
 * counter is polled from an ordinary OS thread while engine workers
 * mutate).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "bench_util/kv_workload.hh"
#include "kvstore/router.hh"
#include "recovery/recovery.hh"

namespace persim {
namespace {

KvRouterOptions
smallRouter(KvUpdateStrategy strategy, std::uint32_t shards = 2)
{
    KvRouterOptions options;
    options.shards = shards;
    options.partitions = 16;
    options.store.buckets = 128;
    options.store.heap_bytes = 1 << 15;
    options.store.log_capacity = 1 << 17;
    options.store.strategy = strategy;
    return options;
}

/** Final (crash-free) image of a router workload run. */
MemoryImage
finalImage(const KvRouterWorkloadResult &workload)
{
    const PersistLog log = stochasticLog(
        workload.trace, ModelConfig::strand(), /*seed=*/3);
    return reconstructImage(log, 1e30);
}

/** Highest-seq golden version of @p key (merged histories are
    concatenated per shard, so back() is not the latest). */
const KvGoldenVersion *
latestGolden(const KvGoldenHistory &golden, std::uint64_t key)
{
    auto history = golden.find(key);
    if (history == golden.end())
        return nullptr;
    const KvGoldenVersion *latest = nullptr;
    for (const KvGoldenVersion &version : history->second) {
        if (latest == nullptr || version.seq > latest->seq)
            latest = &version;
    }
    return latest;
}

KvRouterWorkloadConfig
routerWorkload(KvUpdateStrategy strategy)
{
    KvRouterWorkloadConfig config;
    config.router = smallRouter(strategy, 3);
    config.threads = 3;
    config.ops_per_thread = 80;
    config.key_space = 60;
    config.migrate_every = 16;
    config.seed = 23;
    return config;
}

class KvTxnStrategies
    : public ::testing::TestWithParam<KvUpdateStrategy>
{
};

TEST_P(KvTxnStrategies, CommitAppliesAcrossShards)
{
    ExecutionEngine engine(EngineConfig{});
    auto router = std::make_shared<KvRouter>();
    engine.runSetup([&](ThreadCtx &ctx) {
        *router =
            KvRouter::create(ctx, smallRouter(GetParam()), 1);
    });

    engine.run({[&](ThreadCtx &ctx) {
        // Seed one key so the txn exercises update + insert + erase.
        const std::uint8_t old_val[4] = {9, 9, 9, 9};
        ASSERT_EQ(router->put(ctx, 0, 7, old_val, sizeof(old_val)),
                  KvStatus::Ok);
        ASSERT_EQ(router->put(ctx, 0, 8, old_val, sizeof(old_val)),
                  KvStatus::Ok);

        KvTxn txn;
        const std::uint8_t a[3] = {1, 2, 3};
        const std::uint8_t b[5] = {4, 5, 6, 7, 8};
        txn.put(7, a, sizeof(a));  // Update.
        txn.put(100, b, sizeof(b)); // Insert (different partition).
        txn.erase(8);               // Erase.
        std::uint64_t txn_id = 0;
        ASSERT_EQ(router->commit(ctx, 0, txn, &txn_id),
                  KvTxnStatus::Committed);
        EXPECT_NE(txn_id, 0u);

        std::vector<std::uint8_t> value;
        ASSERT_TRUE(router->get(ctx, 7, value));
        EXPECT_EQ(value, std::vector<std::uint8_t>(a, a + sizeof(a)));
        ASSERT_TRUE(router->get(ctx, 100, value));
        EXPECT_EQ(value, std::vector<std::uint8_t>(b, b + sizeof(b)));
        EXPECT_FALSE(router->get(ctx, 8, value));
    }});

    // The transaction is on the host-side golden list with all ops.
    const auto txns = router->txnGolden();
    ASSERT_EQ(txns->size(), 1u);
    EXPECT_EQ(txns->front().ops.size(), 3u);
    EXPECT_GE(router->publishedSeq(), 3u);
}

TEST_P(KvTxnStrategies, TxnResolveRecoversCleanImageExactly)
{
    const KvRouterWorkloadResult workload =
        runKvRouterWorkload(routerWorkload(GetParam()));
    ASSERT_GT(workload.txns_committed, 0u);
    ASSERT_GT(workload.migrations, 0u);

    const MemoryImage image = finalImage(workload);
    KvGroupRecoveryOptions options;
    options.mode = KvRecoveryMode::TxnResolve;
    const KvGroupRecovery rec =
        recoverKvRouter(image, workload.layout, options);
    EXPECT_TRUE(rec.ok);
    EXPECT_EQ(rec.in_doubt, 0u);
    EXPECT_EQ(rec.txn_lost, 0u);
    EXPECT_EQ(rec.owner_faults, 0u);
    EXPECT_EQ(rec.status_faults, 0u);
    EXPECT_EQ(rec.txn_partial, 0u);
    // Every committed-by-execution txn resolved committed.
    for (const KvTxnGolden &txn : *workload.txn_golden)
        EXPECT_EQ(rec.committed.count(txn.txn), 1u) << txn.txn;

    // Served state == golden final state, across migrations.
    std::map<std::uint64_t, std::vector<std::uint8_t>> expect;
    for (const auto &[key, versions] : *workload.golden) {
        const KvGoldenVersion *latest =
            latestGolden(*workload.golden, key);
        if (latest != nullptr && !latest->erased)
            expect[key] = latest->value;
    }
    ASSERT_EQ(rec.entries.size(), expect.size());
    for (const auto &[key, value] : expect) {
        auto it = rec.entries.find(key);
        ASSERT_NE(it, rec.entries.end()) << key;
        EXPECT_EQ(it->second.value, value) << key;
    }

    // And the campaign invariant agrees on the clean image.
    const auto invariant = makeKvRouterInvariant(
        workload.layout, workload.golden, workload.txn_golden,
        options);
    EXPECT_EQ(invariant(image), "");
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, KvTxnStrategies,
    ::testing::Values(KvUpdateStrategy::InPlace, KvUpdateStrategy::Cow,
                      KvUpdateStrategy::LogStructured),
    [](const ::testing::TestParamInfo<KvUpdateStrategy> &info) {
        return std::string(kvUpdateStrategyName(info.param));
    });

TEST(KvTxn, CommitBackpressureLeavesNoTrace)
{
    ExecutionEngine engine(EngineConfig{});
    auto router = std::make_shared<KvRouter>();
    KvRouterOptions options = smallRouter(KvUpdateStrategy::InPlace);
    options.max_txns = 3; // Ids 1 and 2 usable.
    engine.runSetup([&](ThreadCtx &ctx) {
        *router = KvRouter::create(ctx, options, 1);
    });

    engine.run({[&](ThreadCtx &ctx) {
        KvTxn empty;
        EXPECT_EQ(router->commit(ctx, 0, empty), KvTxnStatus::Empty);

        KvTxn huge;
        std::vector<std::uint8_t> big(
            router->layout().max_value_bytes + 1, 1);
        huge.put(5, big.data(), big.size());
        EXPECT_EQ(router->commit(ctx, 0, huge),
                  KvTxnStatus::ValueTooLarge);

        KvTxn ok;
        const std::uint8_t v[2] = {1, 2};
        ok.put(5, v, sizeof(v));
        ok.put(6, v, sizeof(v));
        EXPECT_EQ(router->commit(ctx, 0, ok),
                  KvTxnStatus::Committed);
        EXPECT_EQ(router->commit(ctx, 0, ok),
                  KvTxnStatus::Committed);
        // Id space exhausted: pure backpressure, values unchanged.
        EXPECT_EQ(router->commit(ctx, 0, ok),
                  KvTxnStatus::TooManyTxns);
        std::vector<std::uint8_t> value;
        ASSERT_TRUE(router->get(ctx, 5, value));
        EXPECT_EQ(value, std::vector<std::uint8_t>(v, v + sizeof(v)));
    }});
    EXPECT_EQ(router->txnGolden()->size(), 2u);
}

TEST(KvTxn, SnapshotPinsTheGlobalSeq)
{
    ExecutionEngine engine(EngineConfig{});
    auto router = std::make_shared<KvRouter>();
    engine.runSetup([&](ThreadCtx &ctx) {
        *router = KvRouter::create(
            ctx, smallRouter(KvUpdateStrategy::Cow), 1);
    });

    engine.run({[&](ThreadCtx &ctx) {
        const std::uint8_t v1[2] = {1, 1};
        const std::uint8_t v2[2] = {2, 2};
        ASSERT_EQ(router->put(ctx, 0, 3, v1, sizeof(v1)),
                  KvStatus::Ok);
        ASSERT_EQ(router->put(ctx, 0, 4, v1, sizeof(v1)),
                  KvStatus::Ok);

        std::map<std::uint64_t, std::vector<std::uint8_t>> out;
        std::uint64_t seq_a = 0, seq_b = 0;
        ASSERT_TRUE(router->multiGet(ctx, {3, 4, 99}, out, seq_a));
        EXPECT_EQ(out.size(), 2u);
        EXPECT_EQ(out[3],
                  std::vector<std::uint8_t>(v1, v1 + sizeof(v1)));

        // A later mutation advances the pinned seq.
        ASSERT_EQ(router->put(ctx, 0, 3, v2, sizeof(v2)),
                  KvStatus::Ok);
        ASSERT_TRUE(router->multiGet(ctx, {3, 4}, out, seq_b));
        EXPECT_GT(seq_b, seq_a);
        EXPECT_EQ(out[3],
                  std::vector<std::uint8_t>(v2, v2 + sizeof(v2)));
    }});
}

TEST(KvTxn, MigrationMovesOwnershipAndKeys)
{
    ExecutionEngine engine(EngineConfig{});
    auto router = std::make_shared<KvRouter>();
    engine.runSetup([&](ThreadCtx &ctx) {
        *router = KvRouter::create(
            ctx, smallRouter(KvUpdateStrategy::LogStructured), 1);
    });

    engine.run({[&](ThreadCtx &ctx) {
        // Fill a handful of keys, then move every partition that
        // hosts one of them to shard 1 and check nothing is lost.
        std::vector<std::uint64_t> keys = {11, 12, 13, 14, 15};
        for (std::uint64_t key : keys) {
            const std::uint8_t v[3] = {
                static_cast<std::uint8_t>(key), 0, 1};
            ASSERT_EQ(router->put(ctx, 0, key, v, sizeof(v)),
                      KvStatus::Ok);
        }
        for (std::uint64_t key : keys) {
            const std::uint32_t partition =
                static_cast<std::uint32_t>(KvRouterLayout::partitionOf(
                    key, router->layout().partitions));
            const KvMigrateStatus status =
                router->migrate(ctx, 0, partition, 1);
            EXPECT_TRUE(status == KvMigrateStatus::Ok ||
                        status == KvMigrateStatus::NoOp)
                << kvMigrateStatusName(status);
            EXPECT_EQ(router->shardOf(ctx, key), 1u);
            // Migrating to the current owner is a no-op.
            EXPECT_EQ(router->migrate(ctx, 0, partition, 1),
                      KvMigrateStatus::NoOp);
        }
        std::vector<std::uint8_t> value;
        for (std::uint64_t key : keys) {
            ASSERT_TRUE(router->get(ctx, key, value)) << key;
            EXPECT_EQ(value[0], static_cast<std::uint8_t>(key));
        }
        // Mutations keep working on the new owner.
        const std::uint8_t v2[2] = {7, 7};
        ASSERT_EQ(router->put(ctx, 0, 11, v2, sizeof(v2)),
                  KvStatus::Ok);
        ASSERT_EQ(router->erase(ctx, 0, 12), KvStatus::Ok);
        ASSERT_TRUE(router->get(ctx, 11, value));
        EXPECT_EQ(value,
                  std::vector<std::uint8_t>(v2, v2 + sizeof(v2)));
        EXPECT_FALSE(router->get(ctx, 12, value));
    }});
}

TEST(KvTxn, PublishedSeqIsSafeToPollFromAnotherThread)
{
    // Regression test for the global seq counter being read
    // non-atomically by snapshot readers: publishedSeq() must be an
    // acquire load pairing with the writers' release increments, so
    // an ordinary OS thread can poll it while engine workers mutate.
    // Run this under TSan to make the check real.
    ExecutionEngine engine(EngineConfig{});
    auto router = std::make_shared<KvRouter>();
    engine.runSetup([&](ThreadCtx &ctx) {
        *router = KvRouter::create(
            ctx, smallRouter(KvUpdateStrategy::InPlace), 2);
    });

    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> observed{0};
    std::thread poller([&] {
        std::uint64_t last = 0;
        while (!stop.load(std::memory_order_relaxed)) {
            const std::uint64_t seq = router->publishedSeq();
            EXPECT_GE(seq, last); // Monotone from one observer.
            last = seq;
            std::this_thread::yield();
        }
        observed.store(last);
    });

    std::vector<ExecutionEngine::WorkerFn> workers;
    for (std::uint32_t t = 0; t < 2; ++t) {
        workers.push_back([&router, t](ThreadCtx &ctx) {
            std::vector<std::uint8_t> value(8, 0);
            for (std::uint64_t i = 0; i < 200; ++i) {
                value[0] = static_cast<std::uint8_t>(i);
                const std::uint64_t key = 1 + (i * 2 + t) % 64;
                (void)router->put(ctx, t, key, value.data(),
                                  value.size());
                if (i % 8 == 0) {
                    KvTxn txn;
                    txn.put(key, value.data(), value.size());
                    txn.put(key + 64, value.data(), value.size());
                    (void)router->commit(ctx, t, txn);
                }
            }
        });
    }
    engine.run(workers);
    stop.store(true);
    poller.join();
    EXPECT_GT(router->publishedSeq(), 0u);
    EXPECT_LE(observed.load(), router->publishedSeq());
}

TEST(KvTxn, RecordCodecRejectsMalformedPayloads)
{
    KvTxnRecord record;
    record.kind = KvTxnRecord::kind_commit;
    record.txn = 9;
    record.seq = 40;
    record.participants = {{0, 0}, {1, 128}};
    const std::vector<std::uint8_t> payload = record.encode();
    KvTxnRecord decoded;
    ASSERT_TRUE(KvTxnRecord::decode(payload, decoded));
    EXPECT_EQ(decoded.txn, 9u);
    EXPECT_EQ(decoded.seq, 40u);
    ASSERT_EQ(decoded.participants.size(), 2u);
    EXPECT_EQ(decoded.participants[1].lsn, 128u);

    // Truncated, wrong count, zero txn, zero seq: all rejected.
    std::vector<std::uint8_t> bad(payload.begin(), payload.end() - 1);
    EXPECT_FALSE(KvTxnRecord::decode(bad, decoded));
    bad = payload;
    bad[24] = 7; // Count no longer matches the size.
    EXPECT_FALSE(KvTxnRecord::decode(bad, decoded));
    bad = payload;
    bad[8] = 0;
    EXPECT_FALSE(KvTxnRecord::decode(bad, decoded));
    bad = payload;
    bad[16] = 0;
    EXPECT_FALSE(KvTxnRecord::decode(bad, decoded));

    KvTxnRecord migrate;
    migrate.kind = KvTxnRecord::kind_migrate_end;
    migrate.txn = 4;
    migrate.partition = 3;
    migrate.from_shard = 0;
    migrate.to_shard = 2;
    migrate.moved_keys = 5;
    const std::vector<std::uint8_t> mig_payload = migrate.encode();
    ASSERT_TRUE(KvTxnRecord::decode(mig_payload, decoded));
    EXPECT_EQ(decoded.to_shard, 2u);
    EXPECT_EQ(decoded.moved_keys, 5u);
    bad = mig_payload;
    bad[0] = 77; // Unknown kind.
    EXPECT_FALSE(KvTxnRecord::decode(bad, decoded));
    bad = mig_payload;
    bad[24] = 2; // from == to.
    EXPECT_FALSE(KvTxnRecord::decode(bad, decoded));
    bad = mig_payload;
    bad.push_back(0); // Migrate records are exactly 48 bytes.
    EXPECT_FALSE(KvTxnRecord::decode(bad, decoded));
}

TEST(KvTxn, RecordAtValidatesSingleJournalRecords)
{
    // recordAt() is the group recovery's point probe: it must accept
    // exactly the records the prefix scan yields and reject torn or
    // overwritten bytes at the same offset.
    const KvRouterWorkloadResult workload = runKvRouterWorkload(
        routerWorkload(KvUpdateStrategy::InPlace));
    const MemoryImage image = finalImage(workload);
    const LogLayout &journal = workload.layout.shard_journals[0];
    const LogRecovery scan = PersistentLog::recover(image, journal);
    ASSERT_GT(scan.records.size(), 0u);
    for (const RecoveredRecord &record : scan.records) {
        RecoveredRecord probe;
        ASSERT_TRUE(PersistentLog::recordAt(image, journal,
                                            record.offset, probe));
        EXPECT_EQ(probe.payload, record.payload);
        EXPECT_EQ(probe.seq, record.seq);
    }
    // Corrupt one payload byte: the point probe rejects it.
    MemoryImage rotted = image.clone();
    const std::uint64_t offset = scan.records.front().offset;
    const std::uint64_t byte =
        rotted.load(journal.base + offset + 16, 1);
    rotted.store(journal.base + offset + 16, 1, byte ^ 0xff);
    RecoveredRecord probe;
    EXPECT_FALSE(
        PersistentLog::recordAt(rotted, journal, offset, probe));
}

} // namespace
} // namespace persim
