/**
 * @file
 * KvStore functional tests: put/get/erase across update strategies,
 * backpressure statuses (table/heap/journal full, oversized values),
 * golden history, journal record encoding, and concurrency.
 */

#include <gtest/gtest.h>

#include "bench_util/kv_workload.hh"
#include "kvstore/kvstore.hh"

namespace persim {
namespace {

std::vector<std::uint8_t>
bytes(std::initializer_list<std::uint8_t> list)
{
    return std::vector<std::uint8_t>(list);
}

class KvStoreStrategies
    : public ::testing::TestWithParam<KvUpdateStrategy>
{
};

TEST_P(KvStoreStrategies, PutGetEraseBasics)
{
    ExecutionEngine engine(EngineConfig{}, nullptr);
    engine.run({[](ThreadCtx &ctx) {
        KvOptions options;
        options.buckets = 64;
        options.heap_bytes = 4096;
        options.strategy = GetParam();
        auto store = KvStore::create(ctx, options, 1);

        std::vector<std::uint8_t> value;
        EXPECT_FALSE(store.get(ctx, 5, value));

        const auto v1 = bytes({1, 2, 3, 4, 5});
        ASSERT_EQ(store.put(ctx, 0, 5, v1.data(), v1.size()),
                  KvStatus::Ok);
        ASSERT_TRUE(store.get(ctx, 5, value));
        EXPECT_EQ(value, v1);

        // Same-length update.
        const auto v2 = bytes({9, 8, 7, 6, 5});
        ASSERT_EQ(store.put(ctx, 0, 5, v2.data(), v2.size()),
                  KvStatus::Ok);
        ASSERT_TRUE(store.get(ctx, 5, value));
        EXPECT_EQ(value, v2);

        // Length-changing update.
        const auto v3 = bytes({42});
        ASSERT_EQ(store.put(ctx, 0, 5, v3.data(), v3.size()),
                  KvStatus::Ok);
        ASSERT_TRUE(store.get(ctx, 5, value));
        EXPECT_EQ(value, v3);

        EXPECT_EQ(store.count(ctx), 1u);
        EXPECT_EQ(store.erase(ctx, 0, 5), KvStatus::Ok);
        EXPECT_FALSE(store.get(ctx, 5, value));
        EXPECT_EQ(store.erase(ctx, 0, 5), KvStatus::NotFound);
        EXPECT_EQ(store.count(ctx), 0u);

        // Tombstone reuse.
        ASSERT_EQ(store.put(ctx, 0, 5, v1.data(), v1.size()),
                  KvStatus::Ok);
        ASSERT_TRUE(store.get(ctx, 5, value));
        EXPECT_EQ(value, v1);
    }});
}

TEST_P(KvStoreStrategies, ManyKeysWithCollisions)
{
    ExecutionEngine engine(EngineConfig{}, nullptr);
    engine.run({[](ThreadCtx &ctx) {
        KvOptions options;
        options.buckets = 32; // Heavy collisions and wraparound.
        options.heap_bytes = 1 << 14;
        options.strategy = GetParam();
        auto store = KvStore::create(ctx, options, 1);
        for (std::uint64_t key = 1; key <= 24; ++key) {
            const auto v = bytes({static_cast<std::uint8_t>(key),
                                  static_cast<std::uint8_t>(key * 3)});
            ASSERT_EQ(store.put(ctx, 0, key, v.data(), v.size()),
                      KvStatus::Ok);
        }
        EXPECT_EQ(store.count(ctx), 24u);
        std::vector<std::uint8_t> value;
        for (std::uint64_t key = 1; key <= 24; ++key) {
            ASSERT_TRUE(store.get(ctx, key, value)) << key;
            EXPECT_EQ(value[0], static_cast<std::uint8_t>(key));
        }
        EXPECT_FALSE(store.get(ctx, 99, value));
    }});
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, KvStoreStrategies,
    ::testing::Values(KvUpdateStrategy::InPlace, KvUpdateStrategy::Cow,
                      KvUpdateStrategy::LogStructured),
    [](const ::testing::TestParamInfo<KvUpdateStrategy> &info) {
        return std::string(kvUpdateStrategyName(info.param));
    });

TEST(KvStore, TableFullIsBackpressureNotFatal)
{
    ExecutionEngine engine(EngineConfig{}, nullptr);
    engine.run({[](ThreadCtx &ctx) {
        KvOptions options;
        options.buckets = 4;
        options.heap_bytes = 4096;
        auto store = KvStore::create(ctx, options, 1);
        const auto v = bytes({1});
        for (std::uint64_t key = 1; key <= 4; ++key)
            ASSERT_EQ(store.put(ctx, 0, key, v.data(), 1),
                      KvStatus::Ok);
        EXPECT_EQ(store.put(ctx, 0, 5, v.data(), 1),
                  KvStatus::TableFull);
        EXPECT_EQ(store.count(ctx), 4u);
        // Updates and erases still work; freeing re-enables inserts.
        EXPECT_EQ(store.put(ctx, 0, 2, v.data(), 1), KvStatus::Ok);
        EXPECT_EQ(store.erase(ctx, 0, 3), KvStatus::Ok);
        EXPECT_EQ(store.put(ctx, 0, 5, v.data(), 1), KvStatus::Ok);
    }});
}

TEST(KvStore, HeapFullIsBackpressureNotFatal)
{
    ExecutionEngine engine(EngineConfig{}, nullptr);
    engine.run({[](ThreadCtx &ctx) {
        KvOptions options;
        options.buckets = 64;
        options.heap_bytes = 64; // Room for exactly 4 x 16 bytes.
        options.max_value_bytes = 16;
        options.strategy = KvUpdateStrategy::InPlace;
        auto store = KvStore::create(ctx, options, 1);
        std::vector<std::uint8_t> v(16, 7);
        for (std::uint64_t key = 1; key <= 4; ++key)
            ASSERT_EQ(store.put(ctx, 0, key, v.data(), v.size()),
                      KvStatus::Ok);
        EXPECT_EQ(store.put(ctx, 0, 5, v.data(), v.size()),
                  KvStatus::HeapFull);
        // The store still serves what it has.
        std::vector<std::uint8_t> out;
        EXPECT_TRUE(store.get(ctx, 1, out));
        EXPECT_EQ(out, v);
        // Same-length in-place updates need no new heap.
        std::vector<std::uint8_t> v2(16, 9);
        EXPECT_EQ(store.put(ctx, 0, 1, v2.data(), v2.size()),
                  KvStatus::Ok);
    }});
}

TEST(KvStore, LogFullIsBackpressureNotFatal)
{
    ExecutionEngine engine(EngineConfig{}, nullptr);
    engine.run({[](ThreadCtx &ctx) {
        KvOptions options;
        options.buckets = 64;
        options.heap_bytes = 4096;
        options.strategy = KvUpdateStrategy::LogStructured;
        // One journal record of an 8-byte put is 8+8+32+8 = 56 bytes.
        options.log_capacity = 64;
        auto store = KvStore::create(ctx, options, 1);
        std::vector<std::uint8_t> v(8, 1);
        ASSERT_EQ(store.put(ctx, 0, 1, v.data(), v.size()),
                  KvStatus::Ok);
        EXPECT_EQ(store.put(ctx, 0, 2, v.data(), v.size()),
                  KvStatus::LogFull);
        EXPECT_EQ(store.erase(ctx, 0, 1), KvStatus::LogFull);
        // The rejected mutations left no trace.
        EXPECT_EQ(store.count(ctx), 1u);
        std::vector<std::uint8_t> out;
        EXPECT_TRUE(store.get(ctx, 1, out));
        EXPECT_EQ(out, v);
    }});
}

TEST(KvStore, OversizedValueRejected)
{
    ExecutionEngine engine(EngineConfig{}, nullptr);
    engine.run({[](ThreadCtx &ctx) {
        KvOptions options;
        options.buckets = 8;
        options.heap_bytes = 4096;
        options.max_value_bytes = 16;
        auto store = KvStore::create(ctx, options, 1);
        std::vector<std::uint8_t> v(17, 1);
        EXPECT_EQ(store.put(ctx, 0, 1, v.data(), v.size()),
                  KvStatus::ValueTooLarge);
        EXPECT_EQ(store.count(ctx), 0u);
    }});
}

TEST(KvStore, GoldenHistoryTracksVersions)
{
    ExecutionEngine engine(EngineConfig{}, nullptr);
    auto store = std::make_shared<KvStore>();
    engine.run({[&store](ThreadCtx &ctx) {
        KvOptions options;
        options.buckets = 16;
        options.heap_bytes = 4096;
        *store = KvStore::create(ctx, options, 1);
        const auto v1 = bytes({1});
        const auto v2 = bytes({2, 2});
        ASSERT_EQ(store->put(ctx, 0, 7, v1.data(), v1.size()),
                  KvStatus::Ok);
        ASSERT_EQ(store->put(ctx, 0, 7, v2.data(), v2.size()),
                  KvStatus::Ok);
        ASSERT_EQ(store->erase(ctx, 0, 7), KvStatus::Ok);
    }});
    const KvGoldenHistory history = store->goldenHistory();
    ASSERT_EQ(history.size(), 1u);
    const auto &versions = history.at(7);
    ASSERT_EQ(versions.size(), 3u);
    EXPECT_EQ(versions[0].value, bytes({1}));
    EXPECT_FALSE(versions[0].erased);
    EXPECT_EQ(versions[1].value, bytes({2, 2}));
    EXPECT_TRUE(versions[2].erased);
    EXPECT_LT(versions[0].seq, versions[1].seq);
    EXPECT_LT(versions[1].seq, versions[2].seq);
}

TEST(KvStore, JournalRecordRoundTrip)
{
    KvJournalRecord put;
    put.kind = KvJournalRecord::kind_put;
    put.key = 0x1122334455667788ULL;
    put.seq = 42;
    put.value = bytes({1, 2, 3});
    KvJournalRecord decoded;
    ASSERT_TRUE(KvJournalRecord::decode(put.encode(), decoded));
    EXPECT_EQ(decoded.kind, put.kind);
    EXPECT_EQ(decoded.key, put.key);
    EXPECT_EQ(decoded.seq, put.seq);
    EXPECT_EQ(decoded.value, put.value);

    KvJournalRecord erase;
    erase.kind = KvJournalRecord::kind_erase;
    erase.key = 9;
    erase.seq = 43;
    ASSERT_TRUE(KvJournalRecord::decode(erase.encode(), decoded));
    EXPECT_EQ(decoded.kind, KvJournalRecord::kind_erase);
    EXPECT_TRUE(decoded.value.empty());

    // Malformed payloads are rejected, not trusted.
    KvJournalRecord out;
    EXPECT_FALSE(KvJournalRecord::decode(bytes({1, 2, 3}), out));
    KvJournalRecord zero_key = put;
    zero_key.key = 0;
    EXPECT_FALSE(KvJournalRecord::decode(zero_key.encode(), out));
    KvJournalRecord bad_kind = put;
    bad_kind.kind = 77;
    EXPECT_FALSE(KvJournalRecord::decode(bad_kind.encode(), out));
    KvJournalRecord empty_put = put;
    empty_put.value.clear();
    EXPECT_FALSE(KvJournalRecord::decode(empty_put.encode(), out));
}

TEST(KvStore, NamesAreStable)
{
    EXPECT_STREQ(kvStatusName(KvStatus::HeapFull), "heap-full");
    EXPECT_STREQ(kvUpdateStrategyName(KvUpdateStrategy::Cow), "cow");
    KvUpdateStrategy strategy = KvUpdateStrategy::InPlace;
    EXPECT_TRUE(kvUpdateStrategyByName("log_structured", strategy));
    EXPECT_EQ(strategy, KvUpdateStrategy::LogStructured);
    EXPECT_FALSE(kvUpdateStrategyByName("bogus", strategy));
}

TEST(KvWorkload, DeterministicAndCountsAdd)
{
    KvWorkloadConfig config;
    config.store.buckets = 1 << 10;
    config.store.heap_bytes = 1 << 18;
    config.threads = 3;
    config.ops_per_thread = 400;
    config.key_space = 200;
    config.zipf_theta = 0.9;
    config.seed = 5;
    const KvWorkloadResult a = runKvWorkload(config);
    const KvWorkloadResult b = runKvWorkload(config);
    EXPECT_EQ(a.trace.events().size(), b.trace.events().size());
    EXPECT_EQ(a.puts, b.puts);
    EXPECT_EQ(a.hits, b.hits);
    EXPECT_EQ(a.live_entries, b.live_entries);
    EXPECT_EQ(a.puts + a.gets + a.erases,
              config.threads * config.ops_per_thread);
    EXPECT_GT(a.hits, 0u);
    EXPECT_GT(a.live_entries, 0u);
}

TEST(KvWorkload, BackpressureCountedNotFatal)
{
    KvWorkloadConfig config;
    config.store.buckets = 16; // Far too small: inserts bounce.
    config.store.heap_bytes = 1 << 12;
    config.threads = 2;
    config.ops_per_thread = 300;
    config.key_space = 500;
    config.put_ratio = 0.9;
    config.get_ratio = 0.1;
    const KvWorkloadResult result = runKvWorkload(config);
    EXPECT_GT(result.rejectedTotal(), 0u);
    EXPECT_GT(result.rejected[static_cast<std::size_t>(
                  KvStatus::TableFull)],
              0u);
}

TEST(KvWorkload, ZipfianSkewsAndUniformDoesNot)
{
    Rng rng(7);
    ZipfianSampler hot(1000, 0.99);
    ZipfianSampler uniform(1000, 0.0);
    std::uint64_t hot_top = 0, uniform_top = 0;
    const int draws = 20000;
    for (int i = 0; i < draws; ++i) {
        if (hot.sample(rng) <= 10)
            ++hot_top;
        if (uniform.sample(rng) <= 10)
            ++uniform_top;
    }
    // Under theta=0.99 the top-10 ranks soak up a large share; under
    // uniform they get ~1%.
    EXPECT_GT(hot_top, draws / 4);
    EXPECT_LT(uniform_top, draws / 20);
    // Ranks scramble to nonzero in-range keys.
    for (std::uint64_t rank = 1; rank <= 100; ++rank) {
        const std::uint64_t key = kvWorkloadKey(rank, 50);
        EXPECT_GE(key, 1u);
        EXPECT_LE(key, 50u);
    }
}

TEST(KvStore, ConcurrentWritersAcrossSeeds)
{
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        EngineConfig config;
        config.seed = seed;
        config.quantum = 3;
        ExecutionEngine engine(config, nullptr);
        auto store = std::make_shared<KvStore>();
        engine.runSetup([&store](ThreadCtx &ctx) {
            KvOptions options;
            options.buckets = 256;
            options.heap_bytes = 1 << 16;
            *store = KvStore::create(ctx, options, 4);
        });
        std::vector<ExecutionEngine::WorkerFn> workers;
        for (int t = 0; t < 4; ++t) {
            workers.push_back([store, t](ThreadCtx &ctx) {
                std::vector<std::uint8_t> v(8);
                for (std::uint64_t i = 1; i <= 20; ++i) {
                    const std::uint64_t key = t * 100 + i;
                    v[0] = static_cast<std::uint8_t>(key);
                    ASSERT_EQ(store->put(ctx, t, key, v.data(),
                                         v.size()),
                              KvStatus::Ok);
                    if (i % 5 == 0)
                        ASSERT_EQ(store->erase(ctx, t, key),
                                  KvStatus::Ok);
                }
                std::vector<std::uint8_t> out;
                EXPECT_TRUE(store->get(ctx, t * 100 + 1, out));
            });
        }
        engine.run(workers);
    }
}

} // namespace
} // namespace persim
