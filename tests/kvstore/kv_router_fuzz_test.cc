/**
 * @file
 * Seeded crash + corruption fuzzer for the cross-shard service layer
 * (transactions, snapshots, migrations).
 *
 * Each iteration runs a seed-varied router workload, builds a
 * stochastic persist timeline under a seed-chosen persistency model,
 * crashes it at a random point, and then flips seeded random bits
 * across the regions group recovery trusts least — the group journal
 * (commit + migration records), the transaction status table, and the
 * owner table — before handing the image to every tier of the
 * recovery ladder. What must hold on every (seed, image, tier):
 *
 *  - recoverKvRouter never throws and never aborts, no matter what
 *    the corruption did to the commit records;
 *  - exactly one owner: every partition resolves to a shard index
 *    < shards (checksum valid, journal fallback, or modulo default);
 *  - accounting coherence: the committed set and the per-transaction
 *    resolutions agree in both directions, the served map is exactly
 *    the owner-filtered union of the per-shard results (stale copies
 *    counted, never silently dropped), and the TxnResolve tier's
 *    served state is a subset of Repair's (scrubbing only removes);
 *  - the fully-drained, uncorrupted image recovers clean under
 *    TxnResolve: zero fault counters and every committed golden
 *    transaction resolved committed.
 *
 * Iteration count comes from PERSIM_FUZZ_ITERS (default 25). Any
 * failure prints a one-line repro: re-run this binary with
 * PERSIM_FUZZ_SEED=<seed> to replay exactly the failing workload,
 * crash point, and corruption.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util/kv_workload.hh"
#include "kvstore/router.hh"
#include "nvram/faults.hh"
#include "recovery/recovery.hh"

using namespace persim;

namespace {

std::uint64_t
envU64(const char *name, std::uint64_t fallback)
{
    const char *value = std::getenv(name);
    if (!value || !*value)
        return fallback;
    return std::strtoull(value, nullptr, 10);
}

/** Seed-varied but deliberately small: the fuzzer's value is in the
    number of (crash, corruption, tier) combinations, not in any one
    workload's size. */
KvRouterWorkloadConfig
configFor(std::uint64_t seed)
{
    KvRouterWorkloadConfig config;
    config.router.shards = 2 + static_cast<std::uint32_t>(seed % 2);
    config.router.partitions = 8;
    config.router.max_txns = 256;
    config.router.group_log_capacity = 1 << 16;
    config.router.store.buckets = 128;
    config.router.store.heap_bytes = 1 << 15;
    config.router.store.max_value_bytes = 64;
    config.router.store.log_capacity = 1 << 16;
    config.router.store.strategy = static_cast<KvUpdateStrategy>(
        seed % 3);
    config.threads = 2;
    config.ops_per_thread = 60 + seed % 40;
    config.key_space = 48;
    config.txn_ratio = 0.3;
    config.snapshot_ratio = 0.1;
    config.put_ratio = 0.3;
    config.get_ratio = 0.15;
    config.migrate_every = 12;
    config.max_value_bytes = 40;
    config.seed = seed;
    return config;
}

/** Flip 1-8 random bits in one of the trust-critical regions. */
void
corrupt(MemoryImage &image, const KvRouterLayout &layout, Rng &rng)
{
    Addr base = 0;
    std::uint64_t bytes = 0;
    switch (rng.nextBounded(4)) {
    case 0: // Commit + migration records.
        base = layout.group_journal.base;
        bytes = layout.group_journal.capacity;
        break;
    case 1:
        base = layout.txn_status;
        bytes = layout.max_txns * 8;
        break;
    case 2:
        base = layout.owner_table;
        bytes = layout.partitions * 16;
        break;
    default: { // A shard journal: staged-record evidence.
        const std::size_t s =
            rng.nextBounded(layout.shard_journals.size());
        base = layout.shard_journals[s].base;
        bytes = layout.shard_journals[s].capacity;
        break;
    }
    }
    const std::uint64_t flips = 1 + rng.nextBounded(8);
    for (std::uint64_t i = 0; i < flips; ++i) {
        const Addr addr = base + rng.nextBounded(bytes);
        const std::uint64_t byte = image.load(addr, 1);
        image.store(addr, 1, byte ^ (1ULL << rng.nextBounded(8)));
    }
}

const KvRecoveryMode kTiers[] = {
    KvRecoveryMode::Strict,
    KvRecoveryMode::DetectAndDiscard,
    KvRecoveryMode::Repair,
    KvRecoveryMode::TxnResolve,
};

/** The tier-independent coherence contract of one recovery result. */
void
checkCoherence(const KvGroupRecovery &rec, const KvRouterLayout &layout,
               KvRecoveryMode mode)
{
    EXPECT_EQ(rec.mode, mode);
    ASSERT_EQ(rec.shards.size(), layout.shards);

    // Exactly one owner, always in range — even when the checksummed
    // entry, the journal fallback, and the status table all lied.
    ASSERT_EQ(rec.owners.size(), layout.partitions);
    for (std::uint32_t owner : rec.owners)
        EXPECT_LT(owner, layout.shards);

    // committed <-> resolutions agree in both directions.
    for (std::uint64_t t : rec.committed) {
        auto it = rec.txns.find(t);
        ASSERT_NE(it, rec.txns.end()) << "committed txn " << t
                                      << " has no resolution";
        EXPECT_TRUE(it->second.committed);
    }
    for (const auto &[t, res] : rec.txns)
        if (res.committed)
            EXPECT_EQ(rec.committed.count(t), 1u) << "txn " << t;

    // Served map == owner-filtered union, with every filtered entry
    // counted as a stale copy (dropped loudly, never silently).
    std::uint64_t shard_entries = 0;
    for (const KvRecovery &shard : rec.shards)
        shard_entries += shard.entries.size();
    EXPECT_EQ(rec.entries.size() + rec.stale_copies, shard_entries);
    for (const auto &[key, entry] : rec.entries) {
        const std::uint64_t p =
            KvRouterLayout::partitionOf(key, layout.partitions);
        const KvRecovery &owner = rec.shards[rec.owners[p]];
        auto it = owner.entries.find(key);
        ASSERT_NE(it, owner.entries.end()) << "key " << key;
        EXPECT_EQ(it->second.seq, entry.seq);
        EXPECT_EQ(it->second.value, entry.value);
    }

    // Non-strict tiers degrade, never fail; Strict fails loudly.
    if (mode != KvRecoveryMode::Strict)
        EXPECT_TRUE(rec.ok);
    else if (!rec.ok)
        EXPECT_FALSE(rec.error.empty());
}

struct FuzzStats
{
    std::uint64_t workloads = 0;
    std::uint64_t images = 0;
    std::uint64_t recoveries = 0;
    std::uint64_t committed = 0;
    std::uint64_t migrations = 0;
    std::uint64_t faulted_recoveries = 0;
};

void
checkSeed(std::uint64_t seed, FuzzStats &stats)
{
    SCOPED_TRACE("repro: PERSIM_FUZZ_SEED=" + std::to_string(seed) +
                 " ./tests/kv_router_fuzz_test");
    const KvRouterWorkloadConfig config = configFor(seed);
    const KvRouterWorkloadResult run = runKvRouterWorkload(config);
    ++stats.workloads;
    stats.committed += run.txns_committed;
    stats.migrations += run.migrations;

    const ModelConfig models[] = {
        ModelConfig::strict(), ModelConfig::epoch(),
        ModelConfig::strand(), ModelConfig::px86()};
    const PersistLog log =
        stochasticLog(run.trace, models[seed % 4], seed);
    double t_max = 0;
    for (const PersistRecord &record : log)
        t_max = std::max(t_max, record.time);

    Rng rng(mixSeed(seed, 0xf02));
    KvGroupRecoveryOptions options;

    // Image 0: clean, fully drained — must recover exactly.
    {
        const MemoryImage image = reconstructImage(log, 1e30);
        options.mode = KvRecoveryMode::TxnResolve;
        const KvGroupRecovery rec =
            recoverKvRouter(image, run.layout, options);
        checkCoherence(rec, run.layout, options.mode);
        EXPECT_FALSE(rec.anyTxnFaults())
            << rec.in_doubt << " in doubt, " << rec.txn_lost
            << " lost, " << rec.txn_partial << " partial, "
            << rec.owner_faults << " owner, " << rec.status_faults
            << " status";
        for (const KvTxnGolden &txn : *run.txn_golden)
            EXPECT_EQ(rec.committed.count(txn.txn), 1u)
                << "committed txn " << txn.txn << " lost on a clean "
                << "fully-drained image";
        ++stats.images;
        ++stats.recoveries;
    }

    // Crashed + corrupted images, all four tiers each.
    const unsigned kCrashes = 3;
    for (unsigned c = 0; c < kCrashes; ++c) {
        MemoryImage image =
            reconstructImage(log, rng.nextDouble() * t_max);
        corrupt(image, run.layout, rng);
        ++stats.images;

        KvGroupRecovery repair_rec;
        for (KvRecoveryMode mode : kTiers) {
            options.mode = mode;
            // The contract under fire: pure function of the image,
            // never throws, whatever the bit flips fabricated.
            const KvGroupRecovery rec =
                recoverKvRouter(image, run.layout, options);
            ++stats.recoveries;
            checkCoherence(rec, run.layout, mode);
            if (rec.anyTxnFaults())
                ++stats.faulted_recoveries;
            if (mode == KvRecoveryMode::Repair)
                repair_rec = rec;
            if (mode == KvRecoveryMode::TxnResolve) {
                // Scrubbing only removes: TxnResolve's served state
                // must be a (seq, value)-exact subset of Repair's.
                for (const auto &[key, entry] : rec.entries) {
                    auto it = repair_rec.entries.find(key);
                    ASSERT_NE(it, repair_rec.entries.end())
                        << "key " << key;
                    EXPECT_EQ(it->second.seq, entry.seq);
                    EXPECT_EQ(it->second.value, entry.value);
                }
            }
        }
    }
}

} // namespace

TEST(KvRouterFuzz, CrashCorruptRecover)
{
    FuzzStats stats;
    if (const char *pinned = std::getenv("PERSIM_FUZZ_SEED");
        pinned && *pinned) {
        checkSeed(std::strtoull(pinned, nullptr, 10), stats);
    } else {
        const std::uint64_t iters = envU64("PERSIM_FUZZ_ITERS", 25);
        for (std::uint64_t i = 0; i < iters; ++i)
            checkSeed(i + 1, stats);
    }
    // The corpus must exercise what it claims to: transactions
    // committed, partitions migrated, and corruption that the ladder
    // actually detected (faulted recoveries are the fuzzer's teeth —
    // if every image recovered clean, the bit flips hit nothing).
    EXPECT_GT(stats.committed, 0u);
    EXPECT_GT(stats.migrations, 0u);
    EXPECT_GT(stats.faulted_recoveries, 0u);
    std::cout << "fuzz(kv-router): " << stats.workloads
              << " workloads, " << stats.committed
              << " committed txns, " << stats.migrations
              << " migrations, " << stats.images << " images, "
              << stats.recoveries << " recoveries ("
              << stats.faulted_recoveries << " with detected faults)\n";
}
