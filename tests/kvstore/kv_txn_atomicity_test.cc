/**
 * @file
 * Differential transaction-atomicity battery: exhaustively enumerate
 * every model-consistent crash cut of a small cross-shard transaction
 * trace (checkObservedCuts over all persistent regions) and demand,
 * per update strategy x persistency model (strict / epoch / strand /
 * px86), that Repair-tier group recovery is all-or-nothing. The
 * hardened commit protocol admits no violating cut under any model;
 * the no-commit-barrier mutant's applications race its commit record,
 * so relaxed models (epoch, strand) expose partially-visible
 * uncommitted transactions — while strict, which serializes every
 * persist in program order, still hides the bug. That asymmetry is
 * the paper's point, and the reason the differential battery runs
 * every model rather than the strongest one.
 */

#include <gtest/gtest.h>

#include "kvstore/router.hh"
#include "persistency/timing_engine.hh"
#include "recovery/cuts.hh"

namespace persim {
namespace {

/** A deliberately tiny group: cut enumeration is exponential in the
    antichain width, so every byte of workload counts. */
KvRouterOptions
tinyRouter(KvUpdateStrategy strategy)
{
    KvRouterOptions options;
    options.shards = 2;
    options.partitions = 2;
    options.max_txns = 8;
    options.group_log_capacity = 1 << 12;
    options.store.buckets = 16;
    options.store.heap_bytes = 1 << 10;
    options.store.max_value_bytes = 64;
    options.store.log_capacity = 1 << 12;
    options.store.strategy = strategy;
    // One strand per thread: with per-append strands the strand
    // model's cut lattice is too wide to enumerate exhaustively (the
    // sampled fault campaigns cover that configuration). Persists
    // within the single strand are still only ordered by persist
    // barriers, so the mutant's missing barriers stay observable.
    options.store.use_strands = false;
    return options;
}

struct TxnTrace
{
    InMemoryTrace trace;
    KvRouterLayout layout;
    std::shared_ptr<const KvGoldenHistory> golden;
    std::shared_ptr<const KvTxnGoldenList> txn_golden;
};

/** Two keys on different shards, then one cross-shard transaction
    (update + insert + erase). Single-threaded and fully seeded: the
    cut lattice, not the schedule, is the variable under test. */
TxnTrace
txnTrace(KvUpdateStrategy strategy, bool mutant)
{
    TxnTrace result;
    EngineConfig engine_config;
    ExecutionEngine engine(engine_config, &result.trace);
    auto router = std::make_shared<KvRouter>();
    KvRouterOptions options = tinyRouter(strategy);
    // The mutant drops the commit barriers AND the per-entry publish
    // barriers. Both matter: each apply's internal publish barrier
    // would otherwise retroactively order the commit record (earlier
    // epochs persist first), hiding the missing commit barrier from
    // every model-consistent cut.
    options.omit_commit_barrier = mutant;
    options.store.omit_publish_barrier = mutant;
    engine.runSetup([&](ThreadCtx &ctx) {
        *router = KvRouter::create(ctx, options, 1);
    });
    engine.run({[&](ThreadCtx &ctx) {
        // Partitions hash keys 1 and 2 apart (partitionOf is a mixed
        // hash; assert instead of assuming).
        const std::uint8_t seed_val[3] = {7, 7, 7};
        ASSERT_EQ(router->put(ctx, 0, 1, seed_val, sizeof(seed_val)),
                  KvStatus::Ok);
        ASSERT_EQ(router->put(ctx, 0, 2, seed_val, sizeof(seed_val)),
                  KvStatus::Ok);
        KvTxn txn;
        const std::uint8_t a[3] = {1, 2, 3};
        const std::uint8_t b[4] = {4, 5, 6, 7};
        txn.put(1, a, sizeof(a));
        txn.put(3, b, sizeof(b));
        txn.erase(2);
        ASSERT_EQ(router->commit(ctx, 0, txn),
                  KvTxnStatus::Committed);
    }});
    result.layout = router->layout();
    result.golden = router->goldenHistory();
    result.txn_golden = router->txnGolden();
    return result;
}

/** Every persistent region group recovery reads. */
std::vector<AddrRange>
observedRegions(const KvRouterLayout &layout)
{
    std::vector<AddrRange> observed;
    for (const KvLayout &shard : layout.shard_layouts) {
        observed.push_back({shard.table, shard.buckets * 64});
        observed.push_back({shard.heap, shard.heap_bytes});
    }
    for (const LogLayout &journal : layout.shard_journals)
        observed.push_back({journal.base, journal.capacity});
    observed.push_back(
        {layout.group_journal.base, layout.group_journal.capacity});
    observed.push_back({layout.txn_status, layout.max_txns * 8});
    observed.push_back({layout.owner_table, layout.partitions * 16});
    return observed;
}

CutCheckResult
checkAtomicity(const TxnTrace &trace, const ModelConfig &model,
               std::uint64_t max_cuts)
{
    TimingConfig config;
    config.model = model;
    config.record_deps = true;
    PersistTimingEngine engine(config);
    trace.trace.replay(engine);
    const PersistLog log = engine.takeLog();
    const PersistDag dag = buildPersistDag(log);

    KvGroupRecoveryOptions options;
    options.mode = KvRecoveryMode::Repair; // No scrub: partial
                                           // uncommitted state stays
                                           // visible if it can exist.
    const auto invariant = makeKvRouterInvariant(
        trace.layout, trace.golden, trace.txn_golden, options);
    return checkObservedCuts(log, dag, invariant,
                             observedRegions(trace.layout), max_cuts);
}

struct ModelCase
{
    const char *name;
    ModelConfig config;
};

const ModelCase kModels[] = {
    {"strict", ModelConfig::strict()},
    {"epoch", ModelConfig::epoch()},
    {"strand", ModelConfig::strand()},
    {"px86", ModelConfig::px86()},
};

class KvTxnAtomicity
    : public ::testing::TestWithParam<KvUpdateStrategy>
{
};

TEST_P(KvTxnAtomicity, HardenedCommitIsAtomicUnderEveryModel)
{
    const TxnTrace trace = txnTrace(GetParam(), /*mutant=*/false);
    for (const ModelCase &model : kModels) {
        // Exhaustive: the group journal's strand-idiom append leaves
        // the commit record's words concurrent with the main strand's
        // tail, so the strand lattice overflows the 1M default budget;
        // 1<<24 covers every cut of this trace.
        const CutCheckResult result =
            checkAtomicity(trace, model.config, 1ULL << 24);
        EXPECT_EQ(result.violations, 0u)
            << model.name << ": " << result.first_violation;
        EXPECT_FALSE(result.budget_exhausted) << model.name;
        EXPECT_GT(result.cuts, 1u) << model.name;
    }
}

TEST_P(KvTxnAtomicity, MutantIsExposedByRelaxedModelsOnly)
{
    // The same trace minus the commit and publish barriers. The
    // staged records still precede the applies (the journal appends
    // carry their own ordering), so per-key recovery stays plausible
    // — the *transaction* is what tears: some cut applies one op
    // without the commit record. Epoch and strand must expose it;
    // strict orders every persist and must not; px86's verdict is
    // recorded as part of the differential surface rather than
    // asserted, since its store-order persists sit between the two
    // regimes.
    const TxnTrace trace = txnTrace(GetParam(), /*mutant=*/true);

    // The mutant legs only need to *find* a violation (or prove
    // strict admits none — its lattice is tiny), so the default 1M
    // budget suffices and keeps the suite fast.
    const CutCheckResult strict_result =
        checkAtomicity(trace, ModelConfig::strict(), 1ULL << 20);
    EXPECT_EQ(strict_result.violations, 0u)
        << "strict: " << strict_result.first_violation;

    const CutCheckResult epoch_result =
        checkAtomicity(trace, ModelConfig::epoch(), 1ULL << 20);
    EXPECT_GT(epoch_result.violations, 0u)
        << "epoch should expose the missing commit barrier";

    const CutCheckResult strand_result =
        checkAtomicity(trace, ModelConfig::strand(), 1ULL << 20);
    EXPECT_GT(strand_result.violations, 0u)
        << "strand should expose the missing commit barrier";

    const CutCheckResult px86_result =
        checkAtomicity(trace, ModelConfig::px86(), 1ULL << 20);
    RecordProperty("px86_mutant_violations",
                   static_cast<int>(px86_result.violations));

    // Never silent in the strongest sense: the violation text names a
    // partially visible uncommitted transaction, not a corrupt value.
    EXPECT_NE(epoch_result.first_violation.find("uncommitted"),
              std::string::npos)
        << epoch_result.first_violation;
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, KvTxnAtomicity,
    ::testing::Values(KvUpdateStrategy::InPlace, KvUpdateStrategy::Cow,
                      KvUpdateStrategy::LogStructured),
    [](const ::testing::TestParamInfo<KvUpdateStrategy> &info) {
        return std::string(kvUpdateStrategyName(info.param));
    });

} // namespace
} // namespace persim
