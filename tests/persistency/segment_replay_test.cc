/**
 * @file
 * Bit-identity tests for intra-trace segment-parallel replay.
 *
 * segmentReplay's contract is exact equivalence with serial replay —
 * not "close", bit-identical — for every model and engine
 * configuration. These tests enforce it two ways:
 *
 *  - the 1M-event synthetic bench trace (shrinkable via
 *    PERSIM_SYNTH_EVENTS for sanitizer runs) under strict, epoch, and
 *    strand at jobs in {1, 2, 7, 16} (the odd count exercises
 *    remainder segments), comparing the full observation including an
 *    order-sensitive hash of the persist log;
 *  - the four committed golden fixtures, loaded zero-copy through
 *    MmapTraceReader, under the complete frozen golden configuration
 *    matrix (bpfs scope filtering, non-unified granularities, finite
 *    coalesce windows, record_deps, race detection, stochastic clock)
 *    with deliberately tiny segments so every segment boundary shape
 *    gets hit.
 *
 * Plus edge cases: one-event segments, empty traces, shared/nested
 * TaskPool use, and prep/stitch stats sanity.
 */

#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench_util/synthetic_trace.hh"
#include "common/task_pool.hh"
#include "memtrace/trace_io.hh"
#include "persistency/segment_replay.hh"
#include "tests/persistency/golden_support.hh"

namespace persim::test {
namespace {

std::string
goldenDir()
{
    const char *dir = std::getenv("PERSIM_GOLDEN_DIR");
    return dir != nullptr ? dir : "tests/persistency/golden";
}

std::uint64_t
syntheticEvents()
{
    // Sanitizer stages (check.sh TSan) shrink the trace; identity
    // must hold at any size.
    const char *env = std::getenv("PERSIM_SYNTH_EVENTS");
    if (env != nullptr && *env != '\0')
        return std::strtoull(env, nullptr, 10);
    return 1'000'000;
}

/** observeReplay's twin for the segment-parallel path. */
GoldenObservation
observeSegmentReplay(const TraceEvent *events, std::size_t count,
                     const TimingConfig &config,
                     const SegmentReplayOptions &options,
                     SegmentReplayStats *stats = nullptr)
{
    PersistLog log;
    TimingConfig with_log = config;
    with_log.record_log = true;
    const TimingResult result =
        segmentReplay(events, count, with_log, options, &log, stats);
    GoldenObservation seen;
    seen.critical_path = result.critical_path;
    seen.persists = result.persists;
    seen.coalesced = result.coalesced;
    seen.window_blocked = result.window_blocked;
    seen.races = result.races;
    seen.barriers = result.barriers;
    seen.strands = result.strands;
    seen.ops = result.ops;
    seen.events = result.events;
    seen.log_hash = hashPersistLog(log);
    return seen;
}

void
expectSame(const GoldenObservation &serial,
           const GoldenObservation &parallel)
{
    // Exact double equality is intentional: the stitch runs the same
    // arithmetic in the same order as serial replay.
    EXPECT_EQ(serial.critical_path, parallel.critical_path);
    EXPECT_EQ(serial.persists, parallel.persists);
    EXPECT_EQ(serial.coalesced, parallel.coalesced);
    EXPECT_EQ(serial.window_blocked, parallel.window_blocked);
    EXPECT_EQ(serial.races, parallel.races);
    EXPECT_EQ(serial.barriers, parallel.barriers);
    EXPECT_EQ(serial.strands, parallel.strands);
    EXPECT_EQ(serial.ops, parallel.ops);
    EXPECT_EQ(serial.events, parallel.events);
    EXPECT_EQ(serial.log_hash, parallel.log_hash);
}

TEST(SegmentReplay, SyntheticTraceMatchesSerialAcrossModels)
{
    SyntheticTraceConfig trace_config;
    trace_config.events = syntheticEvents();
    const InMemoryTrace trace = buildSyntheticTrace(trace_config);

    const struct
    {
        const char *name;
        ModelConfig model;
    } models[] = {
        {"strict", ModelConfig::strict()},
        {"epoch", ModelConfig::epoch()},
        {"strand", ModelConfig::strand()},
    };
    for (const auto &entry : models) {
        TimingConfig config;
        config.model = entry.model;
        config.record_log = true;
        const GoldenObservation serial = observeReplay(trace, config);
        for (const std::uint32_t jobs : {1u, 2u, 7u, 16u}) {
            SCOPED_TRACE(std::string(entry.name) + "/j" +
                         std::to_string(jobs));
            SegmentReplayOptions options;
            options.jobs = jobs;
            const GoldenObservation parallel = observeSegmentReplay(
                trace.events().data(), trace.events().size(), config,
                options);
            expectSame(serial, parallel);
        }
    }
}

TEST(SegmentReplay, GoldenFixturesMatchSerialUnderEveryConfig)
{
    const auto configs = goldenConfigs();
    for (const std::string &fixture : goldenFixtureNames()) {
        // Zero-copy load: the parallel path consumes the mapping
        // directly, which also cross-checks MmapTraceReader against
        // the streaming reader (the serial baseline).
        const MmapTraceReader mapped(goldenDir() + "/" + fixture +
                                     ".trc");
        const InMemoryTrace trace =
            readTraceFile(goldenDir() + "/" + fixture + ".trc");
        ASSERT_EQ(mapped.eventCount(), trace.size());

        const auto span = mapped.events();
        for (const GoldenConfig &config : configs) {
            const GoldenObservation serial =
                observeReplay(trace, config.timing);
            for (const std::uint32_t jobs : {1u, 2u, 7u, 16u}) {
                SCOPED_TRACE(fixture + "/" + config.name + "/j" +
                             std::to_string(jobs));
                SegmentReplayOptions options;
                options.jobs = jobs;
                // Tiny prime-sized segments: many boundaries, uneven
                // remainder, segments smaller than the event mix's
                // natural structure.
                options.segment_events = 509;
                const GoldenObservation parallel = observeSegmentReplay(
                    span.data(), span.size(), config.timing, options);
                expectSame(serial, parallel);
            }
        }
    }
}

// The dependence-set differential: hash equality (above) already
// covers deps for the one frozen deps config, but a hash cannot say
// WHICH record diverged, and record_deps interacts with the deferred
// log staging (defer_log_) on every model. Force record_deps on under
// each base model and diff the logs record-by-record — ids, seqs,
// and the exact dependence sets — across jobs values.
TEST(SegmentReplay, RecordDepsIdenticalUnderSerialAndJobsReplay)
{
    const struct
    {
        const char *name;
        ModelConfig model;
    } models[] = {
        {"strict", ModelConfig::strict()},
        {"epoch", ModelConfig::epoch()},
        {"strand", ModelConfig::strand()},
        {"bpfs", ModelConfig::bpfs()},
        {"px86", ModelConfig::px86()},
    };
    for (const std::string &fixture : goldenFixtureNames()) {
        const InMemoryTrace trace =
            readTraceFile(goldenDir() + "/" + fixture + ".trc");
        for (const auto &entry : models) {
            TimingConfig config;
            config.model = entry.model;
            config.record_log = true;
            config.record_deps = true;

            PersistTimingEngine engine(config);
            trace.replay(engine);
            const PersistLog serial = engine.takeLog();

            for (const std::uint32_t jobs : {2u, 7u}) {
                SCOPED_TRACE(fixture + "/" + entry.name + "/j" +
                             std::to_string(jobs));
                SegmentReplayOptions options;
                options.jobs = jobs;
                options.segment_events = 311;
                PersistLog parallel;
                segmentReplay(trace, config, options, &parallel);

                ASSERT_EQ(parallel.size(), serial.size());
                for (std::size_t i = 0; i < serial.size(); ++i) {
                    const PersistRecord &a = serial[i];
                    const PersistRecord &b = parallel[i];
                    ASSERT_EQ(a.id, b.id) << "record " << i;
                    ASSERT_EQ(a.seq, b.seq) << "record " << i;
                    ASSERT_EQ(a.addr, b.addr) << "record " << i;
                    ASSERT_EQ(a.time, b.time) << "record " << i;
                    ASSERT_EQ(a.deps, b.deps)
                        << "dependence set of record " << i
                        << " (id " << a.id << ") diverged";
                }
            }
        }
    }
}

TEST(SegmentReplay, OneEventSegmentsAreExact)
{
    const InMemoryTrace trace =
        readTraceFile(goldenDir() + "/mixed.trc");
    for (const char *name : {"strict", "epoch", "strand"}) {
        TimingConfig config;
        config.model = std::string(name) == "strict"
            ? ModelConfig::strict()
            : (std::string(name) == "epoch" ? ModelConfig::epoch()
                                            : ModelConfig::strand());
        config.record_log = true;
        const GoldenObservation serial = observeReplay(trace, config);
        SegmentReplayOptions options;
        options.jobs = 2;
        options.segment_events = 1; // One segment per event.
        SCOPED_TRACE(name);
        const GoldenObservation parallel = observeSegmentReplay(
            trace.events().data(), trace.events().size(), config,
            options);
        expectSame(serial, parallel);
    }
}

TEST(SegmentReplay, EmptyTraceIsWellDefined)
{
    TimingConfig config;
    config.model = ModelConfig::epoch();
    SegmentReplayStats stats;
    const TimingResult result =
        segmentReplay(nullptr, 0, config, {}, nullptr, &stats);
    EXPECT_EQ(result.events, 0u);
    EXPECT_EQ(result.persists, 0u);
    EXPECT_EQ(result.critical_path, 0.0);
    EXPECT_EQ(stats.segments, 0u);
}

TEST(SegmentReplay, StatsReportSegmentsAndMicroOps)
{
    const InMemoryTrace trace =
        readTraceFile(goldenDir() + "/mixed.trc");
    TimingConfig config;
    config.model = ModelConfig::epoch();
    SegmentReplayOptions options;
    options.jobs = 2;
    options.segment_events = 500;
    SegmentReplayStats stats;
    const TimingResult result = segmentReplay(
        trace.events().data(), trace.events().size(), config, options,
        nullptr, &stats);
    EXPECT_EQ(result.events, trace.size());
    EXPECT_EQ(stats.segments, (trace.size() + 499) / 500);
    EXPECT_GE(stats.micro_ops, result.persists);
    EXPECT_GE(stats.prep_seconds, 0.0);
    EXPECT_GE(stats.stitch_seconds, 0.0);
}

TEST(SegmentReplay, SharedPoolAndNestedParallelForWork)
{
    // The fig benches replay several series inside one parallelFor
    // and each series fans its segment prep out on the SAME pool;
    // this is the nest-safety contract in miniature.
    const InMemoryTrace trace =
        readTraceFile(goldenDir() + "/tlc2.trc");
    TimingConfig config;
    config.model = ModelConfig::epoch();
    config.record_log = true;
    const GoldenObservation serial = observeReplay(trace, config);

    TaskPool pool(3);
    std::vector<GoldenObservation> seen(4);
    pool.parallelFor(seen.size(), [&](std::size_t i) {
        SegmentReplayOptions options;
        options.jobs = 3;
        options.segment_events = 777;
        options.pool = &pool;
        seen[i] = observeSegmentReplay(trace.events().data(),
                                       trace.events().size(), config,
                                       options);
    });
    for (std::size_t i = 0; i < seen.size(); ++i) {
        SCOPED_TRACE(i);
        expectSame(serial, seen[i]);
    }
}

} // namespace
} // namespace persim::test
