/**
 * @file
 * Timing engine unit tests: result bookkeeping, operation and role
 * attribution, persist-log record contents, access splitting, the
 * finite coalescing window, and configuration validation.
 */

#include <algorithm>

#include <gtest/gtest.h>

#include "persistency/timing_engine.hh"
#include "tests/support/trace_builder.hh"

namespace persim {
namespace {

using test::paddr;
using test::TraceBuilder;
using test::vaddr;

TEST(TimingEngine, CountsEventsBarriersStrandsOps)
{
    TraceBuilder builder;
    builder.opBegin(0, 1)
           .store(0, paddr(0))
           .barrier(0)
           .strand(0)
           .sync(0)
           .opEnd(0, 1)
           .load(0, vaddr(0));
    const auto result = builder.analyze(ModelConfig::epoch());
    EXPECT_EQ(result.events, 7u);
    EXPECT_EQ(result.barriers, 2u); // Barrier + sync.
    EXPECT_EQ(result.strands, 1u);
    EXPECT_EQ(result.ops, 1u);
    EXPECT_EQ(result.persists, 1u);
}

TEST(TimingEngine, CriticalPathPerOpFallsBackWithoutOps)
{
    TraceBuilder builder;
    builder.store(0, paddr(0)).barrier(0).store(0, paddr(1));
    const auto result = builder.analyze(ModelConfig::epoch());
    EXPECT_EQ(result.ops, 0u);
    EXPECT_EQ(result.criticalPathPerOp(), result.critical_path);
}

TEST(TimingEngine, LogRecordsAddressSizeValueThread)
{
    TraceBuilder builder;
    builder.store(2, paddr(3), 0xabcdef, 8);
    const auto log = builder.analyzeLog(ModelConfig::epoch());
    ASSERT_EQ(log.size(), 1u);
    EXPECT_EQ(log[0].addr, paddr(3));
    EXPECT_EQ(log[0].size, 8u);
    EXPECT_EQ(log[0].value, 0xabcdefu);
    EXPECT_EQ(log[0].thread, 2u);
    EXPECT_EQ(log[0].time, 1.0);
    EXPECT_EQ(log[0].id, 0u);
    EXPECT_EQ(log[0].binding, invalid_persist);
}

TEST(TimingEngine, LogAttributesOpAndRole)
{
    TraceBuilder builder;
    builder.opBegin(0, 42)
           .role(0, MarkerCode::RoleData)
           .store(0, paddr(0))
           .role(0, MarkerCode::RoleHead)
           .store(0, paddr(1))
           .opEnd(0, 42)
           .store(0, paddr(2));
    const auto log = builder.analyzeLog(ModelConfig::epoch());
    ASSERT_EQ(log.size(), 3u);
    EXPECT_EQ(log[0].op, 42u);
    EXPECT_EQ(log[0].role, PersistRole::Data);
    EXPECT_EQ(log[1].op, 42u);
    EXPECT_EQ(log[1].role, PersistRole::Head);
    EXPECT_EQ(log[2].op, no_operation);
    EXPECT_EQ(log[2].role, PersistRole::None);
}

TEST(TimingEngine, UnalignedMultiPieceValuesSplitCorrectly)
{
    // A store of 0x8877665544332211 at offset 6 splits into a 2-byte
    // piece (0x2211) and a 6-byte piece (0x887766554433).
    TraceBuilder builder;
    builder.store(0, paddr(0) + 6, 0x8877665544332211ULL, 8);
    const auto log = builder.analyzeLog(ModelConfig::epoch());
    ASSERT_EQ(log.size(), 2u);
    EXPECT_EQ(log[0].addr, paddr(0) + 6);
    EXPECT_EQ(log[0].size, 2u);
    EXPECT_EQ(log[0].value, 0x2211u);
    EXPECT_EQ(log[1].addr, paddr(1));
    EXPECT_EQ(log[1].size, 6u);
    EXPECT_EQ(log[1].value, 0x887766554433ULL);
}

TEST(TimingEngine, BindingSourcesAreLabeled)
{
    TraceBuilder builder;
    builder.store(0, paddr(0))     // none
           .barrier(0)
           .store(0, paddr(1))     // thread_epoch
           .store(1, paddr(1))     // coalesced? dep 0 < 2 -> coalesce
           .store(1, paddr(0), 7); // spa or coalesce with p0.
    const auto log = builder.analyzeLog(ModelConfig::epoch());
    ASSERT_EQ(log.size(), 4u);
    EXPECT_EQ(log[0].binding_source, DepSource::None);
    EXPECT_EQ(log[1].binding_source, DepSource::ThreadEpoch);
    EXPECT_EQ(log[2].binding_source, DepSource::Coalesced);
    EXPECT_EQ(log[3].binding_source, DepSource::Coalesced);
}

TEST(TimingEngine, ConflictBindingLabels)
{
    TraceBuilder builder;
    builder.store(0, paddr(0))      // Level 1.
           .barrier(0)
           .store(0, vaddr(0), 1)   // Tagged with A.
           .store(1, vaddr(0), 2)   // T1 inherits via store conflict.
           .barrier(1)
           .store(1, paddr(1));     // Bound by the conflict.
    const auto log = builder.analyzeLog(ModelConfig::epoch());
    ASSERT_EQ(log.size(), 2u);
    // The binding arrived through T1's epoch_dep (folded at barrier).
    EXPECT_EQ(log[1].binding, 0u);
    EXPECT_EQ(log[1].binding_source, DepSource::ThreadEpoch);
    EXPECT_EQ(log[1].time, 2.0);
}

TEST(TimingEngine, CoalesceWindowLimitsAbsorption)
{
    // 100 persists to the same word, no constraints: unbounded
    // coalescing folds them into one level; a window of 10 forces a
    // new persist every 10 issues.
    auto build = [] {
        TraceBuilder builder;
        for (int i = 0; i < 100; ++i)
            builder.store(0, paddr(0), i);
        return builder;
    };
    {
        TimingConfig config;
        config.model = ModelConfig::epoch();
        PersistTimingEngine engine(config);
        auto builder = build();
        builder.trace().replay(engine);
        EXPECT_EQ(engine.result().critical_path, 1.0);
        EXPECT_EQ(engine.result().window_blocked, 0u);
    }
    {
        TimingConfig config;
        config.model = ModelConfig::epoch();
        config.coalesce_window = 10;
        PersistTimingEngine engine(config);
        auto builder = build();
        builder.trace().replay(engine);
        EXPECT_GT(engine.result().critical_path, 5.0);
        EXPECT_GT(engine.result().window_blocked, 5u);
    }
}

TEST(TimingEngine, StochasticTimesAreStrictlyOrderedOnChains)
{
    TraceBuilder builder;
    for (int i = 0; i < 10; ++i)
        builder.store(0, paddr(i)).barrier(0);
    TimingConfig config;
    config.model = ModelConfig::epoch();
    config.clock = ClockMode::Stochastic;
    config.seed = 3;
    config.record_log = true;
    PersistTimingEngine engine(config);
    builder.trace().replay(engine);
    const auto &log = engine.log();
    ASSERT_EQ(log.size(), 10u);
    for (std::size_t i = 1; i < log.size(); ++i)
        EXPECT_GT(log[i].time, log[i - 1].time);
}

TEST(TimingEngine, StochasticSeedChangesRealization)
{
    TraceBuilder builder;
    for (int i = 0; i < 5; ++i)
        builder.store(0, paddr(i)).barrier(0);
    auto run = [&builder](std::uint64_t seed) {
        TimingConfig config;
        config.model = ModelConfig::epoch();
        config.clock = ClockMode::Stochastic;
        config.seed = seed;
        PersistTimingEngine engine(config);
        builder.trace().replay(engine);
        return engine.result().critical_path;
    };
    EXPECT_EQ(run(1), run(1));
    EXPECT_NE(run(1), run(2));
}

TEST(TimingEngine, RejectsInvalidConfig)
{
    TimingConfig config;
    config.model.atomic_granularity = 3;
    EXPECT_THROW(PersistTimingEngine{config}, FatalError);
    config.model.atomic_granularity = 8;
    config.mean_latency = 0.0;
    EXPECT_THROW(PersistTimingEngine{config}, FatalError);
}

TEST(TimingEngine, TakeLogMovesOwnership)
{
    TraceBuilder builder;
    builder.store(0, paddr(0));
    TimingConfig config;
    config.model = ModelConfig::epoch();
    config.record_log = true;
    PersistTimingEngine engine(config);
    builder.trace().replay(engine);
    auto log = engine.takeLog();
    EXPECT_EQ(log.size(), 1u);
    EXPECT_TRUE(engine.log().empty());
}

TEST(TimingEngine, DepSourceNamesAreStable)
{
    EXPECT_STREQ(depSourceName(DepSource::None), "none");
    EXPECT_STREQ(depSourceName(DepSource::ThreadEpoch), "thread_epoch");
    EXPECT_STREQ(depSourceName(DepSource::ConflictStore),
                 "conflict_store");
    EXPECT_STREQ(depSourceName(DepSource::ConflictLoad), "conflict_load");
    EXPECT_STREQ(depSourceName(DepSource::SameBlockSPA),
                 "same_block_spa");
    EXPECT_STREQ(depSourceName(DepSource::Coalesced), "coalesced");
}

TEST(TimingEngine, DepSetHandleZeroIsAlwaysEmpty)
{
    // DepSetRef 0 doubles as "the empty dependence set" throughout
    // the engine (Tag{} default-initializes deps = 0, and unionOf
    // short-circuits on it). The pool's constructor reserves span 0
    // as a zero-length sentinel, so the FIRST real allocation must
    // come out as handle 1 — behavioral pin: the first dependent
    // persist of a fresh engine must carry a non-empty dependence
    // set, and independent persists must stay empty, on a brand-new
    // engine every time (steady-state reuse = new engine per replay).
    for (int round = 0; round < 3; ++round) {
        TraceBuilder builder;
        builder.store(0, paddr(0), 1)   // A: no deps (would be ref 0)
               .barrier(0)
               .store(0, paddr(1), 2)   // B: deps {A} — first real span
               .store(0, paddr(2), 3)   // C: deps {A} via epoch tag
               .barrier(0)
               .store(0, paddr(3), 4);  // D: union of B/C deps
        TimingConfig config;
        config.model = ModelConfig::epoch();
        config.record_deps = true;
        PersistTimingEngine engine(config);
        builder.trace().replay(engine);
        const PersistLog log = engine.takeLog();
        ASSERT_EQ(log.size(), 4u);
        EXPECT_TRUE(log[0].deps.empty());
        ASSERT_FALSE(log[1].deps.empty());
        EXPECT_EQ(log[1].deps.front(), log[0].id);
        ASSERT_FALSE(log[2].deps.empty());
        EXPECT_EQ(log[2].deps.front(), log[0].id);
        // D depends on the younger epoch's persists, never on the
        // empty sentinel: a handle-0 mixup would surface here as a
        // silently empty (or A-only) set. The epoch tag may also
        // carry older-epoch ids; what matters is that B and C are
        // both present and the set is sorted-unique.
        ASSERT_GE(log[3].deps.size(), 2u);
        EXPECT_NE(std::find(log[3].deps.begin(), log[3].deps.end(),
                            log[1].id),
                  log[3].deps.end());
        EXPECT_NE(std::find(log[3].deps.begin(), log[3].deps.end(),
                            log[2].id),
                  log[3].deps.end());
        for (std::size_t i = 1; i < log[3].deps.size(); ++i)
            EXPECT_LT(log[3].deps[i - 1], log[3].deps[i]);
    }
}

TEST(TimingEngine, DepSetUnionSubsetShortCircuitKeepsContents)
{
    // unionOf(a, b) returns `a` unchanged when b ⊆ a (and vice
    // versa). The dependence sets must be byte-identical to the
    // general path's: pin the exact sets on a fan-in where the
    // accumulator already contains the epoch dependence.
    TraceBuilder builder;
    builder.store(0, paddr(0), 1)
           .barrier(0)
           .store(0, paddr(1), 2)
           .store(0, paddr(1), 3)   // same-block: dep set {B} twice
           .barrier(0)
           .store(0, paddr(2), 4);
    TimingConfig config;
    config.model = ModelConfig::epoch();
    config.record_deps = true;
    PersistTimingEngine engine(config);
    builder.trace().replay(engine);
    const PersistLog log = engine.takeLog();
    ASSERT_GE(log.size(), 3u);
    const PersistRecord &last = log[log.size() - 1];
    ASSERT_FALSE(last.deps.empty());
    for (std::size_t i = 1; i < last.deps.size(); ++i)
        EXPECT_LT(last.deps[i - 1], last.deps[i]) << "sorted-unique";
}

TEST(TimingEngine, ModelNamesEncodeConfiguration)
{
    EXPECT_EQ(ModelConfig::strict().name(), "strict");
    EXPECT_EQ(ModelConfig::epoch().name(), "epoch");
    EXPECT_EQ(ModelConfig::strand().name(), "strand");
    ModelConfig model = ModelConfig::epoch();
    model.atomic_granularity = 64;
    model.tracking_granularity = 128;
    EXPECT_EQ(model.name(), "epoch-a64-t128");
}

} // namespace
} // namespace persim
