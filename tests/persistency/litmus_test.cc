/**
 * @file
 * Litmus tests for the persistency model semantics (paper Section 5).
 *
 * Each test builds a tiny trace by hand and checks the persist levels
 * the timing engine assigns under strict, epoch, and strand
 * persistency. Levels are counted from 1; the critical path is the
 * maximum level.
 */

#include <gtest/gtest.h>

#include "persistency/timing_engine.hh"
#include "tests/support/trace_builder.hh"

namespace persim {
namespace {

using test::paddr;
using test::TraceBuilder;
using test::vaddr;

// ---------------------------------------------------------------------
// Strict persistency (Section 5.1)
// ---------------------------------------------------------------------

TEST(LitmusStrict, ProgramOrderSerializesPersists)
{
    TraceBuilder builder;
    builder.store(0, paddr(0)).store(0, paddr(1)).store(0, paddr(2));
    const auto result = builder.analyze(ModelConfig::strict());
    EXPECT_EQ(result.critical_path, 3.0);
    EXPECT_EQ(result.persists, 3u);
    EXPECT_EQ(result.coalesced, 0u);
}

TEST(LitmusStrict, BarriersAreRedundant)
{
    TraceBuilder with;
    with.store(0, paddr(0)).barrier(0).store(0, paddr(1));
    TraceBuilder without;
    without.store(0, paddr(0)).store(0, paddr(1));
    EXPECT_EQ(with.analyze(ModelConfig::strict()).critical_path,
              without.analyze(ModelConfig::strict()).critical_path);
}

TEST(LitmusStrict, IndependentThreadsAreConcurrent)
{
    TraceBuilder builder;
    builder.store(0, paddr(0)).store(1, paddr(1))
           .store(0, paddr(2)).store(1, paddr(3));
    const auto result = builder.analyze(ModelConfig::strict());
    // Two independent chains of length 2.
    EXPECT_EQ(result.critical_path, 2.0);
}

TEST(LitmusStrict, LoadOperandOrdersAcrossThreads)
{
    // T0 persists A then stores flag; T1 loads flag, then persists B.
    // The recovery observer (as another SC processor) must never see
    // B without A.
    TraceBuilder builder;
    builder.store(0, paddr(0))       // A at level 1.
           .store(0, vaddr(0), 1)    // flag
           .load(1, vaddr(0))        // T1 observes flag.
           .store(1, paddr(1));      // B must follow A: level 2.
    const auto result = builder.analyze(ModelConfig::strict());
    EXPECT_EQ(result.critical_path, 2.0);
}

TEST(LitmusStrict, UnobservedThreadsStayConcurrent)
{
    // Same as above but T1 never loads the flag: B stays level 1.
    TraceBuilder builder;
    builder.store(0, paddr(0))
           .store(0, vaddr(0), 1)
           .store(1, paddr(1));
    const auto result = builder.analyze(ModelConfig::strict());
    EXPECT_EQ(result.critical_path, 1.0);
}

TEST(LitmusStrict, SameAddressCoalescesAcrossThreads)
{
    // Persist to the address another thread persisted: strong persist
    // atomicity serializes them, and with no third-party dependence
    // the second persist may coalesce into the first (the recovery
    // observer can never see the second without the first when they
    // persist atomically together).
    TraceBuilder builder;
    builder.store(0, paddr(0), 1).store(1, paddr(0), 2);
    const auto result = builder.analyze(ModelConfig::strict());
    EXPECT_EQ(result.critical_path, 1.0);
    EXPECT_EQ(result.coalesced, 1u);
}

TEST(LitmusStrict, ForeignDependenceBlocksSameAddressCoalescing)
{
    // T1 observed T0's persist to X and then persisted Y; its next
    // persist to X depends on Y (another block), so it cannot merge
    // into the pending persist of X: the observer could otherwise see
    // the new X value without Y.
    TraceBuilder builder;
    builder.store(0, paddr(0), 1)   // X=1, level 1.
           .store(0, vaddr(0), 1)   // flag
           .load(1, vaddr(0))
           .store(1, paddr(1), 5)   // Y: level 2.
           .store(1, paddr(0), 2);  // X=2: after Y -> level 3.
    const auto result = builder.analyze(ModelConfig::strict());
    EXPECT_EQ(result.critical_path, 3.0);
    EXPECT_EQ(result.coalesced, 0u);
}

TEST(LitmusStrict, ChainThroughVolatileStoreConflict)
{
    // T0: persist A; store X. T1: store X (conflict); persist B.
    // Store-after-store conflict on X orders A before B under SC.
    TraceBuilder builder;
    builder.store(0, paddr(0))
           .store(0, vaddr(0), 1)
           .store(1, vaddr(0), 2)
           .store(1, paddr(1));
    EXPECT_EQ(builder.analyze(ModelConfig::strict()).critical_path, 2.0);
}

// ---------------------------------------------------------------------
// Epoch persistency (Section 5.2)
// ---------------------------------------------------------------------

TEST(LitmusEpoch, PersistsWithinEpochAreConcurrent)
{
    TraceBuilder builder;
    builder.store(0, paddr(0)).store(0, paddr(1)).store(0, paddr(2));
    const auto result = builder.analyze(ModelConfig::epoch());
    EXPECT_EQ(result.critical_path, 1.0);
}

TEST(LitmusEpoch, BarrierOrdersEpochs)
{
    TraceBuilder builder;
    builder.store(0, paddr(0)).store(0, paddr(1))
           .barrier(0)
           .store(0, paddr(2)).store(0, paddr(3));
    const auto result = builder.analyze(ModelConfig::epoch());
    EXPECT_EQ(result.critical_path, 2.0);
}

TEST(LitmusEpoch, StrongPersistAtomicityInsideEpoch)
{
    // Two persists to the same address in one epoch: SPA orders them,
    // but the second may coalesce (no intervening dependence).
    TraceBuilder builder;
    builder.store(0, paddr(0), 1).store(0, paddr(0), 2);
    const auto result = builder.analyze(ModelConfig::epoch());
    EXPECT_EQ(result.critical_path, 1.0);
    EXPECT_EQ(result.coalesced, 1u);
}

TEST(LitmusEpoch, SameAddressChainsCoalesceEvenAcrossBarriers)
{
    // A barrier between two persists to the same address orders them,
    // but they may still merge into one atomic persist: atomicity
    // trivially satisfies the order from the recovery observer's
    // perspective. Only a dependence on a *different* block pins the
    // later persist past the pending one.
    TraceBuilder builder;
    builder.store(0, paddr(0), 1)
           .barrier(0)
           .store(0, paddr(0), 2)   // Coalesces with X=1.
           .store(1, paddr(0), 3);  // Coalesces too (no foreign dep).
    const auto result = builder.analyze(ModelConfig::epoch());
    EXPECT_EQ(result.persists, 3u);
    EXPECT_EQ(result.coalesced, 2u);
    EXPECT_EQ(result.critical_path, 1.0);
}

TEST(LitmusEpoch, InterveningPersistBlocksSameAddressCoalescing)
{
    TraceBuilder builder;
    builder.store(0, paddr(0), 1)   // X=1: level 1.
           .barrier(0)
           .store(0, paddr(1), 9)   // Y: level 2.
           .barrier(0)
           .store(0, paddr(0), 2);  // X=2: after Y -> level 3.
    const auto result = builder.analyze(ModelConfig::epoch());
    EXPECT_EQ(result.critical_path, 3.0);
    EXPECT_EQ(result.coalesced, 0u);
}

TEST(LitmusEpoch, SynchronizationWithinEpochDoesNotOrderPersists)
{
    // The "astonishing" persist-epoch race (Section 5.2): T0 persists
    // A and sets a volatile flag in the same epoch; T1 sees the flag
    // and persists B in its own epoch. Volatile memory order puts A's
    // store before B's, but the persists race.
    TraceBuilder builder;
    builder.store(0, paddr(0))       // A
           .store(0, vaddr(0), 1)    // flag (same epoch as A!)
           .load(1, vaddr(0))
           .store(1, paddr(1));      // B: same epoch as the load.
    const auto result = builder.analyze(ModelConfig::epoch());
    EXPECT_EQ(result.critical_path, 1.0) << "persists should race";
}

TEST(LitmusEpoch, BarrierOnProducerAndConsumerOrdersAcrossThreads)
{
    // The conservative discipline: producer barriers after the
    // persist before signaling; consumer barriers after observing
    // before persisting. Now A must precede B.
    TraceBuilder builder;
    builder.store(0, paddr(0))       // A, level 1.
           .barrier(0)
           .store(0, vaddr(0), 1)    // flag carries A's level.
           .load(1, vaddr(0))        // T1 inherits into accum.
           .barrier(1)
           .store(1, paddr(1));      // B: level 2.
    const auto result = builder.analyze(ModelConfig::epoch());
    EXPECT_EQ(result.critical_path, 2.0);
}

TEST(LitmusEpoch, ConsumerBarrierAloneIsNotEnough)
{
    // Producer omits its barrier: the flag store is in A's epoch, so
    // the consumer inherits nothing durable-ordered.
    TraceBuilder builder;
    builder.store(0, paddr(0))
           .store(0, vaddr(0), 1)
           .load(1, vaddr(0))
           .barrier(1)
           .store(1, paddr(1));
    const auto result = builder.analyze(ModelConfig::epoch());
    EXPECT_EQ(result.critical_path, 1.0);
}

TEST(LitmusEpoch, ProducerBarrierAloneIsNotEnough)
{
    // Consumer persists in the same epoch as its load: rule 1 does
    // not order the load before the persist, so they still race.
    TraceBuilder builder;
    builder.store(0, paddr(0))
           .barrier(0)
           .store(0, vaddr(0), 1)
           .load(1, vaddr(0))
           .store(1, paddr(1));
    const auto result = builder.analyze(ModelConfig::epoch());
    EXPECT_EQ(result.critical_path, 1.0);
}

TEST(LitmusEpoch, LoadBeforeStoreConflictDetected)
{
    // T0 loads X after a barrier-ordered persist A; T1 later stores X
    // and then (after a barrier) persists B. The load-before-store
    // conflict on X orders A before B (this is what BPFS misses).
    TraceBuilder builder;
    builder.store(0, paddr(0))       // A, level 1.
           .barrier(0)
           .load(0, vaddr(0))        // Records A on X's load tag.
           .store(1, vaddr(0), 7)    // Conflicts with the load.
           .barrier(1)
           .store(1, paddr(1));      // B: must follow A.
    const auto result = builder.analyze(ModelConfig::epoch());
    EXPECT_EQ(result.critical_path, 2.0);
}

TEST(LitmusEpoch, RmwActsAsLoadAndStore)
{
    // Lock-style handoff through an RMW on a volatile word.
    TraceBuilder builder;
    builder.store(0, paddr(0))
           .barrier(0)
           .rmw(0, vaddr(0), 1)
           .rmw(1, vaddr(0), 2)
           .barrier(1)
           .store(1, paddr(1));
    const auto result = builder.analyze(ModelConfig::epoch());
    EXPECT_EQ(result.critical_path, 2.0);
}

TEST(LitmusEpoch, PersistentRmwSynchronizesViaAtomicity)
{
    // "Synchronization through persistent memory is possible": a lock
    // word in the persistent address space orders persists across
    // racing epochs via strong persist atomicity. T0 persists A and
    // (after a barrier) RMWs the persistent lock; T1 RMWs the lock
    // and, after its barrier, persists B. B must follow A.
    TraceBuilder builder;
    builder.store(0, paddr(0))       // A: level 1.
           .barrier(0)
           .rmw(0, paddr(8), 1)      // Lock RMW: level 2.
           .rmw(1, paddr(8), 2)      // Coalesces at level 2, but the
           .barrier(1)               // inherited tag carries level 2.
           .store(1, paddr(1));      // B: level 3 > A.
    const auto result = builder.analyze(ModelConfig::epoch());
    EXPECT_EQ(result.critical_path, 3.0);
}

TEST(LitmusEpoch, TransitiveInheritanceAcrossThreeThreads)
{
    TraceBuilder builder;
    builder.store(0, paddr(0))      // A level 1.
           .barrier(0)
           .store(0, vaddr(0), 1)
           .load(1, vaddr(0))
           .barrier(1)
           .store(1, paddr(1))      // B level 2.
           .barrier(1)
           .store(1, vaddr(1), 1)
           .load(2, vaddr(1))
           .barrier(2)
           .store(2, paddr(2));     // C level 3.
    const auto result = builder.analyze(ModelConfig::epoch());
    EXPECT_EQ(result.critical_path, 3.0);
}

TEST(LitmusEpoch, PersistSyncActsAsBarrier)
{
    TraceBuilder builder;
    builder.store(0, paddr(0)).sync(0).store(0, paddr(1));
    const auto result = builder.analyze(ModelConfig::epoch());
    EXPECT_EQ(result.critical_path, 2.0);
}

// ---------------------------------------------------------------------
// Strand persistency (Section 5.3)
// ---------------------------------------------------------------------

TEST(LitmusStrand, NewStrandClearsThreadDependences)
{
    TraceBuilder builder;
    builder.store(0, paddr(0))
           .barrier(0)
           .strand(0)
           .store(0, paddr(1)); // New strand: concurrent with A.
    const auto result = builder.analyze(ModelConfig::strand());
    EXPECT_EQ(result.critical_path, 1.0);
}

TEST(LitmusStrand, BarriersStillOrderWithinStrand)
{
    TraceBuilder builder;
    builder.strand(0)
           .store(0, paddr(0))
           .barrier(0)
           .store(0, paddr(1));
    const auto result = builder.analyze(ModelConfig::strand());
    EXPECT_EQ(result.critical_path, 2.0);
}

TEST(LitmusStrand, StrongPersistAtomicityAcrossStrands)
{
    // Strand state resets do not erase per-address state: a new
    // strand persisting an already-persisted address still interacts
    // with it through strong persist atomicity (here, by coalescing).
    TraceBuilder builder;
    builder.store(0, paddr(0), 1)
           .barrier(0)
           .store(0, paddr(0), 2)
           .strand(0)
           .store(0, paddr(0), 3);
    const auto result = builder.analyze(ModelConfig::strand());
    EXPECT_EQ(result.persists, 3u);
    EXPECT_EQ(result.critical_path, 1.0);
    EXPECT_EQ(result.coalesced, 2u);
}

TEST(LitmusStrand, SameAddressSerializesWhenCoalescingImpossible)
{
    // Pin the first persist of X under a foreign dependence so the
    // new strand's persist to X cannot merge and must serialize.
    TraceBuilder builder;
    builder.store(0, paddr(1), 9)   // Y: level 1.
           .barrier(0)
           .store(0, paddr(0), 1)   // X=1: level 2 (after Y).
           .strand(0)
           .load(0, paddr(1))       // Strand depends on Y (level 1).
           .barrier(0)
           .store(0, paddr(0), 2);  // X=2: dep Y(1) < X-pending(2),
                                    // same-block top -> coalesces.
    const auto coalesced = builder.analyze(ModelConfig::strand());
    EXPECT_EQ(coalesced.critical_path, 2.0);
    EXPECT_EQ(coalesced.coalesced, 1u);

    // Now make the strand depend on a *newer* foreign persist.
    TraceBuilder builder2;
    builder2.store(0, paddr(0), 1)  // X=1: level 1.
            .barrier(0)
            .store(0, paddr(1), 9)  // Y: level 2.
            .strand(0)
            .load(0, paddr(1))      // Depend on Y.
            .barrier(0)
            .store(0, paddr(0), 2); // X=2: after Y -> level 3.
    const auto serialized = builder2.analyze(ModelConfig::strand());
    EXPECT_EQ(serialized.critical_path, 3.0);
    EXPECT_EQ(serialized.coalesced, 0u);
}

TEST(LitmusStrand, ReadRebuildOrderingIdiom)
{
    // The paper's idiom: "a persist strand begins by reading
    // persisted memory locations after which new persists must be
    // ordered", then a persist barrier, then the persist.
    TraceBuilder builder;
    builder.store(0, paddr(0))    // A, level 1.
           .strand(0)
           .load(0, paddr(0))     // Read A's location: SPA dependence.
           .barrier(0)
           .store(0, paddr(1));   // B: ordered after A, level 2.
    const auto result = builder.analyze(ModelConfig::strand());
    EXPECT_EQ(result.critical_path, 2.0);
}

TEST(LitmusStrand, WithoutReadTheStrandIsConcurrent)
{
    TraceBuilder builder;
    builder.store(0, paddr(0))
           .strand(0)
           .barrier(0)
           .store(0, paddr(1));
    const auto result = builder.analyze(ModelConfig::strand());
    EXPECT_EQ(result.critical_path, 1.0);
}

TEST(LitmusStrand, MinimalOrderingPerAddressGranularity)
{
    // Each persist in its own strand, loading only the address it
    // must depend on: the two chains do not interfere.
    TraceBuilder builder;
    builder.store(0, paddr(0))    // A1 level 1.
           .store(0, paddr(10))   // B1 level 1 (same epoch).
           .strand(0)
           .load(0, paddr(0))
           .barrier(0)
           .store(0, paddr(1))    // A2: after A1 only -> level 2.
           .strand(0)
           .load(0, paddr(10))
           .barrier(0)
           .store(0, paddr(11))   // B2: after B1 only -> level 2.
           .strand(0)
           .load(0, paddr(1))
           .barrier(0)
           .store(0, paddr(2));   // A3 -> level 3.
    const auto result = builder.analyze(ModelConfig::strand());
    EXPECT_EQ(result.critical_path, 3.0);
}

TEST(LitmusStrand, StrandIgnoredByOtherModels)
{
    TraceBuilder builder;
    builder.store(0, paddr(0)).barrier(0).strand(0).store(0, paddr(1));
    EXPECT_EQ(builder.analyze(ModelConfig::epoch()).critical_path, 2.0);
    EXPECT_EQ(builder.analyze(ModelConfig::strict()).critical_path, 2.0);
}

TEST(LitmusStrand, CrossThreadConflictsStillOrder)
{
    TraceBuilder builder;
    builder.strand(0)
           .store(0, paddr(0))     // A level 1.
           .barrier(0)
           .store(0, vaddr(0), 1)
           .strand(1)
           .load(1, vaddr(0))
           .barrier(1)
           .store(1, paddr(1));    // B level 2.
    const auto result = builder.analyze(ModelConfig::strand());
    EXPECT_EQ(result.critical_path, 2.0);
}

// ---------------------------------------------------------------------
// Cross-model relations
// ---------------------------------------------------------------------

TEST(LitmusRelations, EpochNeverExceedsStrict)
{
    TraceBuilder builder;
    builder.store(0, paddr(0)).store(0, paddr(1))
           .barrier(0)
           .store(0, paddr(2))
           .store(1, paddr(3)).store(1, paddr(0), 9)
           .barrier(1)
           .store(1, paddr(4));
    const auto strict = builder.analyze(ModelConfig::strict());
    const auto epoch = builder.analyze(ModelConfig::epoch());
    EXPECT_LE(epoch.critical_path, strict.critical_path);
}

TEST(LitmusRelations, StrandNeverExceedsEpoch)
{
    TraceBuilder builder;
    builder.store(0, paddr(0))
           .barrier(0)
           .strand(0)
           .store(0, paddr(1))
           .barrier(0)
           .store(0, paddr(2));
    const auto epoch = builder.analyze(ModelConfig::epoch());
    const auto strand = builder.analyze(ModelConfig::strand());
    EXPECT_LE(strand.critical_path, epoch.critical_path);
}

} // namespace
} // namespace persim
