/**
 * @file
 * Remaining semantic corners: persistent RMW under each model,
 * persist-sync accounting, marker pass-through, joint granularity
 * configuration, and Fence events flowing through the stack.
 */

#include <gtest/gtest.h>

#include "memtrace/trace_stats.hh"
#include "persistency/timing_engine.hh"
#include "tests/support/trace_builder.hh"

namespace persim {
namespace {

using test::paddr;
using test::TraceBuilder;
using test::vaddr;

TEST(MiscSemantics, PersistentRmwIsAPersistUnderEveryModel)
{
    TraceBuilder builder;
    builder.rmw(0, paddr(0), 1).rmw(0, paddr(0), 2);
    for (const auto &model : {ModelConfig::strict(), ModelConfig::epoch(),
                              ModelConfig::strand()}) {
        const auto result = builder.analyze(model);
        EXPECT_EQ(result.persists, 2u) << model.name();
        // Second RMW coalesces (same address, no foreign dep).
        EXPECT_EQ(result.coalesced, 1u) << model.name();
    }
}

TEST(MiscSemantics, StrictRmwChainSerializes)
{
    TraceBuilder builder;
    builder.rmw(0, paddr(0), 1).rmw(0, paddr(1), 2).rmw(0, paddr(2), 3);
    EXPECT_EQ(builder.analyze(ModelConfig::strict()).critical_path, 3.0);
    EXPECT_EQ(builder.analyze(ModelConfig::epoch()).critical_path, 1.0);
}

TEST(MiscSemantics, PersistSyncCountsAsBarrier)
{
    TraceBuilder builder;
    builder.store(0, paddr(0)).sync(0).store(0, paddr(1)).barrier(0);
    const auto result = builder.analyze(ModelConfig::epoch());
    EXPECT_EQ(result.barriers, 2u);
    EXPECT_EQ(result.critical_path, 2.0);
}

TEST(MiscSemantics, UserMarkersAreIgnoredByTiming)
{
    TraceBuilder builder;
    builder.store(0, paddr(0))
           .role(0, MarkerCode::UserBase)
           .store(0, paddr(1));
    const auto result = builder.analyze(ModelConfig::epoch());
    EXPECT_EQ(result.critical_path, 1.0);
    EXPECT_EQ(result.ops, 0u);
}

TEST(MiscSemantics, JointGranularityConfiguration)
{
    // Coarse tracking AND coarse atomic persists together: tracking
    // reintroduces ordering, atomic persists coalesce it away again —
    // the two effects compose.
    TraceBuilder builder;
    for (int i = 0; i < 8; ++i)
        builder.store(0, paddr(i), i);

    ModelConfig both = ModelConfig::epoch();
    both.tracking_granularity = 256; // Serialize via false sharing...
    both.atomic_granularity = 256;   // ...then coalesce it all back.
    const auto result = builder.analyze(both);
    EXPECT_EQ(result.critical_path, 1.0);
    EXPECT_EQ(result.coalesced, 7u);

    ModelConfig tracking_only = ModelConfig::epoch();
    tracking_only.tracking_granularity = 256;
    EXPECT_EQ(builder.analyze(tracking_only).critical_path, 8.0);
}

TEST(MiscSemantics, FenceEventsFlowThroughTheStack)
{
    TraceBuilder builder;
    InMemoryTrace trace;
    TraceEvent fence;
    fence.kind = EventKind::Fence;
    fence.thread = 0;
    trace.onEvent(fence);
    TraceEvent store;
    store.kind = EventKind::Store;
    store.addr = paddr(0);
    store.size = 8;
    trace.onEvent(store);

    // The timing engine ignores fences (consistency-only events).
    TimingConfig config;
    config.model = ModelConfig::epoch();
    PersistTimingEngine engine(config);
    trace.replay(engine);
    EXPECT_EQ(engine.result().persists, 1u);
    EXPECT_EQ(engine.result().barriers, 0u);

    // Stats and formatting know the kind.
    EXPECT_STREQ(eventKindName(EventKind::Fence), "fence");
    EXPECT_NE(formatEvent(fence).find("fence"), std::string::npos);
}

TEST(MiscSemantics, ZeroSizeTraceIsHarmless)
{
    InMemoryTrace trace;
    TimingConfig config;
    config.model = ModelConfig::epoch();
    PersistTimingEngine engine(config);
    trace.replay(engine);
    EXPECT_EQ(engine.result().critical_path, 0.0);
    EXPECT_EQ(engine.result().persists, 0u);
    EXPECT_EQ(engine.result().criticalPathPerOp(), 0.0);
}

TEST(MiscSemantics, VolatileOnlyTraceHasNoPersists)
{
    TraceBuilder builder;
    builder.store(0, vaddr(0), 1)
           .load(1, vaddr(0))
           .barrier(1)
           .store(1, vaddr(1), 2);
    for (const auto &model : {ModelConfig::strict(), ModelConfig::epoch(),
                              ModelConfig::strand()}) {
        const auto result = builder.analyze(model);
        EXPECT_EQ(result.persists, 0u);
        EXPECT_EQ(result.critical_path, 0.0);
    }
}

TEST(MiscSemantics, ManyThreadsIndependentChains)
{
    TraceBuilder builder;
    for (ThreadId t = 0; t < 16; ++t)
        for (int i = 0; i < 4; ++i)
            builder.store(t, paddr(t * 100 + i)).barrier(t);
    const auto result = builder.analyze(ModelConfig::epoch());
    // Sixteen independent chains of four: depth 4, not 64.
    EXPECT_EQ(result.critical_path, 4.0);
    EXPECT_EQ(result.persists, 64u);
}

} // namespace
} // namespace persim
