/**
 * @file
 * Persist-epoch race detection tests (paper Section 5.2).
 *
 * The timing engine's race detector runs a shadow SC propagation: a
 * persist races when a foreign persist precedes it in volatile (SC)
 * memory order — through any chain of conflicting accesses — but the
 * persistency model leaves the two unordered. This is exactly the
 * paper's "astonishing persist ordering": synchronization ordered the
 * stores, not the persists.
 */

#include <gtest/gtest.h>

#include "bench_util/queue_workload.hh"
#include "persistency/timing_engine.hh"
#include "tests/support/trace_builder.hh"

namespace persim {
namespace {

using test::paddr;
using test::TraceBuilder;
using test::vaddr;

std::uint64_t
racesIn(const TraceBuilder &builder, ModelConfig model = ModelConfig::epoch())
{
    TimingConfig config;
    config.model = model;
    config.detect_races = true;
    PersistTimingEngine engine(config);
    builder.trace().replay(engine);
    return engine.result().races;
}

TEST(RaceDetector, ClassicPersistEpochRace)
{
    // T0 persists A and signals through a volatile flag in the same
    // epoch; T1 sees the flag and persists B: B is SC-after A but the
    // model leaves them unordered.
    TraceBuilder builder;
    builder.store(0, paddr(0))
           .store(0, vaddr(0), 1)
           .load(1, vaddr(0))
           .store(1, paddr(1));
    EXPECT_EQ(racesIn(builder), 1u);
}

TEST(RaceDetector, BarriersOnBothSidesPreventTheRace)
{
    TraceBuilder builder;
    builder.store(0, paddr(0))
           .barrier(0)
           .store(0, vaddr(0), 1)
           .load(1, vaddr(0))
           .barrier(1)
           .store(1, paddr(1));
    EXPECT_EQ(racesIn(builder), 0u);
}

TEST(RaceDetector, ConsumerBarrierAloneStillRaces)
{
    // Without the producer barrier, A is not ordered before the
    // signal, so even a disciplined consumer races.
    TraceBuilder builder;
    builder.store(0, paddr(0))
           .store(0, vaddr(0), 1)
           .load(1, vaddr(0))
           .barrier(1)
           .store(1, paddr(1));
    EXPECT_EQ(racesIn(builder), 1u);
}

TEST(RaceDetector, ProducerBarrierAloneStillRaces)
{
    TraceBuilder builder;
    builder.store(0, paddr(0))
           .barrier(0)
           .store(0, vaddr(0), 1)
           .load(1, vaddr(0))
           .store(1, paddr(1));
    EXPECT_EQ(racesIn(builder), 1u);
}

TEST(RaceDetector, NoRaceWithoutConflict)
{
    TraceBuilder builder;
    builder.store(0, paddr(0))
           .store(0, vaddr(0), 1)
           .load(1, vaddr(5)) // Different block: no communication.
           .store(1, paddr(1));
    EXPECT_EQ(racesIn(builder), 0u);
}

TEST(RaceDetector, WriteWriteConflictPropagates)
{
    TraceBuilder builder;
    builder.store(0, paddr(0))
           .store(0, vaddr(0), 1)
           .store(1, vaddr(0), 2)
           .store(1, paddr(1));
    EXPECT_EQ(racesIn(builder), 1u);
}

TEST(RaceDetector, LoadBeforeStoreConflictPropagates)
{
    TraceBuilder builder;
    builder.store(0, paddr(0))
           .load(0, vaddr(0))
           .store(1, vaddr(0), 1)
           .store(1, paddr(1));
    EXPECT_EQ(racesIn(builder), 1u);
}

TEST(RaceDetector, TransitiveChainThroughThirdThread)
{
    // T0 -> T1 (flag X) -> T2 (flag Y): T2's persist races with A
    // even though T2 never touched T0's flag.
    TraceBuilder builder;
    builder.store(0, paddr(0))
           .store(0, vaddr(0), 1)
           .load(1, vaddr(0))
           .store(1, vaddr(1), 1)
           .load(2, vaddr(1))
           .store(2, paddr(2));
    EXPECT_EQ(racesIn(builder), 1u);
}

TEST(RaceDetector, SameAddressPersistsDoNotRace)
{
    // Strong persist atomicity orders same-address persists even in
    // racing epochs: intentional synchronization, not a race.
    TraceBuilder builder;
    builder.store(0, paddr(0), 1)
           .store(1, paddr(0), 2);
    EXPECT_EQ(racesIn(builder), 0u);
}

TEST(RaceDetector, SpaBasedSynchronizationIsRaceFree)
{
    // The paper's idiom: synchronize through persistent memory. T1
    // RMWs the persistent lock word T0 persisted: the inherited
    // ordering flows through strong persist atomicity, and T1's
    // post-barrier persist is properly ordered.
    TraceBuilder builder;
    builder.store(0, paddr(0))
           .barrier(0)
           .rmw(0, paddr(8), 1)
           .rmw(1, paddr(8), 2)
           .barrier(1)
           .store(1, paddr(1));
    EXPECT_EQ(racesIn(builder), 0u);
}

TEST(RaceDetector, OwnThreadRelaxationIsNotARace)
{
    // Same-thread persists left concurrent by epoch persistency are
    // intended (that is the model's point), not races.
    TraceBuilder builder;
    builder.store(0, paddr(0))
           .store(0, paddr(1))
           .store(0, paddr(2));
    EXPECT_EQ(racesIn(builder), 0u);
}

TEST(RaceDetector, StrictPersistencyNeverRaces)
{
    // Strict persistency honors every SC edge by construction.
    TraceBuilder builder;
    builder.store(0, paddr(0))
           .store(0, vaddr(0), 1)
           .load(1, vaddr(0))
           .store(1, paddr(1))
           .store(1, vaddr(1), 1)
           .load(0, vaddr(1))
           .store(0, paddr(2));
    EXPECT_EQ(racesIn(builder, ModelConfig::strict()), 0u);
}

TEST(RaceDetector, SamplesAreBounded)
{
    TraceBuilder builder;
    builder.store(0, paddr(0));
    for (int i = 0; i < 100; ++i) {
        builder.store(0, vaddr(0), 1)
               .load(1, vaddr(0))
               .store(1, paddr(100 + i));
    }
    TimingConfig config;
    config.model = ModelConfig::epoch();
    config.detect_races = true;
    PersistTimingEngine engine(config);
    builder.trace().replay(engine);
    EXPECT_GT(engine.result().races, 20u);
    EXPECT_EQ(engine.raceSamples().size(), 16u);
}

TEST(RaceDetector, ConservativeCwlIsRaceFree)
{
    QueueWorkloadConfig config;
    config.kind = QueueKind::CopyWhileLocked;
    config.variant = AnnotationVariant::Conservative;
    config.threads = 4;
    config.inserts_per_thread = 30;
    TimingConfig timing;
    timing.model = ModelConfig::epoch();
    timing.detect_races = true;
    PersistTimingEngine engine(timing);
    std::vector<TraceSink *> sinks{&engine};
    runQueueWorkload(config, sinks);
    EXPECT_EQ(engine.result().races, 0u);
}

TEST(RaceDetector, RacingCwlRacesIntentionally)
{
    QueueWorkloadConfig config;
    config.kind = QueueKind::CopyWhileLocked;
    config.variant = AnnotationVariant::Racing;
    config.threads = 4;
    config.inserts_per_thread = 30;
    TimingConfig timing;
    timing.model = ModelConfig::epoch();
    timing.detect_races = true;
    PersistTimingEngine engine(timing);
    std::vector<TraceSink *> sinks{&engine};
    runQueueWorkload(config, sinks);
    EXPECT_GT(engine.result().races, 0u);
}

TEST(RaceDetector, DisabledByDefault)
{
    TraceBuilder builder;
    builder.store(0, paddr(0))
           .store(0, vaddr(0), 1)
           .load(1, vaddr(0))
           .store(1, paddr(1));
    TimingConfig config;
    config.model = ModelConfig::epoch();
    PersistTimingEngine engine(config);
    builder.trace().replay(engine);
    EXPECT_EQ(engine.result().races, 0u);
    EXPECT_TRUE(engine.raceSamples().empty());
}

} // namespace
} // namespace persim
