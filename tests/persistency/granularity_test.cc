/**
 * @file
 * Atomic-persist and tracking granularity semantics (the unit-level
 * behavior behind Figures 4 and 5).
 */

#include <gtest/gtest.h>

#include "persistency/timing_engine.hh"
#include "tests/support/trace_builder.hh"

namespace persim {
namespace {

using test::paddr;
using test::TraceBuilder;
using test::vaddr;

ModelConfig
withGranularity(ModelConfig model, std::uint64_t atomic_gran,
                std::uint64_t track_gran)
{
    model.atomic_granularity = atomic_gran;
    model.tracking_granularity = track_gran;
    return model;
}

/** A 64-byte contiguous persist region written word by word. */
TraceBuilder
contiguousWrite()
{
    TraceBuilder builder;
    for (int i = 0; i < 8; ++i)
        builder.store(0, paddr(i), i);
    return builder;
}

TEST(AtomicGranularity, StrictSerializesWordsAtEightBytes)
{
    auto builder = contiguousWrite();
    const auto result =
        builder.analyze(withGranularity(ModelConfig::strict(), 8, 8));
    EXPECT_EQ(result.critical_path, 8.0);
    EXPECT_EQ(result.coalesced, 0u);
}

TEST(AtomicGranularity, StrictCoalescesWithinLargeAtomicBlocks)
{
    auto builder = contiguousWrite();
    // All eight words fall into one 64-byte atomic block: the whole
    // region persists as one atomic persist.
    const auto result =
        builder.analyze(withGranularity(ModelConfig::strict(), 64, 8));
    EXPECT_EQ(result.critical_path, 1.0);
    EXPECT_EQ(result.coalesced, 7u);
}

TEST(AtomicGranularity, StrictIntermediateGranularity)
{
    auto builder = contiguousWrite();
    // 32-byte blocks: two groups of four words, serialized by
    // program order under strict persistency.
    const auto result =
        builder.analyze(withGranularity(ModelConfig::strict(), 32, 8));
    EXPECT_EQ(result.critical_path, 2.0);
    EXPECT_EQ(result.coalesced, 6u);
}

TEST(AtomicGranularity, EpochUnaffectedByLargerAtomicPersists)
{
    // Epoch persistency already persists the words concurrently, so
    // larger atomic blocks do not shorten the critical path
    // (paper: "no improvement to relaxed models").
    auto builder = contiguousWrite();
    const auto small =
        builder.analyze(withGranularity(ModelConfig::epoch(), 8, 8));
    const auto large =
        builder.analyze(withGranularity(ModelConfig::epoch(), 256, 8));
    EXPECT_EQ(small.critical_path, 1.0);
    EXPECT_EQ(large.critical_path, 1.0);
}

TEST(AtomicGranularity, CriticalPathMonotoneNonIncreasing)
{
    for (const auto &model :
         {ModelConfig::strict(), ModelConfig::epoch()}) {
        double prev = 1e30;
        for (std::uint64_t gran : {8, 16, 32, 64, 128, 256}) {
            auto builder = contiguousWrite();
            const auto result =
                builder.analyze(withGranularity(model, gran, 8));
            EXPECT_LE(result.critical_path, prev)
                << model.name() << " at " << gran;
            prev = result.critical_path;
        }
    }
}

TEST(AtomicGranularity, UnalignedStoreSplitsAcrossAtomicBlocks)
{
    TraceBuilder builder;
    // An 8-byte store straddling two 8-byte blocks becomes two
    // persist pieces.
    builder.store(0, paddr(0) + 4, 0x1122334455667788ULL);
    const auto result =
        builder.analyze(withGranularity(ModelConfig::epoch(), 8, 8));
    EXPECT_EQ(result.persists, 2u);
    EXPECT_EQ(result.critical_path, 1.0);
}

TEST(TrackingGranularity, FalseSharingIntroducesConstraints)
{
    // Two threads persist to adjacent (disjoint) words. At 8-byte
    // tracking they are independent (both level 1); at 64-byte
    // tracking the accesses conflict, so the second persist is
    // ordered after the first even though the addresses are disjoint.
    auto build = [] {
        TraceBuilder builder;
        builder.store(0, paddr(0))   // word 0
               .store(1, paddr(1));  // word 1 (same 64B line)
        return builder;
    };
    auto fine = build();
    const auto fine_result =
        fine.analyze(withGranularity(ModelConfig::epoch(), 8, 8));
    EXPECT_EQ(fine_result.critical_path, 1.0);

    auto coarse = build();
    const auto coarse_result =
        coarse.analyze(withGranularity(ModelConfig::epoch(), 8, 64));
    EXPECT_EQ(coarse_result.critical_path, 2.0);
}

TEST(TrackingGranularity, VolatileFalseSharingAlsoOrders)
{
    // Persistent false sharing "occurs in conflicts to both
    // persistent and volatile memory" (Section 8.2).
    auto build = [] {
        TraceBuilder builder;
        builder.store(0, paddr(0))       // A: level 1.
               .barrier(0)
               .store(0, vaddr(0), 1)    // volatile word 0
               .load(1, vaddr(1))        // volatile word 1, same line
               .barrier(1)
               .store(1, paddr(50));     // B
        return builder;
    };
    auto fine = build();
    EXPECT_EQ(fine.analyze(withGranularity(ModelConfig::epoch(), 8, 8))
                  .critical_path, 1.0);
    auto coarse = build();
    EXPECT_EQ(coarse.analyze(withGranularity(ModelConfig::epoch(), 8, 64))
                  .critical_path, 2.0);
}

TEST(TrackingGranularity, StrictInsensitiveToTracking)
{
    // Strict persistency already serializes per thread; false sharing
    // adds (almost) nothing (paper Figure 5: strict is flat).
    auto build = [] {
        TraceBuilder builder;
        for (int i = 0; i < 6; ++i)
            builder.store(0, paddr(i), i);
        return builder;
    };
    auto fine = build();
    auto coarse = build();
    EXPECT_EQ(
        fine.analyze(withGranularity(ModelConfig::strict(), 8, 8))
            .critical_path,
        coarse.analyze(withGranularity(ModelConfig::strict(), 8, 256))
            .critical_path);
}

TEST(TrackingGranularity, EpochDegradesTowardStrictAsTrackingCoarsens)
{
    // Within one thread: data words then (after a barrier) a head
    // persist far away. With very coarse tracking, the data words
    // conflict with each other and serialize, approaching strict.
    auto build = [] {
        TraceBuilder builder;
        for (int i = 0; i < 4; ++i)
            builder.store(0, paddr(i), i);
        builder.barrier(0).store(0, paddr(100));
        return builder;
    };
    auto fine = build();
    const double fine_cp =
        fine.analyze(withGranularity(ModelConfig::epoch(), 8, 8))
            .critical_path;
    auto coarse = build();
    const double coarse_cp =
        coarse.analyze(withGranularity(ModelConfig::epoch(), 8, 256))
            .critical_path;
    auto strict = build();
    const double strict_cp =
        strict.analyze(withGranularity(ModelConfig::strict(), 8, 8))
            .critical_path;
    EXPECT_EQ(fine_cp, 2.0);
    EXPECT_GT(coarse_cp, fine_cp);
    EXPECT_LE(coarse_cp, strict_cp);
}

TEST(Granularity, InvalidConfigurationsAreFatal)
{
    ModelConfig model;
    model.atomic_granularity = 12;
    EXPECT_THROW(model.validate(), FatalError);
    model.atomic_granularity = 8;
    model.tracking_granularity = 4;
    EXPECT_THROW(model.validate(), FatalError);
    model.tracking_granularity = 0;
    EXPECT_THROW(model.validate(), FatalError);
}

} // namespace
} // namespace persim
