/**
 * @file
 * PersistRace detector tests (persistency/persist_race.hh).
 *
 * The UnorderedPersist rule is an independent re-derivation of the
 * engine's detect_races shadow analysis from the plugin hook stream
 * alone, so the strongest test is exact agreement with
 * TimingResult::races — on hand litmus traces, on every golden
 * fixture under every frozen config (the zero-false-positive pin:
 * the engine's count is ground truth, so equality means no invented
 * races), and under serial vs segment (--jobs) replay. The DirtyRead
 * rule is px86-only and pinned directly on hand traces.
 */

#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "memtrace/trace_io.hh"
#include "persistency/persist_race.hh"
#include "persistency/segment_replay.hh"
#include "persistency/timing_engine.hh"
#include "tests/persistency/golden_support.hh"
#include "tests/support/trace_builder.hh"

namespace persim {
namespace {

using test::goldenConfigs;
using test::goldenFixtureNames;
using test::paddr;
using test::TraceBuilder;
using test::vaddr;

/** Replay with detect_races ground truth + the plugin attached. */
struct Observed
{
    std::uint64_t engine_races = 0;
    std::uint64_t unordered = 0;
    std::uint64_t dirty_reads = 0;
};

Observed
observe(const InMemoryTrace &trace, TimingConfig config)
{
    PersistRaceDetector detector;
    config.detect_races = true;
    config.plugins.push_back(&detector);
    PersistTimingEngine engine(config);
    trace.replay(engine);
    Observed out;
    out.engine_races = engine.result().races;
    out.unordered = detector.unorderedPersists();
    out.dirty_reads = detector.dirtyReads();
    return out;
}

Observed
observe(const TraceBuilder &builder,
        ModelConfig model = ModelConfig::epoch())
{
    TimingConfig config;
    config.model = model;
    return observe(builder.trace(), config);
}

TEST(PersistRace, ClassicPersistEpochRaceMatchesEngine)
{
    TraceBuilder builder;
    builder.store(0, paddr(0))
           .store(0, vaddr(0), 1)
           .load(1, vaddr(0))
           .store(1, paddr(1));
    const Observed seen = observe(builder);
    EXPECT_EQ(seen.unordered, 1u);
    EXPECT_EQ(seen.unordered, seen.engine_races);
}

TEST(PersistRace, BarriersOnBothSidesClean)
{
    TraceBuilder builder;
    builder.store(0, paddr(0))
           .barrier(0)
           .store(0, vaddr(0), 1)
           .load(1, vaddr(0))
           .barrier(1)
           .store(1, paddr(1));
    const Observed seen = observe(builder);
    EXPECT_EQ(seen.unordered, 0u);
    EXPECT_EQ(seen.engine_races, 0u);
}

TEST(PersistRace, AgreesWithEngineOnLitmusPatterns)
{
    // The full pattern zoo from race_detector_test, under epoch,
    // strand, and strict: the plugin must re-derive the engine's
    // verdict from hooks alone in every case.
    std::vector<TraceBuilder> builders(7);
    builders[0].store(0, paddr(0)).store(0, vaddr(0), 1)
               .load(1, vaddr(0)).barrier(1).store(1, paddr(1));
    builders[1].store(0, paddr(0)).barrier(0).store(0, vaddr(0), 1)
               .load(1, vaddr(0)).store(1, paddr(1));
    builders[2].store(0, paddr(0)).store(0, vaddr(0), 1)
               .load(1, vaddr(5)).store(1, paddr(1));
    builders[3].store(0, paddr(0)).store(0, vaddr(0), 1)
               .store(1, vaddr(0), 2).store(1, paddr(1));
    builders[4].store(0, paddr(0)).store(0, vaddr(0), 1)
               .load(1, vaddr(0)).store(1, vaddr(1), 1)
               .load(2, vaddr(1)).store(2, paddr(2));
    builders[5].store(0, paddr(0), 1).store(1, paddr(0), 2);
    builders[6].store(0, paddr(0)).barrier(0).rmw(0, paddr(8), 1)
               .rmw(1, paddr(8), 2).barrier(1).store(1, paddr(1));
    for (std::size_t i = 0; i < builders.size(); ++i) {
        for (const ModelConfig &model :
             {ModelConfig::epoch(), ModelConfig::strand(),
              ModelConfig::strict()}) {
            const Observed seen = observe(builders[i], model);
            EXPECT_EQ(seen.unordered, seen.engine_races)
                << "pattern " << i << " model " << model.name();
        }
    }
}

TEST(PersistRace, DirtyReadFlaggedUnderPx86)
{
    // T1 reads T0's never-flushed store: TSO shows the value, but
    // nothing orders T1's later persists after x's durability.
    TraceBuilder builder;
    builder.store(0, paddr(0), 1)
           .load(1, paddr(0))
           .store(1, paddr(8), 1)
           .clflushopt(1, paddr(8))
           .sfence(1);
    TimingConfig config;
    config.model = ModelConfig::px86();
    const Observed seen = observe(builder.trace(), config);
    EXPECT_EQ(seen.dirty_reads, 1u);
}

TEST(PersistRace, FlushEndsTheDirtyEpisode)
{
    TraceBuilder builder;
    builder.store(0, paddr(0), 1)
           .clflush(0, paddr(0))
           .sfence(0)
           .load(1, paddr(0))
           .store(1, paddr(8), 1)
           .clflush(1, paddr(8))
           .sfence(1);
    TimingConfig config;
    config.model = ModelConfig::px86();
    const Observed seen = observe(builder.trace(), config);
    EXPECT_EQ(seen.dirty_reads, 0u);
}

TEST(PersistRace, ForeignOverwriteReportsAndTakesOwnership)
{
    // T1 overwrites T0's dirty line (one dirty_read), then T0 reads
    // it back while dirty under T1 (a second, from the new episode).
    TraceBuilder builder;
    builder.store(0, paddr(0), 1)
           .store(1, paddr(0), 2)
           .load(0, paddr(0));
    TimingConfig config;
    config.model = ModelConfig::px86();
    const Observed seen = observe(builder.trace(), config);
    EXPECT_EQ(seen.dirty_reads, 2u);
}

TEST(PersistRace, DirtyReadReportedOncePerEpisode)
{
    TraceBuilder builder;
    builder.store(0, paddr(0), 1);
    for (int i = 0; i < 8; ++i)
        builder.load(1, paddr(0));
    TimingConfig config;
    config.model = ModelConfig::px86();
    const Observed seen = observe(builder.trace(), config);
    EXPECT_EQ(seen.dirty_reads, 1u);
}

TEST(PersistRace, DirtyReadRuleInertOffPx86)
{
    TraceBuilder builder;
    builder.store(0, paddr(0), 1)
           .load(1, paddr(0));
    const Observed seen = observe(builder);
    EXPECT_EQ(seen.dirty_reads, 0u);
}

TEST(PersistRace, SamplesAreBoundedCountsAreNot)
{
    TraceBuilder builder;
    builder.store(0, paddr(0));
    for (int i = 0; i < 100; ++i) {
        builder.store(0, vaddr(0), 1)
               .load(1, vaddr(0))
               .store(1, paddr(100 + i));
    }
    PersistRaceDetector detector;
    TimingConfig config;
    config.model = ModelConfig::epoch();
    config.plugins.push_back(&detector);
    PersistTimingEngine engine(config);
    builder.trace().replay(engine);
    EXPECT_GT(detector.unorderedPersists(), 20u);
    EXPECT_EQ(detector.samples().size(), 16u);
    EXPECT_NE(detector.format().find("unordered_persist"),
              std::string::npos);
}

TEST(PersistRace, ResetClearsEverything)
{
    TraceBuilder builder;
    builder.store(0, paddr(0))
           .store(0, vaddr(0), 1)
           .load(1, vaddr(0))
           .store(1, paddr(1));
    PersistRaceDetector detector;
    TimingConfig config;
    config.model = ModelConfig::epoch();
    config.plugins.push_back(&detector);
    {
        PersistTimingEngine engine(config);
        builder.trace().replay(engine);
    }
    ASSERT_GT(detector.total(), 0u);
    detector.reset();
    EXPECT_EQ(detector.total(), 0u);
    EXPECT_TRUE(detector.samples().empty());
    // Reusable after reset: same trace, same verdict.
    {
        PersistTimingEngine engine(config);
        builder.trace().replay(engine);
    }
    EXPECT_EQ(detector.unorderedPersists(), 1u);
}

/** Golden fixture directory (exported by tests/CMakeLists.txt). */
std::string
goldenDir()
{
    const char *dir = std::getenv("PERSIM_GOLDEN_DIR");
    EXPECT_NE(dir, nullptr)
        << "PERSIM_GOLDEN_DIR not set (run via ctest)";
    return dir == nullptr ? std::string() : std::string(dir);
}

// The zero-false-positive pin: on every committed fixture under
// every frozen engine configuration, the plugin's unordered-persist
// count must equal the engine's own detect_races ground truth —
// the plugin may neither invent nor drop a race.
TEST(PersistRace, GoldenFixturesMatchEngineGroundTruth)
{
    for (const std::string &name : goldenFixtureNames()) {
        const InMemoryTrace trace =
            readTraceFile(goldenDir() + "/" + name + ".trc");
        for (const test::GoldenConfig &config : goldenConfigs()) {
            const Observed seen = observe(trace, config.timing);
            EXPECT_EQ(seen.unordered, seen.engine_races)
                << name << "/" << config.name;
        }
    }
}

// The properly annotated fixtures are race-free under their native
// configs; the detector must report exactly zero on them.
TEST(PersistRace, NoFalsePositivesOnCleanFixtures)
{
    for (const std::string &name : goldenFixtureNames()) {
        const InMemoryTrace trace =
            readTraceFile(goldenDir() + "/" + name + ".trc");
        TimingConfig config;
        config.model = ModelConfig::epoch();
        const Observed seen = observe(trace, config);
        EXPECT_EQ(seen.unordered, seen.engine_races) << name;
        if (seen.engine_races == 0)
            EXPECT_EQ(seen.unordered, 0u) << name;
    }
}

// Hook-stream identity: the detector must see the same event stream
// (and so produce identical counts) under serial and segment replay,
// for every fixture and a racy hand trace, across jobs values.
TEST(PersistRace, SerialAndSegmentReplayAgree)
{
    for (const std::string &name : goldenFixtureNames()) {
        const InMemoryTrace trace =
            readTraceFile(goldenDir() + "/" + name + ".trc");
        for (const ModelConfig &model :
             {ModelConfig::epoch(), ModelConfig::px86()}) {
            TimingConfig config;
            config.model = model;

            PersistRaceDetector serial;
            config.plugins.assign(1, &serial);
            PersistTimingEngine engine(config);
            trace.replay(engine);

            for (std::uint32_t jobs : {2u, 7u}) {
                PersistRaceDetector segmented;
                config.plugins.assign(1, &segmented);
                SegmentReplayOptions options;
                options.jobs = jobs;
                options.segment_events = 64;
                segmentReplay(trace, config, options);
                EXPECT_EQ(segmented.unorderedPersists(),
                          serial.unorderedPersists())
                    << name << "/" << model.name() << " jobs=" << jobs;
                EXPECT_EQ(segmented.dirtyReads(), serial.dirtyReads())
                    << name << "/" << model.name() << " jobs=" << jobs;
            }
        }
    }
}

} // namespace
} // namespace persim
