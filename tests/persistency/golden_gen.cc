/**
 * @file
 * Generator for the committed golden-replay fixtures.
 *
 * Writes the four trace fixtures under tests/persistency/golden/ and
 * prints the expected-observation table as C++ source, which is
 * pasted into golden_replay_test.cc. Run it only to mint a NEW
 * golden surface (e.g. after an intentional semantic change to the
 * timing engine); for a pure refactor the committed fixtures and
 * numbers must be left untouched so the refactor is proven
 * bit-identical against the pre-refactor engine.
 *
 * Usage: golden_gen <output-dir>
 */

#include <cstdio>
#include <string>

#include "bench_util/queue_workload.hh"
#include "common/rng.hh"
#include "memtrace/trace_io.hh"
#include "tests/persistency/golden_support.hh"

using namespace persim;
using namespace persim::test;

namespace {

/** The queue-workload fixtures, deterministic from their seeds. */
InMemoryTrace
queueFixture(QueueKind kind, AnnotationVariant variant,
             std::uint32_t threads, std::uint64_t inserts,
             std::uint64_t seed)
{
    QueueWorkloadConfig config;
    config.kind = kind;
    config.variant = variant;
    config.threads = threads;
    config.inserts_per_thread = inserts;
    config.seed = seed;
    InMemoryTrace trace;
    runQueueWorkload(config, {&trace});
    return trace;
}

/**
 * A seeded random mixed trace: three threads issuing unaligned
 * persistent and volatile accesses of every size, persist barriers,
 * strands, syncs, markers, and allocation events. Exercises the
 * engine paths the queue workloads do not (piece splitting across
 * 8-byte boundaries, strand resets mid-op, volatile conflict chains).
 */
InMemoryTrace
mixedFixture(std::uint64_t seed, std::uint64_t events)
{
    Rng rng(seed);
    InMemoryTrace trace;
    SeqNum seq = 0;
    constexpr ThreadId threads = 3;
    std::uint64_t next_op = 1;
    auto push = [&trace, &seq](ThreadId tid, EventKind kind, Addr addr,
                               unsigned size, std::uint64_t value,
                               std::uint16_t marker = 0) {
        TraceEvent event;
        event.seq = seq++;
        event.thread = tid;
        event.kind = kind;
        event.addr = addr;
        event.size = static_cast<std::uint8_t>(size);
        event.value = value;
        event.marker = marker;
        trace.onEvent(event);
    };
    for (std::uint64_t i = 0; i < events; ++i) {
        const auto tid = static_cast<ThreadId>(rng.nextBounded(threads));
        const std::uint64_t pick = rng.nextBounded(100);
        const Addr paddr = persistent_base + rng.nextBounded(256);
        const Addr vaddr = volatile_base + rng.nextBounded(128);
        const auto size =
            static_cast<unsigned>(1 + rng.nextBounded(max_access_size));
        if (pick < 35) {
            push(tid, EventKind::Store, paddr, size, rng.next());
        } else if (pick < 50) {
            push(tid, EventKind::Load, paddr, size, 0);
        } else if (pick < 55) {
            push(tid, EventKind::Rmw, paddr, size, rng.next());
        } else if (pick < 65) {
            push(tid, EventKind::Store, vaddr, size, rng.next());
        } else if (pick < 75) {
            push(tid, EventKind::Load, vaddr, size, 0);
        } else if (pick < 87) {
            push(tid, EventKind::PersistBarrier, 0, 0, 0);
        } else if (pick < 92) {
            push(tid, EventKind::NewStrand, 0, 0, 0);
        } else if (pick < 94) {
            push(tid, EventKind::PersistSync, 0, 0, 0);
        } else if (pick < 96) {
            push(tid, EventKind::Marker, 0, 0, next_op++,
                 static_cast<std::uint16_t>(MarkerCode::OpBegin));
        } else if (pick < 98) {
            push(tid, EventKind::Marker, 0, 0, 0,
                 static_cast<std::uint16_t>(MarkerCode::OpEnd));
        } else if (pick < 99) {
            push(tid, EventKind::Marker, 0, 0, 0,
                 static_cast<std::uint16_t>(
                     rng.nextBool() ? MarkerCode::RoleData
                                    : MarkerCode::RoleHead));
        } else {
            push(tid, EventKind::PMalloc, paddr, 0, 64);
        }
    }
    return trace;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc != 2) {
        std::fprintf(stderr, "usage: %s <output-dir>\n", argv[0]);
        return 2;
    }
    const std::string dir = argv[1];

    struct Fixture
    {
        std::string name;
        InMemoryTrace trace;
    };
    std::vector<Fixture> fixtures;
    fixtures.push_back({"cwl1",
                        queueFixture(QueueKind::CopyWhileLocked,
                                     AnnotationVariant::Conservative, 1,
                                     200, 1)});
    fixtures.push_back({"tlc2",
                        queueFixture(QueueKind::TwoLockConcurrent,
                                     AnnotationVariant::Conservative, 2,
                                     60, 7)});
    fixtures.push_back({"strand1",
                        queueFixture(QueueKind::CopyWhileLocked,
                                     AnnotationVariant::Strand, 1, 150,
                                     3)});
    fixtures.push_back({"mixed", mixedFixture(2026, 4000)});

    const auto configs = goldenConfigs();
    std::printf("// Generated by golden_gen; paste into "
                "golden_replay_test.cc.\n");
    std::printf("// fixture, config, critical_path, persists, "
                "coalesced, window_blocked,\n");
    std::printf("// races, barriers, strands, ops, events, log_hash\n");
    for (const Fixture &fixture : fixtures) {
        writeTraceFile(dir + "/" + fixture.name + ".trc", fixture.trace);
        for (const GoldenConfig &config : configs) {
            const GoldenObservation seen =
                observeReplay(fixture.trace, config.timing);
            std::printf("    {\"%s\", \"%s\", %a, %lluu, %lluu, %lluu, "
                        "%lluu,\n     %lluu, %lluu, %lluu, %lluu, "
                        "0x%016llxu},\n",
                        fixture.name.c_str(), config.name,
                        seen.critical_path,
                        static_cast<unsigned long long>(seen.persists),
                        static_cast<unsigned long long>(seen.coalesced),
                        static_cast<unsigned long long>(
                            seen.window_blocked),
                        static_cast<unsigned long long>(seen.races),
                        static_cast<unsigned long long>(seen.barriers),
                        static_cast<unsigned long long>(seen.strands),
                        static_cast<unsigned long long>(seen.ops),
                        static_cast<unsigned long long>(seen.events),
                        static_cast<unsigned long long>(seen.log_hash));
        }
    }
    return 0;
}
