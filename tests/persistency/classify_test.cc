/**
 * @file
 * Constraint classification (Figure 2) and the constraint graph
 * (Figure 1's unsatisfiable cycle).
 */

#include <gtest/gtest.h>

#include "persistency/classify.hh"
#include "persistency/constraint_graph.hh"
#include "tests/support/trace_builder.hh"

namespace persim {
namespace {

using test::paddr;
using test::TraceBuilder;

/** Two hand-annotated "inserts": data words then a head update. */
TraceBuilder
twoInserts()
{
    TraceBuilder builder;
    for (std::uint64_t op = 1; op <= 2; ++op) {
        builder.opBegin(0, op);
        builder.role(0, MarkerCode::RoleData);
        for (std::uint64_t w = 0; w < 3; ++w)
            builder.store(0, paddr(10 * op + w), w);
        builder.barrier(0);
        builder.role(0, MarkerCode::RoleHead);
        builder.store(0, paddr(0), op); // Shared head word.
        builder.barrier(0);
        builder.opEnd(0, op);
    }
    return builder;
}

TEST(Classify, StrictShowsIntraAndInterOpConstraints)
{
    auto builder = twoInserts();
    const auto log = builder.analyzeLog(ModelConfig::strict());
    const auto census = censusOf(log);

    // 8 persists total: 3 data + head, twice.
    EXPECT_EQ(census.total(), 8u);
    // Under strict persistency the data words serialize (class A)...
    EXPECT_EQ(census.of(ConstraintClass::UnnecessaryIntraOp), 4u);
    // ...and each head is bound to its own data (required), while
    // op 2's first data word is bound to op 1 (class B).
    EXPECT_EQ(census.of(ConstraintClass::RequiredDataToHead), 2u);
    EXPECT_EQ(census.of(ConstraintClass::UnnecessaryInterOp), 1u);
    EXPECT_EQ(census.of(ConstraintClass::Unconstrained), 1u);
}

TEST(Classify, EpochRemovesIntraOpSerialization)
{
    auto builder = twoInserts();
    const auto census = censusOf(builder.analyzeLog(ModelConfig::epoch()));
    // Class A disappears: data words are concurrent within an epoch.
    EXPECT_EQ(census.of(ConstraintClass::UnnecessaryIntraOp), 0u);
    EXPECT_EQ(census.of(ConstraintClass::RequiredDataToHead), 2u);
}

TEST(Classify, HeadToHeadIsRequired)
{
    // Make head persists serialize without coalescing by keeping the
    // inter-insert dependence (conservative epochs order op 2's data
    // after op 1's head, so op 2's head cannot merge backward).
    auto builder = twoInserts();
    const auto log = builder.analyzeLog(ModelConfig::epoch());
    const auto census = censusOf(log);
    EXPECT_GE(census.of(ConstraintClass::UnnecessaryInterOp), 1u);
    EXPECT_EQ(census.required() + census.unnecessary() +
              census.of(ConstraintClass::Unconstrained) +
              census.of(ConstraintClass::Coalesced) +
              census.of(ConstraintClass::Other), census.total());
}

TEST(Classify, CoalescedBindingsAreClassified)
{
    TraceBuilder builder;
    builder.opBegin(0, 1)
           .role(0, MarkerCode::RoleHead)
           .store(0, paddr(0), 1)
           .store(0, paddr(0), 2)
           .opEnd(0, 1);
    const auto log = builder.analyzeLog(ModelConfig::epoch());
    const auto census = censusOf(log);
    EXPECT_EQ(census.of(ConstraintClass::Coalesced), 1u);
}

TEST(Classify, UnannotatedPersistsFallIntoOther)
{
    TraceBuilder builder;
    builder.store(0, paddr(0)).barrier(0).store(0, paddr(1));
    const auto log = builder.analyzeLog(ModelConfig::epoch());
    const auto census = censusOf(log);
    EXPECT_EQ(census.of(ConstraintClass::Unconstrained), 1u);
    EXPECT_EQ(census.of(ConstraintClass::Other), 1u);
}

TEST(Classify, NamesAreStable)
{
    EXPECT_STREQ(constraintClassName(ConstraintClass::UnnecessaryIntraOp),
                 "unnecessary_intra_op (A)");
    EXPECT_STREQ(constraintClassName(ConstraintClass::UnnecessaryInterOp),
                 "unnecessary_inter_op (B)");
    const ConstraintCensus census{};
    EXPECT_EQ(census.total(), 0u);
    EXPECT_TRUE(census.render().empty());
}

TEST(ConstraintGraph, AcyclicIsSatisfiable)
{
    ConstraintGraph graph;
    const auto a = graph.addNode("persist A");
    const auto b = graph.addNode("persist B");
    const auto c = graph.addNode("persist C");
    graph.addEdge(a, b);
    graph.addEdge(b, c);
    graph.addEdge(a, c);
    EXPECT_TRUE(graph.satisfiable());
    EXPECT_TRUE(graph.findCycle().empty());
    const auto order = graph.topologicalOrder();
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order.front(), a);
    EXPECT_EQ(order.back(), c);
}

TEST(ConstraintGraph, DetectsCycle)
{
    ConstraintGraph graph;
    const auto a = graph.addNode("a");
    const auto b = graph.addNode("b");
    graph.addEdge(a, b);
    graph.addEdge(b, a);
    EXPECT_FALSE(graph.satisfiable());
    const auto cycle = graph.findCycle();
    ASSERT_GE(cycle.size(), 3u);
    EXPECT_EQ(cycle.front(), cycle.back());
    EXPECT_THROW(graph.topologicalOrder(), FatalError);
}

/**
 * Figure 1: thread 1 reorders store visibility across its persist
 * barrier (persist A ordered before persist B by the barrier, but B's
 * value becomes visible first); thread 2 persists B then A in program
 * order. Persist barriers plus strong persist atomicity then form a
 * cycle: no persist order satisfies all constraints, so a model must
 * either couple persist barriers with store barriers or relax strong
 * persist atomicity.
 */
TEST(ConstraintGraph, Figure1CycleIsUnsatisfiable)
{
    ConstraintGraph graph;
    const auto a1 = graph.addNode("T1 persist A");
    const auto b1 = graph.addNode("T1 persist B");
    const auto b2 = graph.addNode("T2 persist B");
    const auto a2 = graph.addNode("T2 persist A");

    // Persist barriers (program annotations).
    graph.addEdge(a1, b1, "T1 barrier");
    graph.addEdge(b2, a2, "T2 barrier");
    // Strong persist atomicity must agree with store visibility:
    // T1's store to B became visible after T2's (visibility
    // reordered), and T2's store to A after T1's.
    graph.addEdge(b1, b2, "SPA on B");
    graph.addEdge(a2, a1, "SPA on A");

    EXPECT_FALSE(graph.satisfiable());
    const auto explanation = graph.explain();
    EXPECT_NE(explanation.find("unsatisfiable"), std::string::npos);

    // Coupling the persist barrier with a store barrier (T1's stores
    // become visible in order) flips the SPA edge on B and the system
    // becomes satisfiable.
    ConstraintGraph fixed;
    const auto fa1 = fixed.addNode("T1 persist A");
    const auto fb1 = fixed.addNode("T1 persist B");
    const auto fb2 = fixed.addNode("T2 persist B");
    const auto fa2 = fixed.addNode("T2 persist A");
    fixed.addEdge(fa1, fb1, "T1 barrier");
    fixed.addEdge(fb2, fa2, "T2 barrier");
    fixed.addEdge(fb2, fb1, "SPA on B (visibility in order)");
    fixed.addEdge(fa2, fa1, "SPA on A");
    EXPECT_TRUE(fixed.satisfiable());
}

TEST(ConstraintGraph, EdgeValidation)
{
    ConstraintGraph graph;
    const auto a = graph.addNode("a");
    EXPECT_THROW(graph.addEdge(a, 5), FatalError);
    EXPECT_EQ(graph.nodeCount(), 1u);
    EXPECT_EQ(graph.edgeCount(), 0u);
    EXPECT_EQ(graph.label(a), "a");
}

} // namespace
} // namespace persim
