/**
 * @file
 * Replay-throughput regression smoke test (ISSUE 4).
 *
 * Rebuilds the synthetic trace that bench/replay_baseline.cc measures
 * (identical SyntheticTraceConfig defaults), replays it under strict,
 * epoch, strand, and px86 persistency, and fails when the achieved
 * events/sec drops below half of the committed baseline in
 * BENCH_replay.json (env PERSIM_BENCH_BASELINE, wired by
 * tests/CMakeLists.txt to the repo-root copy). The compiled-trace
 * path gets the same treatment plus paired same-run speedup floors
 * against interpreted serial replay (DESIGN.md §17).
 *
 * Wall-clock assertions are inherently machine-sensitive, so this
 * test is NOT part of the default tier-1 suite: it is registered
 * under the ctest `perf` configuration with LABELS perf and a 2x
 * safety factor. Run it via `ctest -C perf -L perf` (scripts/check.sh
 * does, in the release config) after refreshing the baseline with
 * bench/replay_baseline on the same machine.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <thread>

#include "bench/bench_common.hh"
#include "bench_util/bench_report.hh"
#include "bench_util/synthetic_trace.hh"
#include "persistency/compiled_replay.hh"
#include "persistency/segment_replay.hh"
#include "persistency/timing_engine.hh"

using namespace persim;

namespace {

/** Best-of-N replay, mirroring bench/replay_baseline.cc. */
double
bestReplaySeconds(const InMemoryTrace &trace, const ModelConfig &model)
{
    constexpr int reps = 5;
    double best = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
        TimingConfig config;
        config.model = model;
        PersistTimingEngine engine(config);
        bench::Stopwatch watch;
        trace.replay(engine);
        const double wall = watch.seconds();
        if (rep == 0 || wall < best)
            best = wall;
    }
    return best;
}

} // namespace

TEST(PerfReplay, SyntheticTraceHoldsBaselineThroughput)
{
    const char *baseline_path = std::getenv("PERSIM_BENCH_BASELINE");
    ASSERT_NE(baseline_path, nullptr)
        << "PERSIM_BENCH_BASELINE not set (run via ctest -C perf)";
    const std::map<std::string, BenchSample> baseline =
        readBenchJson(baseline_path);

    const InMemoryTrace trace =
        buildSyntheticTrace(SyntheticTraceConfig{});

    struct Model
    {
        const char *name;
        ModelConfig model;
    };
    const Model models[] = {
        {"strict", ModelConfig::strict()},
        {"epoch", ModelConfig::epoch()},
        {"strand", ModelConfig::strand()},
        {"px86", ModelConfig::px86()},
    };
    for (const Model &entry : models) {
        const auto it = baseline.find(std::string("replay/synthetic/") +
                                      entry.name);
        ASSERT_NE(it, baseline.end())
            << "baseline key missing for " << entry.name
            << " (regenerate with bench/replay_baseline)";
        ASSERT_EQ(it->second.events, trace.size())
            << "baseline trace shape changed; regenerate "
            << baseline_path;

        const double wall = bestReplaySeconds(trace, entry.model);
        const double rate = static_cast<double>(trace.size()) / wall;
        const double floor = 0.5 * it->second.events_per_sec;
        std::cout << entry.name << ": " << rate / 1e6
                  << " M events/s (baseline "
                  << it->second.events_per_sec / 1e6 << ", floor "
                  << floor / 1e6 << ")\n";
        EXPECT_GE(rate, floor)
            << entry.name << " replay dropped below 50% of the "
            << "committed baseline; investigate or refresh "
            << baseline_path << " with bench/replay_baseline";
    }
}

namespace {

/** Best-of-5 compiled-path execution (artifact built outside). */
double
bestCompiledSeconds(const CompiledTraceView &view,
                    const TimingConfig &config)
{
    constexpr int reps = 5;
    double best = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
        bench::Stopwatch watch;
        (void)compiledReplay(view, config);
        const double wall = watch.seconds();
        if (rep == 0 || wall < best)
            best = wall;
    }
    return best;
}

} // namespace

/**
 * Compiled-replay speedup gate: executing the persisted micro-op
 * columns must beat interpreted serial replay of the same trace by a
 * wide margin, or the compiled path has lost its reason to exist.
 * Interpreted and compiled are measured back-to-back in this process
 * (paired best-of-5), so the ratio cancels most machine noise; the
 * floors sit under the ratios measured on the baseline machine
 * (strict 4.5x, epoch 4.1x, strand 3.5x via the slot-free fast
 * executor; px86 1.8x via the generic engine-backed executor —
 * see EXPERIMENTS.md):
 *
 *  - strict: >= 4.0x (the headline fast-path gate);
 *  - epoch:  >= 3.4x;
 *  - strand: >= 2.8x (strand resets cost the run-loop more);
 *  - px86:   >= 1.3x (generic path: decode/split/intern savings
 *    only).
 */
TEST(PerfReplay, CompiledReplayBeatsInterpretedSerial)
{
    const InMemoryTrace trace =
        buildSyntheticTrace(SyntheticTraceConfig{});

    struct Gate
    {
        const char *name;
        ModelConfig model;
        double floor;
    };
    const Gate gates[] = {
        {"strict", ModelConfig::strict(), 4.0},
        {"epoch", ModelConfig::epoch(), 3.4},
        {"strand", ModelConfig::strand(), 2.8},
        {"px86", ModelConfig::px86(), 1.3},
    };
    for (const Gate &gate : gates) {
        TimingConfig config;
        config.model = gate.model;
        const double serial = bestReplaySeconds(trace, gate.model);
        const CompiledTrace compiled = compileTrace(
            trace.events().data(), trace.events().size(), config);
        const double fast =
            bestCompiledSeconds(compiled.view(), config);
        const double speedup = serial / fast;
        std::cout << gate.name << ": interpreted " << serial
                  << " s, compiled " << fast << " s, speedup "
                  << speedup << "x (floor " << gate.floor << "x)\n";
        EXPECT_GE(speedup, gate.floor)
            << gate.name
            << " compiled replay lost its edge over interpreted "
            << "serial replay; profile the compiled executor";
    }
}

/**
 * The committed baseline also records absolute compiled throughput
 * ("replay/synthetic/<model>/compiled" rows); hold the same 50%
 * floor the serial rows get so a regression that slows both paths
 * equally (and thus passes the ratio gate) still trips.
 */
TEST(PerfReplay, CompiledThroughputHoldsBaseline)
{
    const char *baseline_path = std::getenv("PERSIM_BENCH_BASELINE");
    ASSERT_NE(baseline_path, nullptr)
        << "PERSIM_BENCH_BASELINE not set (run via ctest -C perf)";
    const std::map<std::string, BenchSample> baseline =
        readBenchJson(baseline_path);

    const InMemoryTrace trace =
        buildSyntheticTrace(SyntheticTraceConfig{});
    const ModelConfig models[] = {
        ModelConfig::strict(), ModelConfig::epoch(),
        ModelConfig::strand(), ModelConfig::px86()};
    for (const ModelConfig &model : models) {
        const auto it = baseline.find(std::string("replay/synthetic/") +
                                      model.name() + "/compiled");
        ASSERT_NE(it, baseline.end())
            << "compiled baseline row missing for " << model.name()
            << " (regenerate with bench/replay_baseline)";
        TimingConfig config;
        config.model = model;
        const CompiledTrace compiled = compileTrace(
            trace.events().data(), trace.events().size(), config);
        const double wall =
            bestCompiledSeconds(compiled.view(), config);
        const double rate = static_cast<double>(trace.size()) / wall;
        const double floor = 0.5 * it->second.events_per_sec;
        std::cout << model.name() << "/compiled: " << rate / 1e6
                  << " M events/s (baseline "
                  << it->second.events_per_sec / 1e6 << ", floor "
                  << floor / 1e6 << ")\n";
        EXPECT_GE(rate, floor)
            << model.name()
            << " compiled replay dropped below 50% of the committed "
            << "baseline; investigate or refresh " << baseline_path;
    }
}

namespace {

/** Best-of-5 segment-parallel replay at @p jobs workers. */
double
bestSegmentReplaySeconds(const InMemoryTrace &trace,
                         const TimingConfig &config, std::uint32_t jobs)
{
    constexpr int reps = 5;
    double best = 0.0;
    TaskPool pool(jobs);
    for (int rep = 0; rep < reps; ++rep) {
        SegmentReplayOptions options;
        options.jobs = jobs;
        options.pool = &pool;
        bench::Stopwatch watch;
        (void)segmentReplay(trace, config, options);
        const double wall = watch.seconds();
        if (rep == 0 || wall < best)
            best = wall;
    }
    return best;
}

} // namespace

/**
 * Scaling gate for intra-trace parallel replay. The parallel section
 * is the segment prep (decode/split/scope-filter/intern) plus the
 * deferred log materialization; the stitch — the timing math itself —
 * stays serial to keep results bit-identical, so the achievable
 * speedup is Amdahl-bounded by the stitch share of serial cost. On
 * the default store-heavy mix the stitch is 35-50% of serial and the
 * ceiling is ~1.2-1.9x whatever the core count (see EXPERIMENTS.md
 * for the measured decomposition) — no honest gate fits there. The
 * gate therefore runs the regime the parallel path exists for:
 * a volatile-dominant (80%) trace under the scope-filtered BPFS
 * model, where the prep decodes and discards most of the stream in
 * parallel, the stitch is ~20% of serial, and the measured ceiling
 * is ~2.5x at j=4 / ~3.3x at j=8. Floors:
 *
 *  - j=4 must beat serial by >=2.0x (needs >=4 hardware threads);
 *  - j=8 must beat serial by >=2.5x (needs >=8 hardware threads).
 *
 * A real regression — a serialized prep, a broken pool, a stitch
 * that re-does decode work — lands at 1x or below, far under either
 * floor. Skips below 4 hardware threads, where the prep cannot fan
 * out wide enough for any floor to be meaningful.
 */
TEST(PerfReplay, ParallelReplayScalingGate)
{
    const unsigned hw = std::thread::hardware_concurrency();
    if (hw < 4)
        GTEST_SKIP() << "needs >= 4 hardware threads, have " << hw;

    SyntheticTraceConfig trace_config;
    trace_config.volatile_pct = 80;
    const InMemoryTrace trace = buildSyntheticTrace(trace_config);
    TimingConfig config;
    config.model = ModelConfig::bpfs();

    const double serial = bestReplaySeconds(trace, config.model);
    const double j4 = bestSegmentReplaySeconds(trace, config, 4);
    std::cout << "parallel replay j4: serial " << serial
              << " s, parallel " << j4 << " s, speedup " << serial / j4
              << "x\n";
    EXPECT_GE(serial / j4, 2.0)
        << "segment-parallel replay at j=4 regressed below the 2x "
        << "floor on this machine";

    if (hw < 8) {
        std::cout << "j8 leg skipped: " << hw
                  << " hardware threads\n";
        return;
    }
    const double j8 = bestSegmentReplaySeconds(trace, config, 8);
    std::cout << "parallel replay j8: parallel " << j8 << " s, speedup "
              << serial / j8 << "x\n";
    EXPECT_GE(serial / j8, 2.5)
        << "segment-parallel replay at j=8 regressed below the 2.5x "
        << "floor on this machine";
}
