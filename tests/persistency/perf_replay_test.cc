/**
 * @file
 * Replay-throughput regression smoke test (ISSUE 4).
 *
 * Rebuilds the synthetic trace that bench/replay_baseline.cc measures
 * (identical SyntheticTraceConfig defaults), replays it under strict,
 * epoch, and strand persistency, and fails when the achieved
 * events/sec drops below half of the committed baseline in
 * BENCH_replay.json (env PERSIM_BENCH_BASELINE, wired by
 * tests/CMakeLists.txt to the repo-root copy).
 *
 * Wall-clock assertions are inherently machine-sensitive, so this
 * test is NOT part of the default tier-1 suite: it is registered
 * under the ctest `perf` configuration with LABELS perf and a 2x
 * safety factor. Run it via `ctest -C perf -L perf` (scripts/check.sh
 * does, in the release config) after refreshing the baseline with
 * bench/replay_baseline on the same machine.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <iostream>
#include <map>
#include <string>

#include "bench/bench_common.hh"
#include "bench_util/bench_report.hh"
#include "bench_util/synthetic_trace.hh"
#include "persistency/timing_engine.hh"

using namespace persim;

namespace {

/** Best-of-N replay, mirroring bench/replay_baseline.cc. */
double
bestReplaySeconds(const InMemoryTrace &trace, const ModelConfig &model)
{
    constexpr int reps = 5;
    double best = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
        TimingConfig config;
        config.model = model;
        PersistTimingEngine engine(config);
        bench::Stopwatch watch;
        trace.replay(engine);
        const double wall = watch.seconds();
        if (rep == 0 || wall < best)
            best = wall;
    }
    return best;
}

} // namespace

TEST(PerfReplay, SyntheticTraceHoldsBaselineThroughput)
{
    const char *baseline_path = std::getenv("PERSIM_BENCH_BASELINE");
    ASSERT_NE(baseline_path, nullptr)
        << "PERSIM_BENCH_BASELINE not set (run via ctest -C perf)";
    const std::map<std::string, BenchSample> baseline =
        readBenchJson(baseline_path);

    const InMemoryTrace trace =
        buildSyntheticTrace(SyntheticTraceConfig{});

    struct Model
    {
        const char *name;
        ModelConfig model;
    };
    const Model models[] = {
        {"strict", ModelConfig::strict()},
        {"epoch", ModelConfig::epoch()},
        {"strand", ModelConfig::strand()},
    };
    for (const Model &entry : models) {
        const auto it = baseline.find(std::string("replay/synthetic/") +
                                      entry.name);
        ASSERT_NE(it, baseline.end())
            << "baseline key missing for " << entry.name
            << " (regenerate with bench/replay_baseline)";
        ASSERT_EQ(it->second.events, trace.size())
            << "baseline trace shape changed; regenerate "
            << baseline_path;

        const double wall = bestReplaySeconds(trace, entry.model);
        const double rate = static_cast<double>(trace.size()) / wall;
        const double floor = 0.5 * it->second.events_per_sec;
        std::cout << entry.name << ": " << rate / 1e6
                  << " M events/s (baseline "
                  << it->second.events_per_sec / 1e6 << ", floor "
                  << floor / 1e6 << ")\n";
        EXPECT_GE(rate, floor)
            << entry.name << " replay dropped below 50% of the "
            << "committed baseline; investigate or refresh "
            << baseline_path << " with bench/replay_baseline";
    }
}
