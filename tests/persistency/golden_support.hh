/**
 * @file
 * Shared definitions of the golden-replay regression surface.
 *
 * The golden tests freeze the timing engine's observable behavior:
 * a fixed set of committed trace fixtures is replayed under a fixed
 * set of engine configurations, and the exact results — critical
 * path, persist/coalesce counters, and an order-sensitive checksum
 * of the full persist log (times, bindings, dependence sets) — must
 * match numbers recorded before any engine refactor. Both the
 * fixture generator (golden_gen) and the regression test
 * (golden_replay_test) use these helpers so the surface cannot
 * drift between them.
 */

#ifndef PERSIM_TESTS_PERSISTENCY_GOLDEN_SUPPORT_HH
#define PERSIM_TESTS_PERSISTENCY_GOLDEN_SUPPORT_HH

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "memtrace/sink.hh"
#include "persistency/timing_engine.hh"

namespace persim::test {

/** One frozen engine configuration applied to every fixture. */
struct GoldenConfig
{
    const char *name;
    TimingConfig timing;
};

/** The frozen configuration matrix (order matters: it is indexed). */
inline std::vector<GoldenConfig>
goldenConfigs()
{
    std::vector<GoldenConfig> configs;
    auto add = [&configs](const char *name, ModelConfig model,
                          auto &&tweak) {
        TimingConfig timing;
        timing.model = model;
        timing.record_log = true;
        tweak(timing);
        configs.push_back({name, timing});
    };
    auto nop = [](TimingConfig &) {};
    add("strict", ModelConfig::strict(), nop);
    add("epoch", ModelConfig::epoch(), nop);
    add("strand", ModelConfig::strand(), nop);
    add("bpfs", ModelConfig::bpfs(), nop);
    add("strict_a64", ModelConfig::strict(), [](TimingConfig &t) {
        t.model.atomic_granularity = 64;
    });
    add("epoch_t64", ModelConfig::epoch(), [](TimingConfig &t) {
        t.model.tracking_granularity = 64;
    });
    add("epoch_w16", ModelConfig::epoch(), [](TimingConfig &t) {
        t.coalesce_window = 16;
    });
    add("epoch_a64_deps", ModelConfig::epoch(), [](TimingConfig &t) {
        t.model.atomic_granularity = 64;
        t.record_deps = true;
    });
    add("epoch_races", ModelConfig::epoch(), [](TimingConfig &t) {
        t.detect_races = true;
    });
    add("epoch_stoch", ModelConfig::epoch(), [](TimingConfig &t) {
        t.clock = ClockMode::Stochastic;
        t.seed = 42;
    });
    return configs;
}

/** Everything a golden comparison pins down for one (fixture, config). */
struct GoldenObservation
{
    double critical_path = 0.0;
    std::uint64_t persists = 0;
    std::uint64_t coalesced = 0;
    std::uint64_t window_blocked = 0;
    std::uint64_t races = 0;
    std::uint64_t barriers = 0;
    std::uint64_t strands = 0;
    std::uint64_t ops = 0;
    std::uint64_t events = 0;
    std::uint64_t log_hash = 0;
};

/** FNV-1a over the bytes of @p v (doubles hashed bit-exactly). */
inline void
fnv1a(std::uint64_t &hash, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        hash ^= (v >> (8 * i)) & 0xff;
        hash *= 0x100000001b3ULL;
    }
}

/**
 * Order-sensitive checksum of the whole persist log: every field of
 * every record, including completion/start times bit-for-bit and the
 * full dependence sets. Two logs hash equal iff the engine made the
 * same timing and coalescing decisions everywhere.
 */
inline std::uint64_t
hashPersistLog(const PersistLog &log)
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (const PersistRecord &record : log) {
        fnv1a(hash, record.id);
        fnv1a(hash, record.seq);
        fnv1a(hash, record.addr);
        fnv1a(hash, record.size);
        fnv1a(hash, record.value);
        fnv1a(hash, std::bit_cast<std::uint64_t>(record.time));
        fnv1a(hash, std::bit_cast<std::uint64_t>(record.start));
        fnv1a(hash, record.thread);
        fnv1a(hash, record.op);
        fnv1a(hash, static_cast<std::uint64_t>(record.role));
        fnv1a(hash, record.binding);
        fnv1a(hash, static_cast<std::uint64_t>(record.binding_source));
        fnv1a(hash, record.deps.size());
        for (const PersistId dep : record.deps)
            fnv1a(hash, dep);
    }
    return hash;
}

/** Replay @p trace under @p config and collect the observation. */
inline GoldenObservation
observeReplay(const InMemoryTrace &trace, const TimingConfig &config)
{
    PersistTimingEngine engine(config);
    trace.replay(engine);
    GoldenObservation seen;
    const TimingResult &result = engine.result();
    seen.critical_path = result.critical_path;
    seen.persists = result.persists;
    seen.coalesced = result.coalesced;
    seen.window_blocked = result.window_blocked;
    seen.races = result.races;
    seen.barriers = result.barriers;
    seen.strands = result.strands;
    seen.ops = result.ops;
    seen.events = result.events;
    seen.log_hash = hashPersistLog(engine.log());
    return seen;
}

/** Names of the committed fixtures, in table order. */
inline std::vector<std::string>
goldenFixtureNames()
{
    return {"cwl1", "tlc2", "strand1", "mixed"};
}

} // namespace persim::test

#endif // PERSIM_TESTS_PERSISTENCY_GOLDEN_SUPPORT_HH
