/**
 * @file
 * Px86 timing-model unit tests: flush/fence result counters, the
 * dirty-line bank (stores persist only when flushed), strong-vs-weak
 * flush ordering, sfence/mfence folding, intra-flush coalescing vs
 * the fresh-group rule across flushes, and the canonical epoch-to-x86
 * compilation of PersistBarrier.
 *
 * These pin the operational semantics at the engine level; the
 * cross-model reachable-state consequences are covered end-to-end by
 * tests/conformance/conformance_test.cc.
 */

#include <gtest/gtest.h>

#include "persistency/timing_engine.hh"
#include "tests/support/trace_builder.hh"

namespace persim {
namespace {

using test::paddr;
using test::TraceBuilder;

/** paddr() slots per 64-byte cache line (slots are 8 bytes). */
constexpr std::uint64_t slots_per_line =
    cache_line_bytes / 8;

TEST(Px86, FlushAndFenceCountersAreTallied)
{
    TraceBuilder builder;
    builder.store(0, paddr(0))
           .clflush(0, paddr(0))
           .clflushopt(0, paddr(slots_per_line))
           .clwb(0, paddr(2 * slots_per_line))
           .sfence(0)
           .mfence(0);
    const auto result = builder.analyze(ModelConfig::px86());
    EXPECT_EQ(result.events, 6u);
    EXPECT_EQ(result.flushes, 3u);
    EXPECT_EQ(result.fences, 2u);
}

TEST(Px86, UnflushedStoreNeverPersists)
{
    TraceBuilder builder;
    builder.store(0, paddr(0), 7);
    const auto result = builder.analyze(ModelConfig::px86());
    EXPECT_EQ(result.persists, 0u);
    EXPECT_EQ(result.unflushed, 1u);
    EXPECT_TRUE(builder.analyzeLog(ModelConfig::px86()).empty());
}

TEST(Px86, FlushPersistsTheDirtyLine)
{
    TraceBuilder builder;
    builder.store(1, paddr(3), 0xabcd, 8).clflush(1, paddr(3));
    const auto result = builder.analyze(ModelConfig::px86());
    EXPECT_EQ(result.persists, 1u);
    EXPECT_EQ(result.unflushed, 0u);

    const auto log = builder.analyzeLog(ModelConfig::px86());
    ASSERT_EQ(log.size(), 1u);
    EXPECT_EQ(log[0].addr, paddr(3));
    EXPECT_EQ(log[0].size, 8u);
    EXPECT_EQ(log[0].value, 0xabcdu);
    EXPECT_EQ(log[0].thread, 1u);
}

TEST(Px86, CleanLineFlushIsANoop)
{
    TraceBuilder builder;
    builder.clflush(0, paddr(0)).clflushopt(0, paddr(0)).sfence(0);
    const auto result = builder.analyze(ModelConfig::px86());
    EXPECT_EQ(result.flushes, 2u);
    EXPECT_EQ(result.persists, 0u);
    EXPECT_EQ(result.unflushed, 0u);
}

TEST(Px86, FlushOnlyCoversItsOwnLine)
{
    // Two dirty lines, one flush: the other line stays unflushed.
    TraceBuilder builder;
    builder.store(0, paddr(0))
           .store(0, paddr(slots_per_line))
           .clflush(0, paddr(0));
    const auto result = builder.analyze(ModelConfig::px86());
    EXPECT_EQ(result.persists, 1u);
    EXPECT_EQ(result.unflushed, 1u);
}

// clflush is strongly ordered: a younger flush (of either kind) on
// another line starts only after it completes.
TEST(Px86, StrongFlushOrdersYoungerFlushes)
{
    TraceBuilder builder;
    builder.store(0, paddr(0))
           .clflush(0, paddr(0))
           .store(0, paddr(slots_per_line))
           .clflushopt(0, paddr(slots_per_line));
    const auto log = builder.analyzeLog(ModelConfig::px86());
    ASSERT_EQ(log.size(), 2u);
    EXPECT_GT(log[1].time, log[0].time);
}

// clflushopt is weak: two unfenced clflushopts of independent lines
// may persist in either order (equal levels, no constraint).
TEST(Px86, WeakFlushesAreUnordered)
{
    TraceBuilder builder;
    builder.store(0, paddr(0))
           .clflushopt(0, paddr(0))
           .store(0, paddr(slots_per_line))
           .clflushopt(0, paddr(slots_per_line));
    const auto log = builder.analyzeLog(ModelConfig::px86());
    ASSERT_EQ(log.size(), 2u);
    EXPECT_EQ(log[0].time, log[1].time);
}

TEST(Px86, SfenceOrdersPriorWeakFlushes)
{
    TraceBuilder builder;
    builder.store(0, paddr(0))
           .clflushopt(0, paddr(0))
           .sfence(0)
           .store(0, paddr(slots_per_line))
           .clflushopt(0, paddr(slots_per_line));
    const auto log = builder.analyzeLog(ModelConfig::px86());
    ASSERT_EQ(log.size(), 2u);
    EXPECT_GT(log[1].time, log[0].time);
}

TEST(Px86, MfenceOrdersLikeSfence)
{
    TraceBuilder sf, mf;
    sf.store(0, paddr(0)).clflushopt(0, paddr(0)).sfence(0)
      .store(0, paddr(slots_per_line))
      .clflushopt(0, paddr(slots_per_line));
    mf.store(0, paddr(0)).clflushopt(0, paddr(0)).mfence(0)
      .store(0, paddr(slots_per_line))
      .clflushopt(0, paddr(slots_per_line));
    const auto a = sf.analyzeLog(ModelConfig::px86());
    const auto b = mf.analyzeLog(ModelConfig::px86());
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].time, b[i].time) << i;
        EXPECT_EQ(a[i].addr, b[i].addr) << i;
    }
}

// Pieces flushed by ONE flush coalesce into a single atomic group.
TEST(Px86, PiecesOfOneFlushCoalesce)
{
    TraceBuilder builder;
    builder.store(0, paddr(0), 1)
           .store(0, paddr(1), 2) // same 64-byte line
           .clflushopt(0, paddr(0));
    const auto result = builder.analyze(ModelConfig::px86());
    EXPECT_EQ(result.persists, 2u);
    EXPECT_EQ(result.coalesced, 1u);
    const auto log = builder.analyzeLog(ModelConfig::px86());
    ASSERT_EQ(log.size(), 2u);
    EXPECT_EQ(log[0].time, log[1].time); // one atomic group
}

// ... but each flush founds a FRESH group: re-dirtying and re-flushing
// the same line must not coalesce into the earlier flush's group,
// otherwise the intermediate per-line crash state disappears.
TEST(Px86, SecondFlushOfALineFoundsAFreshGroup)
{
    TraceBuilder builder;
    builder.store(0, paddr(0), 1)
           .clflushopt(0, paddr(0))
           .store(0, paddr(1), 2) // same line, after the first flush
           .clflushopt(0, paddr(0));
    const auto result = builder.analyze(ModelConfig::px86());
    EXPECT_EQ(result.persists, 2u);
    EXPECT_EQ(result.coalesced, 0u);
    const auto log = builder.analyzeLog(ModelConfig::px86());
    ASSERT_EQ(log.size(), 2u);
    EXPECT_GT(log[1].time, log[0].time); // same-block persist order
}

// Same-line overwrite BEFORE any flush keeps only the newest piece:
// the store buffer/cache holds one value per (addr, size).
TEST(Px86, SameAddressOverwriteKeepsNewestValue)
{
    TraceBuilder builder;
    builder.store(0, paddr(0), 1)
           .store(0, paddr(0), 2)
           .clflush(0, paddr(0));
    const auto log = builder.analyzeLog(ModelConfig::px86());
    ASSERT_EQ(log.size(), 1u);
    EXPECT_EQ(log[0].value, 2u);
}

// Canonical epoch->x86 compilation: a PersistBarrier behaves as
// "flush every dirty line of this thread, then sfence".
TEST(Px86, PersistBarrierCompilesToFlushAllPlusSfence)
{
    TraceBuilder builder;
    builder.store(0, paddr(0))
           .barrier(0)
           .store(0, paddr(slots_per_line))
           .clflushopt(0, paddr(slots_per_line));
    const auto result = builder.analyze(ModelConfig::px86());
    EXPECT_EQ(result.persists, 2u);
    EXPECT_EQ(result.unflushed, 0u);
    EXPECT_EQ(result.barriers, 1u);
    const auto log = builder.analyzeLog(ModelConfig::px86());
    ASSERT_EQ(log.size(), 2u);
    EXPECT_EQ(log[0].addr, paddr(0)); // barrier flushed it
    EXPECT_GT(log[1].time, log[0].time); // and fence-ordered it
}

TEST(Px86, BarrierFlushesOnlyTheIssuingThread)
{
    TraceBuilder builder;
    builder.store(0, paddr(0))
           .store(1, paddr(slots_per_line))
           .barrier(0);
    const auto result = builder.analyze(ModelConfig::px86());
    EXPECT_EQ(result.persists, 1u);
    EXPECT_EQ(result.unflushed, 1u); // thread 1's line is still dirty
}

// Under the SC-persistency models the new events still count but
// sfence/mfence act as persist barriers and flushes are timing-free;
// nothing is ever "unflushed" because stores persist at the store.
TEST(Px86, ScModelsTreatSfenceAsBarrierAndNeverLeaveDirt)
{
    TraceBuilder builder;
    builder.store(0, paddr(0))
           .clflushopt(0, paddr(0))
           .sfence(0)
           .store(0, paddr(slots_per_line));
    const auto result = builder.analyze(ModelConfig::epoch());
    EXPECT_EQ(result.persists, 2u);
    EXPECT_EQ(result.unflushed, 0u);
    EXPECT_EQ(result.flushes, 1u);
    EXPECT_EQ(result.fences, 1u);
    const auto log = builder.analyzeLog(ModelConfig::epoch());
    ASSERT_EQ(log.size(), 2u);
    EXPECT_GT(log[1].time, log[0].time); // sfence == epoch boundary
}

TEST(Px86, ModelPresetNameAndShape)
{
    const ModelConfig model = ModelConfig::px86();
    EXPECT_EQ(model.name(), "px86");
    EXPECT_EQ(model.kind, ModelKind::Px86);
    EXPECT_EQ(model.atomic_granularity, cache_line_bytes);
}

} // namespace
} // namespace persim
