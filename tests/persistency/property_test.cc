/**
 * @file
 * Property tests over randomly generated traces: the model-relaxation
 * hierarchy, granularity monotonicity, coalescing soundness, and
 * persist-log internal consistency must hold on *every* trace, not
 * just the hand-written litmus cases.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "persistency/timing_engine.hh"
#include "recovery/recovery.hh"
#include "tests/support/trace_builder.hh"

namespace persim {
namespace {

using test::paddr;
using test::TraceBuilder;
using test::vaddr;

/** Generate a random multithreaded annotated trace. */
InMemoryTrace
randomTrace(std::uint64_t seed, ThreadId threads = 3,
            std::size_t events_per_thread = 120)
{
    Rng rng(seed);
    TraceBuilder builder;
    std::vector<std::size_t> remaining(threads, events_per_thread);
    std::vector<std::uint64_t> op_counter(threads, 0);
    std::vector<bool> in_op(threads, false);

    auto alive = [&remaining] {
        std::vector<ThreadId> ids;
        for (ThreadId t = 0; t < remaining.size(); ++t)
            if (remaining[t] > 0)
                ids.push_back(t);
        return ids;
    };

    for (auto ids = alive(); !ids.empty(); ids = alive()) {
        const ThreadId tid =
            ids[static_cast<std::size_t>(rng.nextBounded(ids.size()))];
        --remaining[tid];
        const std::uint64_t addr_slot = rng.nextBounded(12);
        switch (rng.nextBounded(10)) {
          case 0:
          case 1:
          case 2:
            builder.store(tid, paddr(addr_slot), rng.next());
            break;
          case 3:
            builder.store(tid, vaddr(addr_slot), rng.next());
            break;
          case 4:
            builder.load(tid, paddr(addr_slot));
            break;
          case 5:
            builder.load(tid, vaddr(addr_slot));
            break;
          case 6:
            builder.rmw(tid, rng.nextBool() ? paddr(addr_slot)
                                            : vaddr(addr_slot),
                        rng.next());
            break;
          case 7:
            builder.barrier(tid);
            break;
          case 8:
            builder.strand(tid);
            break;
          case 9:
            if (in_op[tid]) {
                builder.opEnd(tid, op_counter[tid]);
                in_op[tid] = false;
            } else {
                builder.opBegin(tid, ++op_counter[tid]);
                in_op[tid] = true;
            }
            break;
        }
    }
    InMemoryTrace trace;
    builder.trace().replay(trace);
    return trace;
}

TimingResult
analyze(const InMemoryTrace &trace, const ModelConfig &model,
        ClockMode clock = ClockMode::Levels, std::uint64_t seed = 1)
{
    TimingConfig config;
    config.model = model;
    config.clock = clock;
    config.seed = seed;
    PersistTimingEngine engine(config);
    trace.replay(engine);
    return engine.result();
}

class RandomTraceProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RandomTraceProperty, RelaxationHierarchyHolds)
{
    const auto trace = randomTrace(GetParam());
    const auto strict = analyze(trace, ModelConfig::strict());
    const auto epoch = analyze(trace, ModelConfig::epoch());
    const auto strand = analyze(trace, ModelConfig::strand());
    EXPECT_LE(epoch.critical_path, strict.critical_path);
    EXPECT_LE(strand.critical_path, epoch.critical_path);
    EXPECT_EQ(strict.persists, epoch.persists);
    EXPECT_EQ(strict.persists, strand.persists);
}

TEST_P(RandomTraceProperty, BpfsNeverExceedsEpoch)
{
    const auto trace = randomTrace(GetParam());
    EXPECT_LE(analyze(trace, ModelConfig::bpfs()).critical_path,
              analyze(trace, ModelConfig::epoch()).critical_path);
}

TEST_P(RandomTraceProperty, CoarserTrackingNeverShortensEpochPath)
{
    const auto trace = randomTrace(GetParam());
    double prev = 0.0;
    for (std::uint64_t gran : {8, 64, 256}) {
        ModelConfig model = ModelConfig::epoch();
        model.tracking_granularity = gran;
        const double cp = analyze(trace, model).critical_path;
        EXPECT_GE(cp, prev) << "tracking granularity " << gran;
        prev = cp;
    }
}

TEST_P(RandomTraceProperty, LargerAtomicPersistsNeverLengthenPath)
{
    const auto trace = randomTrace(GetParam());
    double prev = 1e300;
    std::uint64_t prev_coalesced = 0;
    for (std::uint64_t gran : {8, 64, 256}) {
        ModelConfig model = ModelConfig::strict();
        model.atomic_granularity = gran;
        const auto result = analyze(trace, model);
        EXPECT_LE(result.critical_path, prev)
            << "atomic granularity " << gran;
        EXPECT_GE(result.coalesced, prev_coalesced);
        prev = result.critical_path;
        prev_coalesced = result.coalesced;
    }
}

TEST_P(RandomTraceProperty, AnalysisIsDeterministic)
{
    const auto trace = randomTrace(GetParam());
    const auto a = analyze(trace, ModelConfig::epoch());
    const auto b = analyze(trace, ModelConfig::epoch());
    EXPECT_EQ(a.critical_path, b.critical_path);
    EXPECT_EQ(a.coalesced, b.coalesced);
}

TEST_P(RandomTraceProperty, LevelLogIsInternallyConsistent)
{
    const auto trace = randomTrace(GetParam());
    for (const auto &model : {ModelConfig::strict(), ModelConfig::epoch(),
                              ModelConfig::strand(), ModelConfig::bpfs()}) {
        TimingConfig config;
        config.model = model;
        config.record_log = true;
        PersistTimingEngine engine(config);
        trace.replay(engine);
        EXPECT_EQ(verifyLogConsistency(engine.log()), "")
            << "model " << model.name();
    }
}

TEST_P(RandomTraceProperty, StochasticLogIsInternallyConsistent)
{
    const auto trace = randomTrace(GetParam());
    for (const auto &model : {ModelConfig::strict(), ModelConfig::epoch(),
                              ModelConfig::strand()}) {
        const auto log = stochasticLog(trace, model, GetParam() + 17);
        EXPECT_EQ(verifyLogConsistency(log), "") << model.name();
    }
}

TEST_P(RandomTraceProperty, StochasticTimesDominateLevels)
{
    // A stochastic realization respects the same constraint chains,
    // so each persist's completion time is at least proportional to
    // the longest chain... at minimum, the count of persists and
    // coalescing opportunities match structurally: coalesced persists
    // share their predecessor's time in both clocks.
    const auto trace = randomTrace(GetParam());
    TimingConfig level_config;
    level_config.model = ModelConfig::epoch();
    level_config.record_log = true;
    PersistTimingEngine levels(level_config);
    trace.replay(levels);

    const auto stochastic =
        stochasticLog(trace, ModelConfig::epoch(), GetParam() + 3);
    ASSERT_EQ(levels.log().size(), stochastic.size());
    for (std::size_t i = 0; i < stochastic.size(); ++i) {
        EXPECT_EQ(levels.log()[i].addr, stochastic[i].addr);
        EXPECT_EQ(levels.log()[i].value, stochastic[i].value);
    }
}

TEST_P(RandomTraceProperty, PersistCountsMatchTraceContent)
{
    const auto trace = randomTrace(GetParam());
    std::uint64_t expected = 0;
    for (const auto &event : trace.events())
        if (event.isPersist())
            ++expected; // All accesses here are aligned single pieces.
    const auto result = analyze(trace, ModelConfig::epoch());
    EXPECT_EQ(result.persists, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTraceProperty,
                         ::testing::Range<std::uint64_t>(1, 17));

} // namespace
} // namespace persim
