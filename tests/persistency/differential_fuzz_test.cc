/**
 * @file
 * Differential fuzzing of the persist-timing engine (ISSUE 4).
 *
 * Each iteration generates a seeded random multi-threaded program
 * (explore/programs.hh randomProgram), executes it once under a
 * seeded random schedule, and replays the identical trace under
 * strict, epoch, and strand persistency, asserting the refinement
 * invariants that must relate the three analyses:
 *
 *  - critical path: strict >= epoch >= strand (relaxing the model
 *    can only remove ordering constraints);
 *  - identical atomic persist pieces (and counts) under every model;
 *  - every log passes verifyLogConsistency (binding/time/start
 *    well-formedness, per-address monotone persist times);
 *  - the complete cut of every log reconstructs exactly the
 *    simulated persistent memory;
 *  - on strand-free programs, the strand analysis IS the epoch
 *    analysis: the two persist logs must match field for field;
 *  - every consistent cut of every model's persist DAG satisfies the
 *    program's publish invariant (flag[t] <= data[t]).
 *
 * Odd seeds run all three replays through the segment-parallel path
 * (persistency/segment_replay.hh) with seed-varied worker counts and
 * segment sizes, asserted bit-identical to serial replay before the
 * invariants run — so the fuzzer exercises segment compile/stitch
 * boundaries against the same refinement and recovery-image checks.
 *
 * Iteration count comes from PERSIM_FUZZ_ITERS (default 25; the
 * check.sh fuzz stage runs 500). Any failure prints a one-line repro:
 * re-run this binary with PERSIM_FUZZ_SEED=<seed> to replay exactly
 * the failing program and schedule.
 *
 * The harness must also be able to FAIL: the last test replays
 * strand-free programs through a deliberately broken engine
 * (EngineMutant::ElideEpochBarrier) and asserts the fuzzer's
 * invariants catch it — via epoch/strand log divergence and via
 * crash states violating the publish invariant.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "explore/programs.hh"
#include "memtrace/sink.hh"
#include "persistency/persist_race.hh"
#include "persistency/segment_replay.hh"
#include "persistency/timing_engine.hh"
#include "recovery/cuts.hh"
#include "recovery/recovery.hh"
#include "sim/engine.hh"

using namespace persim;

namespace {

std::uint64_t
envU64(const char *name, std::uint64_t fallback)
{
    const char *value = std::getenv(name);
    if (!value || !*value)
        return fallback;
    return std::strtoull(value, nullptr, 10);
}

/** Per-iteration cut-enumeration budget (strand DAGs can be wide). */
constexpr std::uint64_t max_cuts_per_model = 1ULL << 15;

/** Vary program shape with the seed so one run covers the space. */
RandomProgramOptions
optionsFor(std::uint64_t seed)
{
    RandomProgramOptions options;
    options.threads = 2 + static_cast<std::uint32_t>(seed % 2);
    options.ops_per_thread = 10;
    // Every third seed is strand-free, arming the epoch == strand
    // exact-equality invariant (the ElideEpochBarrier catcher).
    options.allow_strands = seed % 3 != 0;
    return options;
}

struct Replay
{
    TimingResult result;
    PersistLog log;
};

/** Field-for-field persist-log equality; mismatch description or "". */
std::string compareLogs(const PersistLog &a, const PersistLog &b);

/**
 * Replay @p trace serially; when @p parallel_seed is nonzero, ALSO
 * replay it through the segment-parallel path (seed-varied worker
 * count and segment size) and assert bit-identical results and logs,
 * so every downstream invariant in checkSeed exercises the
 * segment-merge machinery too.
 */
Replay
replayTrace(const InMemoryTrace &trace, const ModelConfig &model,
            EngineMutant mutant = EngineMutant::None,
            std::uint64_t parallel_seed = 0)
{
    TimingConfig config;
    config.model = model;
    config.record_log = true;
    config.record_deps = true; // checkAllCuts needs full dep sets
    config.mutant = mutant;
    PersistTimingEngine engine(config);
    trace.replay(engine);
    Replay serial{engine.result(), engine.takeLog()};
    if (parallel_seed == 0)
        return serial;

    SegmentReplayOptions options;
    options.jobs = 2 + static_cast<std::uint32_t>(parallel_seed % 3);
    options.segment_events = 16 + parallel_seed % 113;
    Replay parallel;
    parallel.result =
        segmentReplay(trace, config, options, &parallel.log);
    EXPECT_EQ(compareLogs(serial.log, parallel.log), "")
        << "segment-parallel replay diverged from serial";
    EXPECT_EQ(serial.result.critical_path,
              parallel.result.critical_path);
    EXPECT_EQ(serial.result.persists, parallel.result.persists);
    EXPECT_EQ(serial.result.coalesced, parallel.result.coalesced);
    EXPECT_EQ(serial.result.events, parallel.result.events);
    EXPECT_EQ(serial.result.barriers, parallel.result.barriers);
    EXPECT_EQ(serial.result.strands, parallel.result.strands);
    EXPECT_EQ(serial.result.ops, parallel.result.ops);
    EXPECT_EQ(serial.result.flushes, parallel.result.flushes);
    EXPECT_EQ(serial.result.fences, parallel.result.fences);
    EXPECT_EQ(serial.result.unflushed, parallel.result.unflushed);
    return parallel;
}

std::string
compareLogs(const PersistLog &a, const PersistLog &b)
{
    if (a.size() != b.size())
        return "log sizes differ: " + std::to_string(a.size()) + " vs " +
               std::to_string(b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        const PersistRecord &x = a[i];
        const PersistRecord &y = b[i];
        if (x.id != y.id || x.seq != y.seq || x.addr != y.addr ||
            x.size != y.size || x.value != y.value || x.time != y.time ||
            x.start != y.start || x.thread != y.thread || x.op != y.op ||
            x.role != y.role || x.binding != y.binding ||
            x.binding_source != y.binding_source || x.deps != y.deps)
            return "record " + std::to_string(i) + " differs (time " +
                   std::to_string(x.time) + " vs " +
                   std::to_string(y.time) + ")";
    }
    return "";
}

struct FuzzStats
{
    std::uint64_t programs = 0;
    std::uint64_t strand_free = 0;
    std::uint64_t parallel_replays = 0;
    std::uint64_t events = 0;
    std::uint64_t persists = 0;
    std::uint64_t cuts_checked = 0;
    std::uint64_t cut_budget_skips = 0;
};

/** Run one seed through the whole differential harness. */
void
checkSeed(std::uint64_t seed, FuzzStats &stats)
{
    SCOPED_TRACE("repro: PERSIM_FUZZ_SEED=" + std::to_string(seed) +
                 " ./tests/differential_fuzz_test");
    const RandomProgramOptions options = optionsFor(seed);
    ExploreProgram program = randomProgram(seed, options)();

    EngineConfig engine_config = program.engine;
    engine_config.seed = seed;
    InMemoryTrace trace;
    ExecutionEngine sim(engine_config, &trace);
    sim.runSetup(program.setup);
    sim.run(program.workers);

    // Odd seeds route the replays through the segment-parallel path
    // (asserted bit-identical to serial inside replayTrace), so the
    // refinement/recovery invariants below also fuzz segment merging.
    const std::uint64_t pseed = seed % 2 == 1 ? seed : 0;
    if (pseed != 0)
        ++stats.parallel_replays;
    const Replay strict =
        replayTrace(trace, ModelConfig::strict(), EngineMutant::None,
                    pseed);
    const Replay epoch =
        replayTrace(trace, ModelConfig::epoch(), EngineMutant::None,
                    pseed);
    const Replay strand =
        replayTrace(trace, ModelConfig::strand(), EngineMutant::None,
                    pseed);

    // Refinement: each relaxation may only shorten the critical path.
    EXPECT_GE(strict.result.critical_path, epoch.result.critical_path);
    EXPECT_GE(epoch.result.critical_path, strand.result.critical_path);

    // The same trace carries the same atomic persist pieces under
    // every model; only their times (and coalescing) may differ.
    EXPECT_EQ(strict.result.persists, epoch.result.persists);
    EXPECT_EQ(epoch.result.persists, strand.result.persists);
    EXPECT_EQ(strict.log.size(), epoch.log.size());
    EXPECT_EQ(epoch.log.size(), strand.log.size());

    for (const Replay *replay : {&strict, &epoch, &strand}) {
        EXPECT_EQ(verifyLogConsistency(replay->log), "");

        // Complete cut == simulated persistent memory, byte for byte
        // at every persisted location.
        const MemoryImage image = reconstructImage(
            replay->log, std::numeric_limits<double>::infinity());
        for (const PersistRecord &record : replay->log)
            EXPECT_EQ(image.load(record.addr, record.size),
                      sim.debugLoad(record.addr, record.size))
                << "addr " << record.addr;
    }

    // Strand persistency without NewStrand IS epoch persistency.
    if (!options.allow_strands) {
        EXPECT_EQ(strand.result.strands, 0U);
        EXPECT_EQ(compareLogs(epoch.log, strand.log), "");
        ++stats.strand_free;
    }

    // Exhaustive crash-state check: the publish invariant must hold
    // at every consistent cut of every model's persist DAG.
    const RecoveryInvariant invariant = program.invariant();
    for (const Replay *replay : {&strict, &epoch, &strand}) {
        const PersistDag dag = buildPersistDag(replay->log);
        const CutCheckResult cuts =
            checkAllCuts(replay->log, dag, invariant, max_cuts_per_model);
        EXPECT_EQ(cuts.violations, 0U) << cuts.first_violation;
        stats.cuts_checked += cuts.cuts;
        if (cuts.budget_exhausted)
            ++stats.cut_budget_skips;
    }

    ++stats.programs;
    stats.events += trace.size();
    stats.persists += strict.result.persists;
}

} // namespace

TEST(DifferentialFuzz, RandomPrograms)
{
    FuzzStats stats;
    if (const char *pinned = std::getenv("PERSIM_FUZZ_SEED");
        pinned && *pinned) {
        checkSeed(std::strtoull(pinned, nullptr, 10), stats);
    } else {
        const std::uint64_t iters = envU64("PERSIM_FUZZ_ITERS", 25);
        for (std::uint64_t i = 0; i < iters; ++i)
            checkSeed(i + 1, stats);
    }
    std::cout << "fuzz: " << stats.programs << " programs ("
              << stats.strand_free << " strand-free, "
              << stats.parallel_replays
              << " via segment-parallel replay), " << stats.events
              << " events, " << stats.persists << " persists, "
              << stats.cuts_checked << " cuts checked ("
              << stats.cut_budget_skips << " enumerations hit the "
              << "cut budget)\n";
}

/**
 * The Px86 leg (ISSUE 6): flush-enabled random programs executed
 * under TSO and replayed under the operational Px86 model. The SC-leg
 * completeness check (reconstructed image == simulated memory at
 * every persisted location) is deliberately NOT asserted here: under
 * Px86 an unflushed store legitimately never reaches the image, and a
 * flushed line may be re-dirtied later without a covering flush, so
 * the final image may lag simulated memory. What must still hold:
 *
 *  - serial and segment-parallel Px86 replay are bit-identical
 *    (asserted inside replayTrace, including the flush/fence/
 *    unflushed counters);
 *  - the Px86 persist log passes verifyLogConsistency;
 *  - persists + unflushed never exceeds the piece count strict
 *    persists (flush coalescing in the dirty bank may only shrink
 *    it);
 *  - the publish invariant (flag <= data) holds at every consistent
 *    cut: the canonical epoch->x86 compilation of the Publish op
 *    (flush-all + sfence) must be exactly as safe as the epoch
 *    barrier it replaces.
 *
 * Execution stays SC here, like the other legs: under TSO the
 * barrier/visibility decoupling of Section 4.3 makes flag-ahead-of-
 * data cuts legitimately reachable under EVERY model, which would
 * blunt the invariant. The TSO x Px86 interaction is covered by the
 * conformance suite and the store-buffer drain tests instead.
 */
TEST(DifferentialFuzz, Px86FlushPrograms)
{
    FuzzStats stats;
    std::uint64_t unflushed = 0;
    std::uint64_t flushes = 0;
    const std::uint64_t iters = envU64("PERSIM_FUZZ_ITERS", 25);
    for (std::uint64_t i = 0; i < iters; ++i) {
        const std::uint64_t seed = i + 1;
        SCOPED_TRACE("repro: px86 leg, seed " + std::to_string(seed));
        RandomProgramOptions options = optionsFor(seed);
        options.allow_strands = false; // no NewStrand in x86 programs
        options.allow_flushes = true;
        ExploreProgram program = randomProgram(seed, options)();

        EngineConfig engine_config = program.engine;
        engine_config.seed = seed;
        InMemoryTrace trace;
        ExecutionEngine sim(engine_config, &trace);
        sim.runSetup(program.setup);
        sim.run(program.workers);

        const std::uint64_t pseed = seed % 2 == 1 ? seed : 0;
        if (pseed != 0)
            ++stats.parallel_replays;
        const Replay px86 = replayTrace(trace, ModelConfig::px86(),
                                        EngineMutant::None, pseed);
        const Replay strict = replayTrace(trace, ModelConfig::strict());

        EXPECT_EQ(verifyLogConsistency(px86.log), "");
        EXPECT_EQ(px86.result.events, strict.result.events);
        EXPECT_LE(px86.result.persists + px86.result.unflushed,
                  strict.result.persists);
        EXPECT_EQ(px86.log.size(), px86.result.persists);

        const RecoveryInvariant invariant = program.invariant();
        const PersistDag dag = buildPersistDag(px86.log);
        const CutCheckResult cuts = checkAllCuts(
            px86.log, dag, invariant, max_cuts_per_model);
        EXPECT_EQ(cuts.violations, 0U) << cuts.first_violation;
        stats.cuts_checked += cuts.cuts;
        if (cuts.budget_exhausted)
            ++stats.cut_budget_skips;

        ++stats.programs;
        stats.events += trace.size();
        stats.persists += px86.result.persists;
        unflushed += px86.result.unflushed;
        flushes += px86.result.flushes;
    }
    // The corpus must actually exercise the new machinery: flushes
    // that persist something AND stores that stay unflushed.
    EXPECT_GT(stats.persists, 0U);
    EXPECT_GT(unflushed, 0U);
    EXPECT_GT(flushes, 0U);
    std::cout << "fuzz(px86): " << stats.programs << " programs ("
              << stats.parallel_replays
              << " via segment-parallel replay), " << stats.events
              << " events, " << stats.persists << " persists, "
              << unflushed << " unflushed, " << flushes
              << " flushes, " << stats.cuts_checked
              << " cuts checked (" << stats.cut_budget_skips
              << " enumerations hit the cut budget)\n";
}

/**
 * The PersistRace leg (ISSUE 7): attach the PersistRaceDetector to
 * replays of both fuzz corpora and hold it to the engine's ground
 * truth. Rule 1 (UnorderedPersist) independently re-derives the
 * engine's detect_races analysis from the plugin hook stream alone,
 * so plugin count == TimingResult::races must hold EXACTLY on every
 * (program, model) pair — serial and segment-parallel replay alike.
 * The flush-enabled px86 corpus must additionally produce DirtyRead
 * reports (rule 2 has teeth on random flush programs), and the
 * combined corpus must produce unordered races at all (rule 1 is not
 * vacuous).
 */
TEST(DifferentialFuzz, PersistRaceDetectorAgreesWithEngine)
{
    std::uint64_t unordered = 0;
    std::uint64_t dirty_reads = 0;
    std::uint64_t programs = 0;
    const std::uint64_t iters = envU64("PERSIM_FUZZ_ITERS", 25);
    for (std::uint64_t i = 0; i < iters; ++i) {
        const std::uint64_t seed = i + 1;
        for (const bool flush_corpus : {false, true}) {
            SCOPED_TRACE("repro: race leg, seed " + std::to_string(seed) +
                         (flush_corpus ? " (flush corpus)" : ""));
            RandomProgramOptions options = optionsFor(seed);
            if (flush_corpus) {
                options.allow_strands = false;
                options.allow_flushes = true;
            }
            ExploreProgram program = randomProgram(seed, options)();

            EngineConfig engine_config = program.engine;
            engine_config.seed = seed;
            InMemoryTrace trace;
            ExecutionEngine sim(engine_config, &trace);
            sim.runSetup(program.setup);
            sim.run(program.workers);

            const std::vector<ModelConfig> models = flush_corpus
                ? std::vector<ModelConfig>{ModelConfig::px86()}
                : std::vector<ModelConfig>{ModelConfig::strict(),
                                           ModelConfig::epoch(),
                                           ModelConfig::strand()};
            for (const ModelConfig &model : models) {
                PersistRaceDetector detector;
                TimingConfig config;
                config.model = model;
                config.detect_races = true;
                config.plugins.push_back(&detector);

                TimingResult result;
                if (seed % 2 == 1) {
                    SegmentReplayOptions sopts;
                    sopts.jobs =
                        2 + static_cast<std::uint32_t>(seed % 3);
                    sopts.segment_events = 16 + seed % 113;
                    result = segmentReplay(trace, config, sopts, nullptr);
                } else {
                    PersistTimingEngine engine(config);
                    trace.replay(engine);
                    result = engine.result();
                }
                EXPECT_EQ(detector.unorderedPersists(), result.races)
                    << "plugin diverged from engine ground truth";
                unordered += detector.unorderedPersists();
                if (flush_corpus)
                    dirty_reads += detector.dirtyReads();
                else
                    EXPECT_EQ(detector.dirtyReads(), 0U)
                        << "rule 2 must stay inert off px86";
            }
            ++programs;
        }
    }
    EXPECT_GT(unordered, 0U)
        << "corpus never produced an unordered persist; rule 1 is "
           "vacuous";
    EXPECT_GT(dirty_reads, 0U)
        << "flush corpus never produced a dirty read; rule 2 is "
           "vacuous";
    std::cout << "fuzz(race): " << programs << " programs, "
              << unordered << " unordered persists, " << dirty_reads
              << " dirty reads\n";
}

/**
 * The mutant self-check: a broken engine must trip the fuzzer.
 * ElideEpochBarrier drops the barrier fold, so on strand-free
 * programs (1) the epoch log no longer matches the strand log and
 * (2) some consistent cut shows flag ahead of data. Both detectors
 * must fire on at least one of a handful of fixed seeds.
 */
TEST(DifferentialFuzz, CatchesElideEpochBarrierMutant)
{
    std::uint64_t log_divergence = 0;
    std::uint64_t cut_violations = 0;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        RandomProgramOptions options = optionsFor(seed);
        options.allow_strands = false;
        ExploreProgram program = randomProgram(seed, options)();

        EngineConfig engine_config = program.engine;
        engine_config.seed = seed;
        InMemoryTrace trace;
        ExecutionEngine sim(engine_config, &trace);
        sim.runSetup(program.setup);
        sim.run(program.workers);

        const Replay strand = replayTrace(trace, ModelConfig::strand());
        const Replay mutant =
            replayTrace(trace, ModelConfig::epoch(),
                        EngineMutant::ElideEpochBarrier);

        if (!compareLogs(mutant.log, strand.log).empty())
            ++log_divergence;

        const RecoveryInvariant invariant = program.invariant();
        const PersistDag dag = buildPersistDag(mutant.log);
        const CutCheckResult cuts = checkAllCuts(
            mutant.log, dag, invariant, max_cuts_per_model);
        cut_violations += cuts.violations;
    }
    EXPECT_GT(log_divergence, 0U)
        << "mutant engine produced bit-identical logs; the "
           "epoch==strand invariant has no teeth";
    EXPECT_GT(cut_violations, 0U)
        << "mutant engine never violated the publish invariant; the "
           "crash-state check has no teeth";
}
