/**
 * @file
 * The BPFS-variant conflict detection (paper Section 5.2 discussion):
 * BPFS tracks conflicts only within the persistent address space and
 * records only the last *writer* per line, so it cannot detect
 * load-before-store conflicts — effectively detecting conflicts under
 * TSO rather than SC ordering.
 */

#include <gtest/gtest.h>

#include "persistency/timing_engine.hh"
#include "tests/support/trace_builder.hh"

namespace persim {
namespace {

using test::paddr;
using test::TraceBuilder;
using test::vaddr;

TEST(BpfsVariant, PresetConfiguration)
{
    const auto config = ModelConfig::bpfs();
    EXPECT_EQ(config.kind, ModelKind::Epoch);
    EXPECT_EQ(config.conflict_scope, ConflictScope::PersistentOnly);
    EXPECT_FALSE(config.detect_load_before_store);
    EXPECT_NE(config.name().find("ponly"), std::string::npos);
    EXPECT_NE(config.name().find("tso"), std::string::npos);
}

TEST(BpfsVariant, MissesLoadBeforeStoreConflict)
{
    // T0: persist A; barrier; load X (persistent). T1: store X;
    // barrier; persist B. Under SC detection A must precede B; BPFS's
    // last-writer tracking cannot see the load -> store conflict.
    auto build = [] {
        TraceBuilder builder;
        builder.store(0, paddr(0))     // A
               .barrier(0)
               .load(0, paddr(1))      // X (persistent space)
               .store(1, paddr(1), 7)  // conflicting store to X
               .barrier(1)
               .store(1, paddr(2));    // B
        return builder;
    };
    auto sc = build();
    EXPECT_EQ(sc.analyze(ModelConfig::epoch()).critical_path, 3.0);
    auto bpfs = build();
    // B is unordered w.r.t. A; the store to X still serializes after
    // A via its own inheritance... it does not: the only chain was
    // through the load. The critical path collapses.
    EXPECT_LT(bpfs.analyze(ModelConfig::bpfs()).critical_path, 3.0);
}

TEST(BpfsVariant, StillDetectsStoreAfterStoreConflict)
{
    auto build = [] {
        TraceBuilder builder;
        builder.store(0, paddr(0))      // A: level 1.
               .barrier(0)
               .store(0, paddr(1), 1)   // X (persistent): level 2.
               .store(1, paddr(1), 2)   // conflicting store (coalesces
               .barrier(1)              // but inherits level 2).
               .store(1, paddr(2));     // B: level 3.
        return builder;
    };
    auto bpfs = build();
    EXPECT_EQ(bpfs.analyze(ModelConfig::bpfs()).critical_path, 3.0);
}

TEST(BpfsVariant, StillDetectsStoreToLoadConflict)
{
    auto build = [] {
        TraceBuilder builder;
        builder.store(0, paddr(0))     // A: level 1.
               .barrier(0)
               .store(0, paddr(1), 1)  // X: level 2 (persistent).
               .load(1, paddr(1))      // T1 reads X: inherits.
               .barrier(1)
               .store(1, paddr(2));    // B: level 3.
        return builder;
    };
    auto bpfs = build();
    EXPECT_EQ(bpfs.analyze(ModelConfig::bpfs()).critical_path, 3.0);
}

TEST(BpfsVariant, IgnoresVolatileSpaceConflicts)
{
    // Synchronization through a volatile flag orders persists under
    // our epoch persistency but not under BPFS's persistent-only
    // conflict scope.
    auto build = [] {
        TraceBuilder builder;
        builder.store(0, paddr(0))     // A
               .barrier(0)
               .store(0, vaddr(0), 1)  // volatile flag
               .load(1, vaddr(0))
               .barrier(1)
               .store(1, paddr(1));    // B
        return builder;
    };
    auto sc = build();
    EXPECT_EQ(sc.analyze(ModelConfig::epoch()).critical_path, 2.0);
    auto bpfs = build();
    EXPECT_EQ(bpfs.analyze(ModelConfig::bpfs()).critical_path, 1.0);
}

TEST(BpfsVariant, NeverStricterThanEpoch)
{
    // The BPFS variant only *misses* constraints, so its critical
    // path is bounded by our epoch persistency on any trace.
    TraceBuilder builder;
    builder.store(0, paddr(0)).barrier(0)
           .store(0, paddr(1), 1)
           .load(1, paddr(1)).barrier(1)
           .store(1, paddr(2))
           .store(2, vaddr(3), 1)
           .load(0, vaddr(3))
           .barrier(0)
           .store(0, paddr(4));
    const auto epoch = builder.analyze(ModelConfig::epoch());
    const auto bpfs = builder.analyze(ModelConfig::bpfs());
    EXPECT_LE(bpfs.critical_path, epoch.critical_path);
}

TEST(BpfsVariant, LoadBeforeStoreToggleIsIndependent)
{
    // detect_load_before_store=false with full address scope: the
    // volatile-flag handoff still orders (store->load conflict), but
    // a load-then-store handoff does not.
    ModelConfig tso = ModelConfig::epoch();
    tso.detect_load_before_store = false;

    TraceBuilder flag_handoff;
    flag_handoff.store(0, paddr(0)).barrier(0)
                .store(0, vaddr(0), 1)
                .load(1, vaddr(0)).barrier(1)
                .store(1, paddr(1));
    EXPECT_EQ(flag_handoff.analyze(tso).critical_path, 2.0);

    TraceBuilder load_store;
    load_store.store(0, paddr(0)).barrier(0)
              .load(0, vaddr(0))
              .store(1, vaddr(0), 1)
              .barrier(1)
              .store(1, paddr(1));
    EXPECT_EQ(load_store.analyze(tso).critical_path, 1.0);
    EXPECT_EQ(load_store.analyze(ModelConfig::epoch()).critical_path, 2.0);
}

} // namespace
} // namespace persim
