/**
 * @file
 * Sweep helper tests (the library behind Figures 3-5).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>

#include "memtrace/trace_io.hh"
#include "persistency/sweep.hh"
#include "tests/support/trace_builder.hh"

namespace persim {
namespace {

using test::paddr;
using test::TraceBuilder;

InMemoryTrace
contiguousTrace()
{
    TraceBuilder builder;
    for (int i = 0; i < 8; ++i)
        builder.store(0, paddr(i), i);
    InMemoryTrace trace;
    builder.trace().replay(trace);
    return trace;
}

/** A wider multi-thread trace so every model/knob has work to do. */
InMemoryTrace
mixedTrace()
{
    TraceBuilder builder;
    for (int i = 0; i < 64; ++i) {
        const ThreadId tid = i % 3;
        builder.opBegin(tid, i);
        builder.store(tid, paddr(i % 16), i);
        builder.store(tid, paddr(16 + i % 8), i);
        if (i % 4 == 0)
            builder.barrier(tid);
        if (i % 8 == 0)
            builder.strand(tid);
        builder.load(tid, paddr(i % 16));
        builder.opEnd(tid, i);
    }
    InMemoryTrace trace;
    builder.trace().replay(trace);
    return trace;
}

/** Bit-identical TimingResult comparison (the acceptance oracle). */
void
expectSameResults(const std::vector<SweepSeries> &a,
                  const std::vector<SweepSeries> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t s = 0; s < a.size(); ++s) {
        ASSERT_EQ(a[s].points.size(), b[s].points.size());
        for (std::size_t p = 0; p < a[s].points.size(); ++p) {
            const TimingResult &x = a[s].points[p].result;
            const TimingResult &y = b[s].points[p].result;
            EXPECT_EQ(a[s].points[p].value, b[s].points[p].value);
            EXPECT_EQ(x.critical_path, y.critical_path)
                << "series " << s << " point " << p;
            EXPECT_EQ(x.persists, y.persists);
            EXPECT_EQ(x.coalesced, y.coalesced);
            EXPECT_EQ(x.window_blocked, y.window_blocked);
            EXPECT_EQ(x.races, y.races);
            EXPECT_EQ(x.ops, y.ops);
            EXPECT_EQ(x.events, y.events);
            EXPECT_EQ(x.barriers, y.barriers);
            EXPECT_EQ(x.strands, y.strands);
        }
    }
}

TEST(Sweep, GranularitySweepMatchesIndividualRuns)
{
    const auto trace = contiguousTrace();
    const std::vector<std::uint64_t> grans{8, 32, 64};
    const auto series = granularitySweep(
        trace, {ModelConfig::strict(), ModelConfig::epoch()}, grans,
        GranularityKnob::AtomicPersist);
    ASSERT_EQ(series.size(), 2u);
    ASSERT_EQ(series[0].points.size(), 3u);

    // Cross-check one point against a standalone engine.
    ModelConfig model = ModelConfig::strict();
    model.atomic_granularity = 32;
    TimingConfig config;
    config.model = model;
    PersistTimingEngine engine(config);
    trace.replay(engine);
    EXPECT_EQ(series[0].points[1].value, 32u);
    EXPECT_EQ(series[0].points[1].result.critical_path,
              engine.result().critical_path);
}

TEST(Sweep, TrackingKnobSweeps)
{
    const auto trace = contiguousTrace();
    const auto series = granularitySweep(
        trace, {ModelConfig::epoch()}, {8, 256},
        GranularityKnob::Tracking);
    ASSERT_EQ(series.size(), 1u);
    // Coarser tracking can only lengthen the path.
    EXPECT_LE(series[0].points[0].result.critical_path,
              series[0].points[1].result.critical_path);
}

TEST(Sweep, ParallelMatchesSerialBitForBit)
{
    // The acceptance oracle for the task-pool runtime: the parallel
    // sweep (one engine replay per task) must reproduce the serial
    // single-pass FanoutSink results exactly, for every config.
    const auto trace = mixedTrace();
    const std::vector<ModelConfig> models{
        ModelConfig::strict(), ModelConfig::epoch(),
        ModelConfig::strand()};
    const std::vector<std::uint64_t> grans{8, 16, 64, 256};

    for (const auto knob :
         {GranularityKnob::AtomicPersist, GranularityKnob::Tracking}) {
        const auto serial =
            granularitySweep(trace, models, grans, knob);
        SweepOptions parallel;
        parallel.jobs = 4;
        const auto pooled =
            granularitySweep(trace, models, grans, knob, parallel);
        expectSameResults(serial, pooled);
        SweepOptions hardware;
        hardware.jobs = 0; // One worker per hardware thread.
        expectSameResults(
            serial, granularitySweep(trace, models, grans, knob,
                                     hardware));
    }
}

TEST(Sweep, StreamingFileSweepMatchesInMemory)
{
    // granularitySweepFile replays from disk in batched chunks; per
    // engine the event order is identical, so results must match the
    // in-memory sweep exactly — serial and parallel, including a
    // chunk size that doesn't divide the trace evenly.
    const auto trace = mixedTrace();
    const std::string path =
        std::string(::testing::TempDir()) + "persim_sweep_stream.trc";
    writeTraceFile(path, trace);

    const std::vector<ModelConfig> models{ModelConfig::strict(),
                                          ModelConfig::epoch()};
    const std::vector<std::uint64_t> grans{8, 64};
    const auto serial = granularitySweep(
        trace, models, grans, GranularityKnob::AtomicPersist);

    for (const std::uint32_t jobs : {1u, 3u}) {
        SweepOptions options;
        options.jobs = jobs;
        options.chunk_events = 37; // Deliberately uneven.
        expectSameResults(
            serial,
            granularitySweepFile(path, models, grans,
                                 GranularityKnob::AtomicPersist,
                                 options));
    }

    SweepOptions bad;
    bad.chunk_events = 0;
    EXPECT_THROW(granularitySweepFile(path, models, grans,
                                      GranularityKnob::AtomicPersist,
                                      bad),
                 FatalError);
    std::remove(path.c_str());
}

TEST(Sweep, EmptyInputsAreFatal)
{
    const auto trace = contiguousTrace();
    EXPECT_THROW(granularitySweep(trace, {}, {8},
                                  GranularityKnob::Tracking),
                 FatalError);
    EXPECT_THROW(granularitySweep(trace, {ModelConfig::epoch()}, {},
                                  GranularityKnob::Tracking),
                 FatalError);
}

TEST(Sweep, LatencyCurveShape)
{
    // 1000 ops, critical path 2000 persists, 10 M ops/s instruction
    // rate: break-even at 50 ns.
    const auto curve =
        latencyCurve(1000, 2000.0, 1e7, {10.0, 50.0, 100.0, 500.0});
    ASSERT_EQ(curve.size(), 4u);
    EXPECT_FALSE(curve[0].persist_bound);
    EXPECT_DOUBLE_EQ(curve[0].achievable_rate, 1e7);
    EXPECT_DOUBLE_EQ(curve[1].achievable_rate, 1e7); // Exactly even.
    EXPECT_TRUE(curve[2].persist_bound);
    EXPECT_DOUBLE_EQ(curve[2].achievable_rate, 5e6);
    EXPECT_DOUBLE_EQ(curve[3].achievable_rate, 1e6);
}

TEST(Sweep, BreakEvenLatency)
{
    EXPECT_DOUBLE_EQ(breakEvenLatencyNs(1000, 2000.0, 1e7), 50.0);
    EXPECT_TRUE(std::isinf(breakEvenLatencyNs(1000, 0.0, 1e7)));
    EXPECT_THROW(breakEvenLatencyNs(1, 1.0, 0.0), FatalError);
}

TEST(Sweep, LogGrid)
{
    const auto grid = logLatencyGrid(10.0, 1000.0, 2);
    ASSERT_EQ(grid.size(), 5u);
    EXPECT_NEAR(grid[0], 10.0, 1e-9);
    EXPECT_NEAR(grid[2], 100.0, 1e-6);
    EXPECT_NEAR(grid[4], 1000.0, 1e-5);
    EXPECT_THROW(logLatencyGrid(0.0, 10.0, 2), FatalError);
    EXPECT_THROW(logLatencyGrid(10.0, 5.0, 2), FatalError);
    EXPECT_THROW(logLatencyGrid(1.0, 10.0, 0), FatalError);
}

TEST(Sweep, LogGridNeverDropsTheFinalPoint)
{
    // Regression: the grid used to accumulate `e += 1/ppd` in
    // floating point, which can drift past hi and drop the last
    // point for some points_per_decade. Integer step indexing keeps
    // the point count exact and the endpoint on the grid.
    for (unsigned ppd = 1; ppd <= 200; ++ppd) {
        const auto grid = logLatencyGrid(1.0, 1e6, ppd);
        ASSERT_EQ(grid.size(), 6u * ppd + 1u) << "ppd " << ppd;
        EXPECT_NEAR(grid.front(), 1.0, 1e-9) << "ppd " << ppd;
        EXPECT_NEAR(grid.back() / 1e6, 1.0, 1e-9) << "ppd " << ppd;
    }
    // Non-decade endpoints still cover everything at or below hi.
    const auto grid = logLatencyGrid(10.0, 550.0, 4);
    EXPECT_NEAR(grid.front(), 10.0, 1e-9);
    EXPECT_LE(grid.back(), 550.0 * (1.0 + 1e-9));
    ASSERT_EQ(grid.size(), 7u); // floor(log10(55) * 4) + 1.
}

TEST(Sweep, ZeroCriticalPathIsComputeBound)
{
    const auto curve = latencyCurve(100, 0.0, 1e6, {100.0});
    ASSERT_EQ(curve.size(), 1u);
    EXPECT_FALSE(curve[0].persist_bound);
    EXPECT_DOUBLE_EQ(curve[0].achievable_rate, 1e6);
}

} // namespace
} // namespace persim
