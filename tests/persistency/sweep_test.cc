/**
 * @file
 * Sweep helper tests (the library behind Figures 3-5).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "persistency/sweep.hh"
#include "tests/support/trace_builder.hh"

namespace persim {
namespace {

using test::paddr;
using test::TraceBuilder;

InMemoryTrace
contiguousTrace()
{
    TraceBuilder builder;
    for (int i = 0; i < 8; ++i)
        builder.store(0, paddr(i), i);
    InMemoryTrace trace;
    builder.trace().replay(trace);
    return trace;
}

TEST(Sweep, GranularitySweepMatchesIndividualRuns)
{
    const auto trace = contiguousTrace();
    const std::vector<std::uint64_t> grans{8, 32, 64};
    const auto series = granularitySweep(
        trace, {ModelConfig::strict(), ModelConfig::epoch()}, grans,
        GranularityKnob::AtomicPersist);
    ASSERT_EQ(series.size(), 2u);
    ASSERT_EQ(series[0].points.size(), 3u);

    // Cross-check one point against a standalone engine.
    ModelConfig model = ModelConfig::strict();
    model.atomic_granularity = 32;
    TimingConfig config;
    config.model = model;
    PersistTimingEngine engine(config);
    trace.replay(engine);
    EXPECT_EQ(series[0].points[1].value, 32u);
    EXPECT_EQ(series[0].points[1].result.critical_path,
              engine.result().critical_path);
}

TEST(Sweep, TrackingKnobSweeps)
{
    const auto trace = contiguousTrace();
    const auto series = granularitySweep(
        trace, {ModelConfig::epoch()}, {8, 256},
        GranularityKnob::Tracking);
    ASSERT_EQ(series.size(), 1u);
    // Coarser tracking can only lengthen the path.
    EXPECT_LE(series[0].points[0].result.critical_path,
              series[0].points[1].result.critical_path);
}

TEST(Sweep, EmptyInputsAreFatal)
{
    const auto trace = contiguousTrace();
    EXPECT_THROW(granularitySweep(trace, {}, {8},
                                  GranularityKnob::Tracking),
                 FatalError);
    EXPECT_THROW(granularitySweep(trace, {ModelConfig::epoch()}, {},
                                  GranularityKnob::Tracking),
                 FatalError);
}

TEST(Sweep, LatencyCurveShape)
{
    // 1000 ops, critical path 2000 persists, 10 M ops/s instruction
    // rate: break-even at 50 ns.
    const auto curve =
        latencyCurve(1000, 2000.0, 1e7, {10.0, 50.0, 100.0, 500.0});
    ASSERT_EQ(curve.size(), 4u);
    EXPECT_FALSE(curve[0].persist_bound);
    EXPECT_DOUBLE_EQ(curve[0].achievable_rate, 1e7);
    EXPECT_DOUBLE_EQ(curve[1].achievable_rate, 1e7); // Exactly even.
    EXPECT_TRUE(curve[2].persist_bound);
    EXPECT_DOUBLE_EQ(curve[2].achievable_rate, 5e6);
    EXPECT_DOUBLE_EQ(curve[3].achievable_rate, 1e6);
}

TEST(Sweep, BreakEvenLatency)
{
    EXPECT_DOUBLE_EQ(breakEvenLatencyNs(1000, 2000.0, 1e7), 50.0);
    EXPECT_TRUE(std::isinf(breakEvenLatencyNs(1000, 0.0, 1e7)));
    EXPECT_THROW(breakEvenLatencyNs(1, 1.0, 0.0), FatalError);
}

TEST(Sweep, LogGrid)
{
    const auto grid = logLatencyGrid(10.0, 1000.0, 2);
    ASSERT_EQ(grid.size(), 5u);
    EXPECT_NEAR(grid[0], 10.0, 1e-9);
    EXPECT_NEAR(grid[2], 100.0, 1e-6);
    EXPECT_NEAR(grid[4], 1000.0, 1e-5);
    EXPECT_THROW(logLatencyGrid(0.0, 10.0, 2), FatalError);
    EXPECT_THROW(logLatencyGrid(10.0, 5.0, 2), FatalError);
    EXPECT_THROW(logLatencyGrid(1.0, 10.0, 0), FatalError);
}

TEST(Sweep, ZeroCriticalPathIsComputeBound)
{
    const auto curve = latencyCurve(100, 0.0, 1e6, {100.0});
    ASSERT_EQ(curve.size(), 1u);
    EXPECT_FALSE(curve[0].persist_bound);
    EXPECT_DOUBLE_EQ(curve[0].achievable_rate, 1e6);
}

} // namespace
} // namespace persim
