/**
 * @file
 * Test support: hand-construct traces and run timing analyses.
 *
 * Litmus tests express small multi-thread event sequences directly
 * (the builder interleaves them in the order the calls are made,
 * which *is* the SC global order) without going through the
 * execution engine.
 */

#ifndef PERSIM_TESTS_SUPPORT_TRACE_BUILDER_HH
#define PERSIM_TESTS_SUPPORT_TRACE_BUILDER_HH

#include "memtrace/event.hh"
#include "memtrace/sink.hh"
#include "persistency/timing_engine.hh"

namespace persim::test {

/** Convenient persistent/volatile test addresses (8-byte aligned). */
inline Addr
paddr(std::uint64_t slot)
{
    return persistent_base + slot * 8;
}

inline Addr
vaddr(std::uint64_t slot)
{
    return volatile_base + slot * 8;
}

/** Fluent builder of in-memory traces for litmus tests. */
class TraceBuilder
{
  public:
    TraceBuilder &
    load(ThreadId tid, Addr addr, unsigned size = 8)
    {
        push(tid, EventKind::Load, addr, size, 0);
        return *this;
    }

    TraceBuilder &
    store(ThreadId tid, Addr addr, std::uint64_t value = 0,
          unsigned size = 8)
    {
        push(tid, EventKind::Store, addr, size, value);
        return *this;
    }

    TraceBuilder &
    rmw(ThreadId tid, Addr addr, std::uint64_t value = 0,
        unsigned size = 8)
    {
        push(tid, EventKind::Rmw, addr, size, value);
        return *this;
    }

    TraceBuilder &
    barrier(ThreadId tid)
    {
        push(tid, EventKind::PersistBarrier, 0, 0, 0);
        return *this;
    }

    TraceBuilder &
    strand(ThreadId tid)
    {
        push(tid, EventKind::NewStrand, 0, 0, 0);
        return *this;
    }

    TraceBuilder &
    sync(ThreadId tid)
    {
        push(tid, EventKind::PersistSync, 0, 0, 0);
        return *this;
    }

    TraceBuilder &
    clflush(ThreadId tid, Addr addr)
    {
        push(tid, EventKind::CacheFlush, addr, 0, 0);
        return *this;
    }

    TraceBuilder &
    clflushopt(ThreadId tid, Addr addr)
    {
        push(tid, EventKind::CacheFlushOpt, addr, 0, 0);
        return *this;
    }

    TraceBuilder &
    clwb(ThreadId tid, Addr addr)
    {
        push(tid, EventKind::CacheWriteBack, addr, 0, 0);
        return *this;
    }

    TraceBuilder &
    sfence(ThreadId tid)
    {
        push(tid, EventKind::StoreFence, 0, 0, 0);
        return *this;
    }

    TraceBuilder &
    mfence(ThreadId tid)
    {
        push(tid, EventKind::FullFence, 0, 0, 0);
        return *this;
    }

    TraceBuilder &
    opBegin(ThreadId tid, std::uint64_t op)
    {
        push(tid, EventKind::Marker, 0, 0, op,
             static_cast<std::uint16_t>(MarkerCode::OpBegin));
        return *this;
    }

    TraceBuilder &
    opEnd(ThreadId tid, std::uint64_t op)
    {
        push(tid, EventKind::Marker, 0, 0, op,
             static_cast<std::uint16_t>(MarkerCode::OpEnd));
        return *this;
    }

    TraceBuilder &
    role(ThreadId tid, MarkerCode code)
    {
        push(tid, EventKind::Marker, 0, 0, 0,
             static_cast<std::uint16_t>(code));
        return *this;
    }

    const InMemoryTrace &trace() const { return trace_; }

    /** Run a level-clock analysis of the built trace. */
    TimingResult
    analyze(const ModelConfig &model) const
    {
        TimingConfig config;
        config.model = model;
        PersistTimingEngine engine(config);
        trace_.replay(engine);
        return engine.result();
    }

    /** Run a level-clock analysis and return the persist log. */
    PersistLog
    analyzeLog(const ModelConfig &model) const
    {
        TimingConfig config;
        config.model = model;
        config.record_log = true;
        PersistTimingEngine engine(config);
        trace_.replay(engine);
        return engine.takeLog();
    }

  private:
    void
    push(ThreadId tid, EventKind kind, Addr addr, unsigned size,
         std::uint64_t value, std::uint16_t marker = 0)
    {
        TraceEvent event;
        event.seq = seq_++;
        event.thread = tid;
        event.kind = kind;
        event.addr = addr;
        event.size = static_cast<std::uint8_t>(size);
        event.value = value;
        event.marker = marker;
        trace_.onEvent(event);
    }

    InMemoryTrace trace_;
    SeqNum seq_ = 0;
};

} // namespace persim::test

#endif // PERSIM_TESTS_SUPPORT_TRACE_BUILDER_HH
