/**
 * @file
 * PersistentLog tests: the checksummed-record durability protocol.
 * Integrity needs no barriers at all (a torn record never validates);
 * the ordering annotations buy the no-holes property — a durable
 * record implies every earlier record is durable.
 */

#include <gtest/gtest.h>

#include "pstruct/log.hh"
#include "recovery/recovery.hh"

namespace persim {
namespace {

std::vector<std::uint8_t>
bytesFor(std::uint64_t id, std::uint64_t len)
{
    std::vector<std::uint8_t> out(len);
    for (std::uint64_t i = 0; i < len; ++i)
        out[i] = static_cast<std::uint8_t>(id * 131 + i);
    return out;
}

TEST(Log, AppendAndRecoverAll)
{
    ExecutionEngine engine(EngineConfig{}, nullptr);
    auto log = std::make_shared<PersistentLog>();
    engine.runSetup([&log](ThreadCtx &ctx) {
        *log = PersistentLog::create(ctx, {.capacity = 4096}, 1);
    });
    engine.run({[log](ThreadCtx &ctx) {
        for (std::uint64_t id = 1; id <= 10; ++id) {
            const auto payload = bytesFor(id, 10 + id * 3);
            log->append(ctx, 0, payload.data(), payload.size());
        }
        EXPECT_GT(log->tailOffset(ctx), 0u);
    }});

    const auto recovered =
        PersistentLog::recover(engine.memory(), log->layout());
    ASSERT_EQ(recovered.records.size(), 10u);
    for (std::uint64_t id = 1; id <= 10; ++id) {
        EXPECT_EQ(recovered.records[id - 1].seq, id - 1);
        EXPECT_EQ(recovered.records[id - 1].payload,
                  bytesFor(id, 10 + id * 3));
    }
}

TEST(Log, RecoverStopsAtCorruption)
{
    ExecutionEngine engine(EngineConfig{}, nullptr);
    auto log = std::make_shared<PersistentLog>();
    engine.runSetup([&log](ThreadCtx &ctx) {
        *log = PersistentLog::create(ctx, {.capacity = 4096}, 1);
    });
    std::uint64_t third_offset = 0;
    engine.run({[log, &third_offset](ThreadCtx &ctx) {
        for (std::uint64_t id = 1; id <= 5; ++id) {
            const auto payload = bytesFor(id, 24);
            const auto offset =
                log->append(ctx, 0, payload.data(), payload.size());
            if (id == 3)
                third_offset = offset;
        }
    }});

    // Flip a payload byte of record 3 in a copy of the image.
    MemoryImage image;
    std::vector<std::uint8_t> blob(log->layout().capacity);
    engine.memory().readBytes(blob.data(), log->layout().base,
                              blob.size());
    image.writeBytes(log->layout().base, blob.data(), blob.size());
    const Addr victim = log->layout().base + third_offset + 20;
    image.store(victim, 1, image.load(victim, 1) ^ 0xff);

    const auto recovered = PersistentLog::recover(image, log->layout());
    EXPECT_EQ(recovered.records.size(), 2u);
    EXPECT_EQ(recovered.valid_bytes, third_offset);
}

TEST(Log, StalePositionNeverValidates)
{
    // Bytes copied from one log offset to another must not validate:
    // the checksum covers the position.
    ExecutionEngine engine(EngineConfig{}, nullptr);
    auto log = std::make_shared<PersistentLog>();
    engine.runSetup([&log](ThreadCtx &ctx) {
        *log = PersistentLog::create(ctx, {.capacity = 4096}, 1);
    });
    std::uint64_t second_offset = 0;
    engine.run({[log, &second_offset](ThreadCtx &ctx) {
        const auto a = bytesFor(1, 16);
        log->append(ctx, 0, a.data(), a.size());
        const auto b = bytesFor(2, 16);
        second_offset = log->append(ctx, 0, b.data(), b.size());
    }});

    MemoryImage image;
    std::vector<std::uint8_t> blob(log->layout().capacity);
    engine.memory().readBytes(blob.data(), log->layout().base,
                              blob.size());
    image.writeBytes(log->layout().base, blob.data(), blob.size());
    // Overwrite record 2's region with a byte-exact copy of record 1.
    std::vector<std::uint8_t> rec(LogLayout::recordBytes(16));
    engine.memory().readBytes(rec.data(), log->layout().base,
                              rec.size());
    image.writeBytes(log->layout().base + second_offset, rec.data(),
                     rec.size());

    const auto recovered = PersistentLog::recover(image, log->layout());
    EXPECT_EQ(recovered.records.size(), 1u);
}

TEST(Log, FullIsFatalAndEmptyPayloadRejected)
{
    ExecutionEngine engine(EngineConfig{}, nullptr);
    engine.runSetup([](ThreadCtx &ctx) {
        auto log = PersistentLog::create(ctx, {.capacity = 64}, 1);
        const auto payload = bytesFor(1, 24); // 48-byte records.
        log.append(ctx, 0, payload.data(), payload.size());
        EXPECT_THROW(log.append(ctx, 0, payload.data(), payload.size()),
                     FatalError);
        EXPECT_THROW(log.append(ctx, 0, payload.data(), 0), FatalError);
    });
}

/** Run a concurrent append workload; return trace + layout. */
std::pair<InMemoryTrace, LogLayout>
logWorkload(std::uint64_t seed, LogOptions options)
{
    InMemoryTrace trace;
    EngineConfig config;
    config.seed = seed;
    config.quantum = 4;
    ExecutionEngine engine(config, &trace);
    auto log = std::make_shared<PersistentLog>();
    engine.runSetup([&](ThreadCtx &ctx) {
        *log = PersistentLog::create(ctx, options, 3);
    });
    std::vector<ExecutionEngine::WorkerFn> workers;
    for (int t = 0; t < 3; ++t) {
        workers.push_back([log, t](ThreadCtx &ctx) {
            for (std::uint64_t i = 1; i <= 12; ++i) {
                const auto payload = bytesFor(t * 100 + i, 20);
                log->append(ctx, t, payload.data(), payload.size());
            }
        });
    }
    engine.run(workers);
    return {std::move(trace), log->layout()};
}

/** Integrity invariant: whatever validates has correct contents. */
std::string
logIntegrity(const MemoryImage &image, const LogLayout &layout)
{
    const auto recovered = PersistentLog::recover(image, layout);
    for (const auto &record : recovered.records) {
        if (record.payload.size() != 20)
            return "impossible record length";
        const std::uint8_t first = record.payload[0];
        for (std::uint64_t i = 0; i < record.payload.size(); ++i) {
            if (record.payload[i] !=
                static_cast<std::uint8_t>(first + i))
                return "record content no writer produced";
        }
    }
    return "";
}

TEST(Log, IntegrityHoldsEvenWithoutOrderingAnnotations)
{
    // Checksummed records protect integrity with zero barriers: no
    // crash state yields wrong bytes, only shorter prefixes.
    LogOptions options;
    options.capacity = 1 << 16;
    options.omit_order_annotations = true;
    const auto [trace, layout] = logWorkload(5, options);

    InjectionConfig injection;
    injection.model = ModelConfig::strand();
    injection.realizations = 12;
    injection.crashes_per_realization = 48;
    const auto result = injectFailures(
        trace, injection, [&layout = layout](const MemoryImage &image) {
            return logIntegrity(image, layout);
        });
    EXPECT_TRUE(result.ok()) << result.first_violation;
}

/** No-holes: a valid record implies every earlier record is valid. */
bool
hasHole(const MemoryImage &image, const LogLayout &layout,
        std::uint64_t appended_bytes)
{
    // Walk records structurally using known record size (all appends
    // are 20-byte payloads -> 48-byte records) and check validity
    // independently of the prefix scan.
    const std::uint64_t record_bytes = LogLayout::recordBytes(20);
    bool seen_invalid = false;
    for (std::uint64_t pos = 0; pos + record_bytes <= appended_bytes;
         pos += record_bytes) {
        std::uint8_t payload[20];
        image.readBytes(payload, layout.base + pos + 16, 20);
        const std::uint64_t len = image.load(layout.base + pos, 8);
        const std::uint64_t seq = image.load(layout.base + pos + 8, 8);
        const std::uint64_t stored =
            image.load(layout.base + pos + 16 + 24, 8);
        const bool valid = len == 20 && seq == pos / record_bytes &&
            stored == LogLayout::checksum(pos, seq, 20, payload);
        if (!valid) {
            seen_invalid = true;
        } else if (seen_invalid) {
            return true; // Valid after invalid: a hole.
        }
    }
    return false;
}

TEST(Log, OrderingAnnotationsPreventHoles)
{
    LogOptions options;
    options.capacity = 1 << 16;
    const auto [trace, layout] = logWorkload(9, options);
    const std::uint64_t appended = 36 * LogLayout::recordBytes(20);

    Rng rng(77);
    for (int realization = 0; realization < 10; ++realization) {
        const auto log_records =
            stochasticLog(trace, ModelConfig::strand(), rng.next());
        double span = 0.0;
        for (const auto &record : log_records)
            span = std::max(span, record.time);
        for (int crash = 0; crash < 24; ++crash) {
            const auto image = reconstructImage(
                log_records, rng.nextDouble() * span);
            EXPECT_FALSE(hasHole(image, layout, appended));
        }
    }
}

TEST(Log, WithoutAnnotationsHolesAppear)
{
    LogOptions options;
    options.capacity = 1 << 16;
    options.omit_order_annotations = true;
    const auto [trace, layout] = logWorkload(9, options);
    const std::uint64_t appended = 36 * LogLayout::recordBytes(20);

    Rng rng(78);
    bool found_hole = false;
    for (int realization = 0; realization < 20 && !found_hole;
         ++realization) {
        const auto log_records =
            stochasticLog(trace, ModelConfig::strand(), rng.next());
        double span = 0.0;
        for (const auto &record : log_records)
            span = std::max(span, record.time);
        for (int crash = 0; crash < 32 && !found_hole; ++crash) {
            const auto image = reconstructImage(
                log_records, rng.nextDouble() * span);
            found_hole = hasHole(image, layout, appended);
        }
    }
    EXPECT_TRUE(found_hole)
        << "unordered appends should produce durable holes";
}

TEST(Log, StrandAppendsAreNearlyConcurrentYetOrdered)
{
    LogOptions options;
    options.capacity = 1 << 16;
    const auto [trace, layout] = logWorkload(3, options);
    (void)layout;

    PersistTimingEngine strict({.model = ModelConfig::strict()});
    PersistTimingEngine strand({.model = ModelConfig::strand()});
    trace.replay(strict);
    trace.replay(strand);
    // Records chain one level per append under strand persistency
    // (the minimal requirement), far below strict's serialization.
    EXPECT_LT(strand.result().critical_path,
              strict.result().critical_path / 3.0);
    EXPECT_GE(strand.result().critical_path, 36.0);
}

} // namespace
} // namespace persim
