/**
 * @file
 * PersistentHashMap tests: functional behavior, probe-chain edge
 * cases, concurrency across seeds, recovery invariants under crash
 * injection for every persistency model, and the negative case
 * (removing the publish barrier corrupts recovery).
 */

#include <gtest/gtest.h>

#include "pstruct/hash_map.hh"
#include "recovery/recovery.hh"

namespace persim {
namespace {

TEST(HashMap, PutGetEraseBasics)
{
    ExecutionEngine engine(EngineConfig{}, nullptr);
    engine.run({[](ThreadCtx &ctx) {
        auto map = PersistentHashMap::create(ctx, {.buckets = 64}, 1);
        std::uint64_t value = 0;
        EXPECT_FALSE(map.get(ctx, 5, value));
        EXPECT_EQ(map.put(ctx, 0, 5, 500), PutStatus::Inserted);
        ASSERT_TRUE(map.get(ctx, 5, value));
        EXPECT_EQ(value, 500u);
        EXPECT_EQ(map.put(ctx, 0, 5, 501), PutStatus::Updated);
        ASSERT_TRUE(map.get(ctx, 5, value));
        EXPECT_EQ(value, 501u);
        EXPECT_EQ(map.count(ctx), 1u);
        EXPECT_TRUE(map.erase(ctx, 0, 5));
        EXPECT_FALSE(map.get(ctx, 5, value));
        EXPECT_FALSE(map.erase(ctx, 0, 5));
        EXPECT_EQ(map.count(ctx), 0u);
    }});
}

TEST(HashMap, ManyKeysWithCollisions)
{
    ExecutionEngine engine(EngineConfig{}, nullptr);
    engine.run({[](ThreadCtx &ctx) {
        // Tiny table: heavy collisions and wraparound probing.
        auto map = PersistentHashMap::create(ctx, {.buckets = 32}, 1);
        for (std::uint64_t key = 1; key <= 24; ++key)
            EXPECT_EQ(map.put(ctx, 0, key, key * 10),
                      PutStatus::Inserted);
        EXPECT_EQ(map.count(ctx), 24u);
        std::uint64_t value = 0;
        for (std::uint64_t key = 1; key <= 24; ++key) {
            ASSERT_TRUE(map.get(ctx, key, value)) << key;
            EXPECT_EQ(value, key * 10);
        }
        EXPECT_FALSE(map.get(ctx, 99, value));
    }});
}

TEST(HashMap, TombstoneReuseKeepsChainsIntact)
{
    ExecutionEngine engine(EngineConfig{}, nullptr);
    engine.run({[](ThreadCtx &ctx) {
        auto map = PersistentHashMap::create(ctx, {.buckets = 8}, 1);
        // Fill a chain, delete the middle, ensure later keys stay
        // reachable and the tombstone is reused.
        for (std::uint64_t key = 1; key <= 6; ++key)
            EXPECT_EQ(map.put(ctx, 0, key, key), PutStatus::Inserted);
        EXPECT_TRUE(map.erase(ctx, 0, 3));
        std::uint64_t value = 0;
        for (std::uint64_t key : {1, 2, 4, 5, 6})
            EXPECT_TRUE(map.get(ctx, key, value)) << key;
        // Should reuse the tombstone.
        EXPECT_EQ(map.put(ctx, 0, 7, 70), PutStatus::Inserted);
        EXPECT_TRUE(map.get(ctx, 7, value));
        EXPECT_EQ(value, 70u);
        EXPECT_EQ(map.count(ctx), 6u);
    }});
}

TEST(HashMap, FullTableReturnsRecoverableStatus)
{
    ExecutionEngine engine(EngineConfig{}, nullptr);
    engine.run({[](ThreadCtx &ctx) {
        auto map = PersistentHashMap::create(ctx, {.buckets = 4}, 1);
        for (std::uint64_t key = 1; key <= 4; ++key)
            EXPECT_EQ(map.put(ctx, 0, key, key), PutStatus::Inserted);
        // Full table: rejected, nothing written, map still usable.
        EXPECT_EQ(map.put(ctx, 0, 5, 5), PutStatus::TableFull);
        EXPECT_EQ(map.count(ctx), 4u);
        std::uint64_t value = 0;
        EXPECT_FALSE(map.get(ctx, 5, value));
        // Existing keys still update and erase fine.
        EXPECT_EQ(map.put(ctx, 0, 2, 22), PutStatus::Updated);
        EXPECT_TRUE(map.erase(ctx, 0, 3));
        // Freeing a bucket makes inserts succeed again.
        EXPECT_EQ(map.put(ctx, 0, 5, 5), PutStatus::Inserted);
        EXPECT_STREQ(putStatusName(PutStatus::TableFull), "table-full");
    }});
}

TEST(HashMap, ZeroKeyRejected)
{
    ExecutionEngine engine(EngineConfig{}, nullptr);
    EXPECT_THROW(engine.run({[](ThreadCtx &ctx) {
        auto map = PersistentHashMap::create(ctx, {.buckets = 8}, 1);
        (void)map.put(ctx, 0, 0, 1);
    }}), FatalError);
}

TEST(HashMap, BadGeometryRejected)
{
    ExecutionEngine engine(EngineConfig{}, nullptr);
    engine.runSetup([](ThreadCtx &ctx) {
        EXPECT_THROW(PersistentHashMap::create(ctx, {.buckets = 20}, 1),
                     FatalError);
        EXPECT_THROW(PersistentHashMap::create(ctx, {.buckets = 8}, 0),
                     FatalError);
    });
}

TEST(HashMap, ConcurrentWritersAcrossSeeds)
{
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        EngineConfig config;
        config.seed = seed;
        config.quantum = 3;
        ExecutionEngine engine(config, nullptr);
        auto map = std::make_shared<PersistentHashMap>();
        engine.runSetup([&map](ThreadCtx &ctx) {
            *map = PersistentHashMap::create(ctx, {.buckets = 256}, 4);
        });
        std::vector<ExecutionEngine::WorkerFn> workers;
        for (int t = 0; t < 4; ++t) {
            workers.push_back([map, t](ThreadCtx &ctx) {
                for (std::uint64_t i = 1; i <= 25; ++i) {
                    const std::uint64_t key = t * 100 + i;
                    EXPECT_EQ(map->put(ctx, t, key, key * 7),
                              PutStatus::Inserted);
                    if (i % 5 == 0)
                        EXPECT_TRUE(map->erase(ctx, t, key));
                }
                std::uint64_t value = 0;
                EXPECT_TRUE(map->get(ctx, t * 100 + 1, value));
            });
        }
        engine.run(workers);
    }
}

/** Build a concurrent workload and return its trace + layout. */
std::pair<InMemoryTrace, HashMapLayout>
mapWorkload(std::uint64_t seed, HashMapOptions options)
{
    InMemoryTrace trace;
    EngineConfig config;
    config.seed = seed;
    config.quantum = 4;
    ExecutionEngine engine(config, &trace);
    auto map = std::make_shared<PersistentHashMap>();
    engine.runSetup([&map, &options](ThreadCtx &ctx) {
        *map = PersistentHashMap::create(ctx, options, 3);
    });
    std::vector<ExecutionEngine::WorkerFn> workers;
    for (int t = 0; t < 3; ++t) {
        workers.push_back([map, t](ThreadCtx &ctx) {
            for (std::uint64_t i = 1; i <= 15; ++i) {
                const std::uint64_t key = t * 50 + i;
                (void)map->put(ctx, t, key, key * 1000 + 1);
                if (i % 3 == 0) // Update.
                    (void)map->put(ctx, t, key, key * 1000 + 2);
                if (i % 4 == 0)
                    map->erase(ctx, t, key);
            }
        });
    }
    engine.run(workers);
    return {std::move(trace), map->layout()};
}

/** Recovery invariant: structure parses and values are plausible. */
std::string
mapInvariant(const MemoryImage &image, const HashMapLayout &layout)
{
    const auto recovered = PersistentHashMap::recover(image, layout);
    if (!recovered.ok)
        return recovered.error;
    for (const auto &[key, value] : recovered.entries) {
        if (value != key * 1000 + 1 && value != key * 1000 + 2)
            return "key " + std::to_string(key) +
                " has a value no writer wrote";
    }
    return "";
}

struct MapInjectionCase
{
    ModelConfig model;
    const char *name;
};

class HashMapInjection
    : public ::testing::TestWithParam<MapInjectionCase>
{
};

TEST_P(HashMapInjection, CrashStatesRecover)
{
    HashMapOptions options;
    options.buckets = 128;
    options.use_strands = true;
    const auto [trace, layout] = mapWorkload(7, options);

    InjectionConfig injection;
    injection.model = GetParam().model;
    injection.realizations = 8;
    injection.crashes_per_realization = 48;
    const auto result = injectFailures(
        trace, injection, [&layout](const MemoryImage &image) {
            return mapInvariant(image, layout);
        });
    EXPECT_TRUE(result.ok())
        << GetParam().name << ": " << result.first_violation;
}

INSTANTIATE_TEST_SUITE_P(
    Models, HashMapInjection,
    ::testing::Values(
        MapInjectionCase{ModelConfig::strict(), "strict"},
        MapInjectionCase{ModelConfig::epoch(), "epoch"},
        MapInjectionCase{ModelConfig::strand(), "strand"}),
    [](const ::testing::TestParamInfo<MapInjectionCase> &info) {
        return std::string(info.param.name);
    });

TEST(HashMapNegative, OmittingPublishBarrierCorruptsRecovery)
{
    HashMapOptions options;
    options.buckets = 128;
    options.use_strands = true;
    options.omit_publish_barrier = true;
    const auto [trace, layout] = mapWorkload(11, options);

    InjectionConfig injection;
    injection.model = ModelConfig::strand();
    injection.realizations = 24;
    injection.crashes_per_realization = 64;
    const auto result = injectFailures(
        trace, injection, [&layout = layout](const MemoryImage &image) {
            return mapInvariant(image, layout);
        });
    EXPECT_GT(result.violations, 0u)
        << "the publish barrier should be load-bearing";
}

TEST(HashMapNegative, RecoverDetectsHandcraftedCorruption)
{
    HashMapLayout layout;
    layout.table = persistent_base;
    layout.buckets = 8;

    // Duplicate live key (in its home bucket and the next probe slot,
    // so the surviving copy stays reachable).
    {
        MemoryImage image;
        const std::uint64_t home =
            PersistentHashMap::hashIndex(42, layout.buckets);
        for (std::uint64_t i : {home, home + 1}) {
            image.store(layout.bucketAddr(i) + HashMapLayout::key_off,
                        8, 42);
            image.store(layout.bucketAddr(i) + HashMapLayout::state_off,
                        8, HashMapLayout::state_live);
        }
        const auto result = PersistentHashMap::recover(image, layout);
        EXPECT_FALSE(result.ok);
        EXPECT_NE(result.error.find("two buckets"), std::string::npos);
        ASSERT_EQ(result.faults.size(), 1u);
        EXPECT_EQ(result.faults[0].kind, BucketFaultKind::DuplicateKey);
        // The first occurrence keeps its entry.
        EXPECT_EQ(result.entries.count(42), 1u);
    }
    // Zero live key.
    {
        MemoryImage image;
        image.store(layout.bucketAddr(3) + HashMapLayout::state_off, 8,
                    HashMapLayout::state_live);
        const auto result = PersistentHashMap::recover(image, layout);
        EXPECT_FALSE(result.ok);
        EXPECT_NE(result.error.find("zero key"), std::string::npos);
        ASSERT_EQ(result.faults.size(), 1u);
        EXPECT_EQ(result.faults[0].kind, BucketFaultKind::ZeroKey);
        EXPECT_EQ(result.faults[0].bucket, 3u);
    }
    // Invalid state.
    {
        MemoryImage image;
        image.store(layout.bucketAddr(2) + HashMapLayout::state_off, 8,
                    77);
        const auto result = PersistentHashMap::recover(image, layout);
        EXPECT_FALSE(result.ok);
        EXPECT_NE(result.error.find("invalid state"), std::string::npos);
        ASSERT_EQ(result.faults.size(), 1u);
        EXPECT_EQ(result.faults[0].kind, BucketFaultKind::InvalidState);
    }
    // Unreachable live key (empty bucket breaks its probe chain).
    {
        MemoryImage image;
        const std::uint64_t key = 42;
        const std::uint64_t home =
            PersistentHashMap::hashIndex(key, layout.buckets);
        const std::uint64_t far = (home + 3) & (layout.buckets - 1);
        image.store(layout.bucketAddr(far) + HashMapLayout::key_off, 8,
                    key);
        image.store(layout.bucketAddr(far) + HashMapLayout::state_off, 8,
                    HashMapLayout::state_live);
        const auto result = PersistentHashMap::recover(image, layout);
        EXPECT_FALSE(result.ok);
        EXPECT_NE(result.error.find("unreachable"), std::string::npos);
        ASSERT_EQ(result.faults.size(), 1u);
        EXPECT_EQ(result.faults[0].kind, BucketFaultKind::Unreachable);
        // Unreachable entries are not served in degraded mode.
        EXPECT_EQ(result.entries.count(key), 0u);
    }
    // A clean image parses.
    {
        MemoryImage image;
        const std::uint64_t key = 42;
        const std::uint64_t home =
            PersistentHashMap::hashIndex(key, layout.buckets);
        image.store(layout.bucketAddr(home) + HashMapLayout::key_off, 8,
                    key);
        image.store(layout.bucketAddr(home) + HashMapLayout::value_off,
                    8, 9);
        image.store(layout.bucketAddr(home) + HashMapLayout::state_off,
                    8, HashMapLayout::state_live);
        const auto result = PersistentHashMap::recover(image, layout);
        ASSERT_TRUE(result.ok) << result.error;
        EXPECT_TRUE(result.faults.empty());
        EXPECT_EQ(result.entries.at(key), 9u);
    }
}

TEST(HashMapNegative, RecoverCollectsEveryFaultWithItsCause)
{
    HashMapLayout layout;
    layout.table = persistent_base;
    layout.buckets = 8;

    // One image with three independent faults: recovery must report
    // all of them (not stop at the first) and still serve the healthy
    // entries.
    MemoryImage image;
    image.store(layout.bucketAddr(2) + HashMapLayout::state_off, 8, 77);
    image.store(layout.bucketAddr(3) + HashMapLayout::state_off, 8,
                HashMapLayout::state_live); // Zero key.
    // Key 42 hashes to bucket 4; duplicate it in its home bucket and
    // the next probe slot so the home copy stays valid and reachable.
    const std::uint64_t dup_key = 42;
    const std::uint64_t dup_home =
        PersistentHashMap::hashIndex(dup_key, layout.buckets);
    ASSERT_EQ(dup_home, 4u);
    for (std::uint64_t i : {dup_home, dup_home + 1}) {
        image.store(layout.bucketAddr(i) + HashMapLayout::key_off, 8,
                    dup_key);
        image.store(layout.bucketAddr(i) + HashMapLayout::value_off, 8,
                    420 + i);
        image.store(layout.bucketAddr(i) + HashMapLayout::state_off, 8,
                    HashMapLayout::state_live);
    }
    // Key 19 hashes to bucket 1, away from all faulted chains.
    const std::uint64_t good_key = 19;
    const std::uint64_t home =
        PersistentHashMap::hashIndex(good_key, layout.buckets);
    ASSERT_EQ(home, 1u);
    image.store(layout.bucketAddr(home) + HashMapLayout::key_off, 8,
                good_key);
    image.store(layout.bucketAddr(home) + HashMapLayout::value_off, 8,
                90);
    image.store(layout.bucketAddr(home) + HashMapLayout::state_off, 8,
                HashMapLayout::state_live);

    const auto result = PersistentHashMap::recover(image, layout);
    EXPECT_FALSE(result.ok);
    ASSERT_EQ(result.faults.size(), 3u);
    EXPECT_EQ(result.faultCount(BucketFaultKind::InvalidState), 1u);
    EXPECT_EQ(result.faultCount(BucketFaultKind::ZeroKey), 1u);
    EXPECT_EQ(result.faultCount(BucketFaultKind::DuplicateKey), 1u);
    // `error` still summarizes the first fault for old callers.
    EXPECT_FALSE(result.error.empty());
    // Healthy entries are still served in degraded mode; the dup key
    // keeps its first (home-bucket) value.
    EXPECT_EQ(result.entries.at(good_key), 90u);
    EXPECT_EQ(result.entries.at(dup_key), 420u + dup_home);
}

TEST(HashMap, PersistConcurrencyUnderStrand)
{
    // The strand-annotated map persists almost entirely concurrently.
    HashMapOptions options;
    options.buckets = 256;
    const auto [trace, layout] = mapWorkload(3, options);
    (void)layout;

    PersistTimingEngine strict({.model = ModelConfig::strict()});
    PersistTimingEngine strand({.model = ModelConfig::strand()});
    trace.replay(strict);
    InMemoryTrace copy;
    trace.replay(copy);
    copy.replay(strand);
    EXPECT_LT(strand.result().critical_path,
              strict.result().critical_path / 4.0);
}

} // namespace
} // namespace persim
