/**
 * @file
 * Tests for traced and native locks: mutual exclusion under many
 * random interleavings, FIFO admission, and trace visibility.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "memtrace/sink.hh"
#include "memtrace/trace_stats.hh"
#include "sim/engine.hh"
#include "sync/locks.hh"
#include "sync/native_locks.hh"

namespace persim {
namespace {

/**
 * Run @p threads simulated threads that each increment a shared
 * counter @p iterations times under the lock built by @p make_locker;
 * a lost update indicates broken mutual exclusion.
 */
template <typename MakeLocker>
void
checkMutualExclusion(int threads, int iterations, std::uint64_t seed,
                     MakeLocker make_locker)
{
    EngineConfig config;
    config.seed = seed;
    config.quantum = 3;
    ExecutionEngine engine(config, nullptr);

    Addr counter = 0;
    // make_locker(setup_ctx) returns lock(ctx, slot)/unlock(ctx, slot).
    auto lockers = std::make_shared<
        std::pair<std::function<void(ThreadCtx &, int)>,
                  std::function<void(ThreadCtx &, int)>>>();
    engine.runSetup([&](ThreadCtx &ctx) {
        counter = ctx.vmalloc(8);
        ctx.store(counter, 0);
        *lockers = make_locker(ctx, threads);
    });

    std::vector<ExecutionEngine::WorkerFn> workers;
    for (int t = 0; t < threads; ++t) {
        workers.push_back([=](ThreadCtx &ctx) {
            for (int i = 0; i < iterations; ++i) {
                lockers->first(ctx, t);
                // Deliberately racy increment (load, then store): only
                // mutual exclusion protects it.
                const std::uint64_t v = ctx.load(counter);
                ctx.store(counter, v + 1);
                lockers->second(ctx, t);
            }
        });
    }
    engine.run(workers);
    EXPECT_EQ(engine.debugLoad(counter),
              static_cast<std::uint64_t>(threads) * iterations);
}

TEST(McsLock, MutualExclusionUnderRandomSchedules)
{
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        checkMutualExclusion(4, 20, seed, [](ThreadCtx &ctx, int threads) {
            auto lock = std::make_shared<McsLock>(McsLock::create(ctx));
            auto qnodes = std::make_shared<std::vector<Addr>>();
            for (int i = 0; i < threads; ++i)
                qnodes->push_back(McsLock::createQnode(ctx));
            return std::make_pair(
                std::function<void(ThreadCtx &, int)>(
                    [lock, qnodes](ThreadCtx &c, int slot) {
                        lock->lock(c, (*qnodes)[slot]);
                    }),
                std::function<void(ThreadCtx &, int)>(
                    [lock, qnodes](ThreadCtx &c, int slot) {
                        lock->unlock(c, (*qnodes)[slot]);
                    }));
        });
    }
}

TEST(TicketLock, MutualExclusionUnderRandomSchedules)
{
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        checkMutualExclusion(4, 20, seed, [](ThreadCtx &ctx, int) {
            auto lock =
                std::make_shared<TicketLock>(TicketLock::create(ctx));
            return std::make_pair(
                std::function<void(ThreadCtx &, int)>(
                    [lock](ThreadCtx &c, int) { lock->lock(c); }),
                std::function<void(ThreadCtx &, int)>(
                    [lock](ThreadCtx &c, int) { lock->unlock(c); }));
        });
    }
}

TEST(SpinLock, MutualExclusionUnderRandomSchedules)
{
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        checkMutualExclusion(4, 20, seed, [](ThreadCtx &ctx, int) {
            auto lock = std::make_shared<SpinLock>(SpinLock::create(ctx));
            return std::make_pair(
                std::function<void(ThreadCtx &, int)>(
                    [lock](ThreadCtx &c, int) { lock->lock(c); }),
                std::function<void(ThreadCtx &, int)>(
                    [lock](ThreadCtx &c, int) { lock->unlock(c); }));
        });
    }
}

TEST(McsLock, SingleThreadLockUnlock)
{
    EngineConfig config;
    ExecutionEngine engine(config, nullptr);
    engine.run({[](ThreadCtx &ctx) {
        McsLock lock = McsLock::create(ctx);
        const Addr qnode = McsLock::createQnode(ctx);
        for (int i = 0; i < 10; ++i) {
            lock.lock(ctx, qnode);
            lock.unlock(ctx, qnode);
        }
        // Tail must be free again.
        EXPECT_EQ(ctx.load(lock.tailAddr()), 0u);
    }});
}

TEST(McsLock, GuardIsRaii)
{
    EngineConfig config;
    ExecutionEngine engine(config, nullptr);
    engine.run({[](ThreadCtx &ctx) {
        McsLock lock = McsLock::create(ctx);
        const Addr qnode = McsLock::createQnode(ctx);
        {
            McsGuard guard(ctx, lock, qnode);
            EXPECT_NE(ctx.load(lock.tailAddr()), 0u);
        }
        EXPECT_EQ(ctx.load(lock.tailAddr()), 0u);
    }});
}

TEST(McsLock, OperationsAppearInTrace)
{
    EngineConfig config;
    TraceStats stats;
    ExecutionEngine engine(config, &stats);
    engine.run({[](ThreadCtx &ctx) {
        McsLock lock = McsLock::create(ctx);
        const Addr qnode = McsLock::createQnode(ctx);
        lock.lock(ctx, qnode);
        lock.unlock(ctx, qnode);
    }});
    // The exchange (lock) and the CAS (unlock fast path) are RMWs.
    EXPECT_GE(stats.rmws(), 2u);
    EXPECT_EQ(stats.persists(), 0u) << "lock state must stay volatile";
}

TEST(NativeMcsLock, CountsUnderRealThreads)
{
    NativeMcsLock lock;
    std::uint64_t counter = 0;
    constexpr int threads = 4;
    constexpr int iterations = 2000;
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&lock, &counter] {
            NativeMcsLock::Qnode qnode;
            for (int i = 0; i < iterations; ++i) {
                lock.lock(qnode);
                ++counter;
                lock.unlock(qnode);
            }
        });
    }
    for (auto &thread : pool)
        thread.join();
    EXPECT_EQ(counter, static_cast<std::uint64_t>(threads) * iterations);
}

TEST(NativeTicketLock, CountsUnderRealThreads)
{
    NativeTicketLock lock;
    std::uint64_t counter = 0;
    std::vector<std::thread> pool;
    for (int t = 0; t < 4; ++t) {
        pool.emplace_back([&lock, &counter] {
            for (int i = 0; i < 2000; ++i) {
                lock.lock();
                ++counter;
                lock.unlock();
            }
        });
    }
    for (auto &thread : pool)
        thread.join();
    EXPECT_EQ(counter, 8000u);
}

TEST(NativeSpinLock, CountsUnderRealThreads)
{
    NativeSpinLock lock;
    std::uint64_t counter = 0;
    std::vector<std::thread> pool;
    for (int t = 0; t < 4; ++t) {
        pool.emplace_back([&lock, &counter] {
            for (int i = 0; i < 2000; ++i) {
                lock.lock();
                ++counter;
                lock.unlock();
            }
        });
    }
    for (auto &thread : pool)
        thread.join();
    EXPECT_EQ(counter, 8000u);
}

} // namespace
} // namespace persim
