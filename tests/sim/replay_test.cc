/**
 * @file
 * ReplayPolicy tests: recorded scheduling decisions replay to
 * byte-identical traces, divergent prefixes are clamped and flagged,
 * and the round-robin frontier is fair to spinning threads.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hh"
#include "sim/scheduler.hh"

namespace persim {
namespace {

struct RunResult
{
    InMemoryTrace trace;
    std::vector<BranchPoint> decisions;
    bool diverged = false;
};

/** Two workers racing on a shared flag and a shared word. */
RunResult
runRace(const std::vector<std::uint32_t> &prefix,
        FrontierKind frontier = FrontierKind::RoundRobin,
        std::uint64_t seed = 1)
{
    RunResult out;
    ReplayPolicy policy(prefix, frontier, seed);
    EngineConfig config;
    config.max_events = 100000;
    ExecutionEngine engine(config, &out.trace, &policy);

    struct Shared { Addr word = 0; Addr flag = 0; } shared;
    engine.runSetup([&shared](ThreadCtx &ctx) {
        shared.word = ctx.pmalloc(8);
        shared.flag = ctx.vmalloc(8);
    });
    engine.run({
        [&shared](ThreadCtx &ctx) {
            ctx.store(shared.word, 1);
            ctx.persistBarrier();
            ctx.store(shared.flag, 1);
            ctx.load(shared.word);
        },
        [&shared](ThreadCtx &ctx) {
            if (ctx.load(shared.flag) == 1)
                ctx.store(shared.word, 2);
            ctx.load(shared.flag);
        },
    });
    out.decisions = policy.decisions();
    out.diverged = policy.diverged();
    return out;
}

bool
sameTrace(const InMemoryTrace &a, const InMemoryTrace &b)
{
    const auto &ea = a.events();
    const auto &eb = b.events();
    if (ea.size() != eb.size())
        return false;
    for (std::size_t i = 0; i < ea.size(); ++i) {
        if (ea[i].seq != eb[i].seq || ea[i].thread != eb[i].thread ||
            ea[i].kind != eb[i].kind || ea[i].addr != eb[i].addr ||
            ea[i].size != eb[i].size || ea[i].value != eb[i].value ||
            ea[i].marker != eb[i].marker)
            return false;
    }
    return true;
}

std::vector<std::uint32_t>
chosen(const std::vector<BranchPoint> &decisions)
{
    std::vector<std::uint32_t> out;
    out.reserve(decisions.size());
    for (const BranchPoint &bp : decisions)
        out.push_back(bp.chosen);
    return out;
}

TEST(Replay, RoundRobinFrontierIsDeterministic)
{
    const auto first = runRace({});
    const auto second = runRace({});
    EXPECT_TRUE(sameTrace(first.trace, second.trace));
    EXPECT_EQ(chosen(first.decisions), chosen(second.decisions));
    EXPECT_FALSE(first.diverged);
}

TEST(Replay, RecordedRandomScheduleReplaysByteIdentically)
{
    // Record a random-frontier execution, then pin every one of its
    // decisions: the replay must reproduce the trace exactly even
    // though the frontier strategies differ.
    const auto recorded = runRace({}, FrontierKind::Random, 1234);
    ASSERT_FALSE(recorded.decisions.empty());
    const auto replayed = runRace(chosen(recorded.decisions));
    EXPECT_TRUE(sameTrace(recorded.trace, replayed.trace));
    EXPECT_FALSE(replayed.diverged);
}

TEST(Replay, DecisionsRecordArity)
{
    const auto run = runRace({});
    for (const BranchPoint &bp : run.decisions) {
        EXPECT_GE(bp.arity, 1u);
        EXPECT_LE(bp.arity, 2u);
        EXPECT_LT(bp.chosen, bp.arity);
    }
}

TEST(Replay, AlternateFirstDecisionChangesTheInterleaving)
{
    const auto a = runRace({0});
    const auto b = runRace({1});
    EXPECT_FALSE(sameTrace(a.trace, b.trace));
    // Each variant is itself reproducible.
    EXPECT_TRUE(sameTrace(a.trace, runRace({0}).trace));
    EXPECT_TRUE(sameTrace(b.trace, runRace({1}).trace));
}

TEST(Replay, OutOfRangePrefixClampsAndReportsDivergence)
{
    const auto run = runRace({42});
    EXPECT_TRUE(run.diverged);
    EXPECT_FALSE(run.decisions.empty());
    // The clamped decision is recorded as actually taken (in range).
    EXPECT_LT(run.decisions[0].chosen, run.decisions[0].arity);
}

TEST(Replay, RoundRobinFrontierIsFairToSpinners)
{
    // Thread 0 spins until thread 1 sets the flag: an unfair frontier
    // ("always lowest runnable") would grant thread 0 forever. The
    // round-robin frontier must finish this program (the engine's
    // max_events cap turns livelock into a FatalError).
    InMemoryTrace trace;
    ReplayPolicy policy;
    EngineConfig config;
    config.max_events = 100000;
    ExecutionEngine engine(config, &trace, &policy);

    struct Shared { Addr flag = 0; } shared;
    engine.runSetup([&shared](ThreadCtx &ctx) {
        shared.flag = ctx.vmalloc(8);
    });
    engine.run({
        [&shared](ThreadCtx &ctx) {
            while (ctx.load(shared.flag) == 0) {}
        },
        [&shared](ThreadCtx &ctx) {
            ctx.store(shared.flag, 1);
        },
    });
    EXPECT_LT(trace.events().size(), 100u);
}

} // namespace
} // namespace persim
