/**
 * @file
 * TSO execution mode tests: store buffering, forwarding, drains — and
 * the paper's Section 4.3 hazard, demonstrated dynamically: with
 * persistency decoupled from consistency, a store's visibility (and
 * therefore its persist) can slide past its persist barrier.
 */

#include <gtest/gtest.h>

#include "memtrace/sink.hh"
#include "persistency/timing_engine.hh"
#include "sim/engine.hh"

namespace persim {
namespace {

EngineConfig
tsoConfig(std::uint32_t depth = 8)
{
    EngineConfig config;
    config.consistency = ConsistencyModel::TSO;
    config.store_buffer_depth = depth;
    return config;
}

TEST(Tso, StoreForwardingSeesOwnBufferedStores)
{
    ExecutionEngine engine(tsoConfig(), nullptr);
    engine.run({[](ThreadCtx &ctx) {
        const Addr a = ctx.vmalloc(8);
        ctx.store(a, 42);
        // The store is buffered, yet our own load must see it.
        EXPECT_EQ(ctx.load(a), 42u);
        ctx.store(a, 43);
        EXPECT_EQ(ctx.load(a), 43u);
    }});
}

TEST(Tso, SubwordForwardingFromCoveringStore)
{
    ExecutionEngine engine(tsoConfig(), nullptr);
    engine.run({[](ThreadCtx &ctx) {
        const Addr a = ctx.vmalloc(8);
        ctx.store(a, 0x1122334455667788ULL);
        EXPECT_EQ(ctx.load(a + 2, 2), 0x5566u);
    }});
}

TEST(Tso, PartialOverlapDrainsAndReadsMemory)
{
    ExecutionEngine engine(tsoConfig(), nullptr);
    engine.run({[](ThreadCtx &ctx) {
        const Addr a = ctx.vmalloc(16);
        ctx.store(a, 0xaaaaaaaa, 4);
        ctx.store(a + 4, 0xbbbbbbbb, 4);
        // Load spanning both buffered stores: no single entry covers
        // it; the buffer drains and memory supplies the value.
        EXPECT_EQ(ctx.load(a, 8), 0xbbbbbbbbaaaaaaaaULL);
    }});
}

TEST(Tso, BufferedStoresInvisibleUntilDrain)
{
    InMemoryTrace trace;
    ExecutionEngine engine(tsoConfig(4), &trace);
    Addr a = 0;
    engine.runSetup([&a](ThreadCtx &ctx) { a = ctx.vmalloc(8); });
    engine.run({[a](ThreadCtx &ctx) {
        ctx.store(a, 7);
        ctx.load(a); // Forwarded.
        ctx.fence();
    }});
    // Trace order: ThreadStart, Load (forwarded!), Store (drained by
    // the fence), Fence, ThreadEnd — the load precedes the store in
    // visibility order.
    std::vector<EventKind> kinds;
    for (const auto &event : trace.events())
        if (event.thread == 0 &&
            event.kind != EventKind::ThreadStart &&
            event.kind != EventKind::ThreadEnd)
            kinds.push_back(event.kind);
    ASSERT_EQ(kinds.size(), 3u);
    EXPECT_EQ(kinds[0], EventKind::Load);
    EXPECT_EQ(kinds[1], EventKind::Store);
    EXPECT_EQ(kinds[2], EventKind::Fence);
}

TEST(Tso, OverflowDrainsOldestFirst)
{
    InMemoryTrace trace;
    ExecutionEngine engine(tsoConfig(2), &trace);
    Addr a = 0;
    engine.runSetup([&a](ThreadCtx &ctx) { a = ctx.vmalloc(64); });
    engine.run({[a](ThreadCtx &ctx) {
        for (int i = 0; i < 5; ++i)
            ctx.store(a + 8 * i, i);
    }});
    // All five stores eventually appear, in FIFO order.
    std::vector<std::uint64_t> values;
    for (const auto &event : trace.events())
        if (event.kind == EventKind::Store)
            values.push_back(event.value);
    EXPECT_EQ(values, (std::vector<std::uint64_t>{0, 1, 2, 3, 4}));
}

TEST(Tso, RmwDrainsBuffer)
{
    InMemoryTrace trace;
    ExecutionEngine engine(tsoConfig(8), &trace);
    Addr a = 0;
    engine.runSetup([&a](ThreadCtx &ctx) { a = ctx.vmalloc(16); });
    engine.run({[a](ThreadCtx &ctx) {
        ctx.store(a, 5);
        // The RMW acts like a locked instruction: buffer drains first.
        EXPECT_EQ(ctx.rmwFetchAdd(a, 1), 5u);
        EXPECT_EQ(ctx.load(a), 6u);
    }});
    // Store drains before the Rmw in the trace.
    std::vector<EventKind> kinds;
    for (const auto &event : trace.events())
        if (event.kind == EventKind::Store ||
            event.kind == EventKind::Rmw)
            kinds.push_back(event.kind);
    ASSERT_EQ(kinds.size(), 2u);
    EXPECT_EQ(kinds[0], EventKind::Store);
    EXPECT_EQ(kinds[1], EventKind::Rmw);
}

TEST(Tso, ThreadEndAndSetupDrain)
{
    ExecutionEngine engine(tsoConfig(), nullptr);
    Addr a = 0;
    engine.runSetup([&a](ThreadCtx &ctx) {
        a = ctx.vmalloc(8);
        ctx.store(a, 11); // Must be visible to workers.
    });
    engine.run({[a](ThreadCtx &ctx) {
        EXPECT_EQ(ctx.load(a), 11u);
        ctx.store(a, 22);
    }});
    EXPECT_EQ(engine.debugLoad(a), 22u); // Drained at thread end.
}

/**
 * The store-buffering (Dekker) litmus: under SC at least one thread
 * must observe the other's flag; under TSO both loads may hoist above
 * the (buffered) stores and read 0.
 */
TEST(Tso, DekkerLitmusObservableOnlyUnderTso)
{
    auto run = [](ConsistencyModel consistency, std::uint64_t seed) {
        EngineConfig config;
        config.consistency = consistency;
        config.quantum = 1;
        config.seed = seed;
        ExecutionEngine engine(config, nullptr);
        Addr x = 0;
        Addr y = 0;
        engine.runSetup([&](ThreadCtx &ctx) {
            x = ctx.vmalloc(8);
            y = ctx.vmalloc(8);
            ctx.store(x, 0);
            ctx.store(y, 0);
        });
        auto r1 = std::make_shared<std::uint64_t>(9);
        auto r2 = std::make_shared<std::uint64_t>(9);
        engine.run({
            [x, y, r1](ThreadCtx &ctx) {
                ctx.store(x, 1);
                *r1 = ctx.load(y);
            },
            [x, y, r2](ThreadCtx &ctx) {
                ctx.store(y, 1);
                *r2 = ctx.load(x);
            },
        });
        return std::make_pair(*r1, *r2);
    };

    bool sc_both_zero = false;
    bool tso_both_zero = false;
    for (std::uint64_t seed = 1; seed <= 40; ++seed) {
        const auto sc = run(ConsistencyModel::SC, seed);
        sc_both_zero |= (sc.first == 0 && sc.second == 0);
        const auto tso = run(ConsistencyModel::TSO, seed);
        tso_both_zero |= (tso.first == 0 && tso.second == 0);
    }
    EXPECT_FALSE(sc_both_zero) << "SC forbids r1 == r2 == 0";
    EXPECT_TRUE(tso_both_zero) << "TSO should exhibit store buffering";
}

/**
 * Paper Section 4.3 / Figure 1, dynamically: persist barriers do not
 * drain the store buffer (persistency and consistency are decoupled),
 * so a persist can become visible — and durable — on the wrong side
 * of its persist barrier. A fence() before the barrier restores the
 * intended epoch structure.
 */
TEST(Tso, PersistBarrierDoesNotOrderBufferedPersists)
{
    auto criticalPath = [](bool fence_before_barrier) {
        InMemoryTrace trace;
        ExecutionEngine engine(tsoConfig(8), &trace);
        Addr a = 0;
        engine.runSetup([&a](ThreadCtx &ctx) { a = ctx.pmalloc(64); });
        engine.run({[a, fence_before_barrier](ThreadCtx &ctx) {
            ctx.store(a, 1);      // Persist A (buffered).
            if (fence_before_barrier)
                ctx.fence();      // Make A visible first.
            ctx.persistBarrier(); // Intended: A before B.
            ctx.store(a + 8, 2);  // Persist B (buffered).
        }});
        TimingConfig config;
        config.model = ModelConfig::epoch();
        PersistTimingEngine analysis(config);
        trace.replay(analysis);
        return analysis.result().critical_path;
    };

    // Without the fence, both persists drain after the barrier: they
    // land in one epoch and the intended order is silently lost.
    EXPECT_EQ(criticalPath(false), 1.0);
    // With the fence, the barrier separates them as intended.
    EXPECT_EQ(criticalPath(true), 2.0);
}

TEST(Tso, FenceIsHarmlessUnderSc)
{
    InMemoryTrace trace;
    EngineConfig config; // SC.
    ExecutionEngine engine(config, &trace);
    engine.run({[](ThreadCtx &ctx) {
        const Addr a = ctx.vmalloc(8);
        ctx.store(a, 1);
        ctx.fence();
        EXPECT_EQ(ctx.load(a), 1u);
    }});
    int fences = 0;
    for (const auto &event : trace.events())
        fences += event.kind == EventKind::Fence;
    EXPECT_EQ(fences, 1);
}

/** Visibility-ordered kinds of thread 0 (start/end markers elided). */
std::vector<EventKind>
threadKinds(const InMemoryTrace &trace)
{
    std::vector<EventKind> kinds;
    for (const auto &event : trace.events())
        if (event.thread == 0 &&
            event.kind != EventKind::ThreadStart &&
            event.kind != EventKind::ThreadEnd)
            kinds.push_back(event.kind);
    return kinds;
}

// clflush is ordered against ALL older stores: both buffered stores
// (even the one to an unrelated line) drain before the flush event.
TEST(Tso, ClflushDrainsAllOlderStores)
{
    InMemoryTrace trace;
    ExecutionEngine engine(tsoConfig(8), &trace);
    Addr a = 0;
    engine.runSetup([&a](ThreadCtx &ctx) {
        a = ctx.vmalloc(3 * cache_line_bytes, cache_line_bytes);
    });
    engine.run({[a](ThreadCtx &ctx) {
        ctx.store(a, 1);
        ctx.store(a + cache_line_bytes, 2);
        ctx.clflush(a);
    }});
    EXPECT_EQ(threadKinds(trace),
              (std::vector<EventKind>{EventKind::Store,
                                      EventKind::Store,
                                      EventKind::CacheFlush}));
}

// clflushopt/clwb drain only the FIFO prefix covering the flushed
// line: with no buffered store to that line, the flush overtakes an
// older store to another line.
TEST(Tso, ClflushoptOvertakesStoresToOtherLines)
{
    InMemoryTrace trace;
    ExecutionEngine engine(tsoConfig(8), &trace);
    Addr a = 0;
    engine.runSetup([&a](ThreadCtx &ctx) {
        a = ctx.vmalloc(3 * cache_line_bytes, cache_line_bytes);
    });
    engine.run({[a](ThreadCtx &ctx) {
        ctx.store(a, 1);                          // Line A, buffered.
        ctx.clflushopt(a + cache_line_bytes);     // Line B: no drain.
        ctx.clwb(a + 2 * cache_line_bytes);       // Line C: no drain.
    }});
    // Both weak flushes become visible BEFORE the store drains.
    EXPECT_EQ(threadKinds(trace),
              (std::vector<EventKind>{EventKind::CacheFlushOpt,
                                      EventKind::CacheWriteBack,
                                      EventKind::Store}));
}

// ... but a buffered store to the flushed line (and the FIFO prefix
// in front of it) must drain first.
TEST(Tso, ClflushoptDrainsItsOwnLinePrefix)
{
    InMemoryTrace trace;
    ExecutionEngine engine(tsoConfig(8), &trace);
    Addr a = 0;
    engine.runSetup([&a](ThreadCtx &ctx) {
        a = ctx.vmalloc(2 * cache_line_bytes, cache_line_bytes);
    });
    engine.run({[a](ThreadCtx &ctx) {
        ctx.store(a, 1);                      // Line A (older).
        ctx.store(a + cache_line_bytes, 2);   // Line B.
        ctx.clflushopt(a + cache_line_bytes); // Must drain both.
    }});
    EXPECT_EQ(threadKinds(trace),
              (std::vector<EventKind>{EventKind::Store,
                                      EventKind::Store,
                                      EventKind::CacheFlushOpt}));
}

TEST(Tso, SfenceAndMfenceDrainTheBuffer)
{
    InMemoryTrace trace;
    ExecutionEngine engine(tsoConfig(8), &trace);
    Addr a = 0;
    engine.runSetup([&a](ThreadCtx &ctx) { a = ctx.vmalloc(16); });
    engine.run({[a](ThreadCtx &ctx) {
        ctx.store(a, 1);
        ctx.sfence();
        ctx.store(a + 8, 2);
        ctx.mfence();
    }});
    EXPECT_EQ(threadKinds(trace),
              (std::vector<EventKind>{EventKind::Store,
                                      EventKind::StoreFence,
                                      EventKind::Store,
                                      EventKind::FullFence}));
}

TEST(Tso, QuantumOneInterleavesBufferedThreads)
{
    // Sanity: a multi-threaded TSO run with tiny quantum completes
    // and every store eventually reaches memory.
    EngineConfig config = tsoConfig(4);
    config.quantum = 1;
    config.seed = 9;
    ExecutionEngine engine(config, nullptr);
    Addr base = 0;
    engine.runSetup([&base](ThreadCtx &ctx) {
        base = ctx.vmalloc(256);
    });
    std::vector<ExecutionEngine::WorkerFn> workers;
    for (int t = 0; t < 3; ++t) {
        workers.push_back([base, t](ThreadCtx &ctx) {
            for (int i = 0; i < 20; ++i)
                ctx.store(base + 64 * t + 8 * (i % 8),
                          static_cast<std::uint64_t>(i));
        });
    }
    engine.run(workers);
    for (int t = 0; t < 3; ++t)
        EXPECT_EQ(engine.debugLoad(base + 64 * t + 8 * 3), 19u);
}

} // namespace
} // namespace persim
