/**
 * @file
 * Unit tests for src/sim: memory image, allocator, scheduling
 * policies, and the execution engine (including the SC/analysis
 * atomicity properties the tracer must guarantee).
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/bitops.hh"
#include "common/error.hh"
#include "memtrace/sink.hh"
#include "sim/address_allocator.hh"
#include "sim/engine.hh"
#include "sim/memory_image.hh"
#include "sim/scheduler.hh"

namespace persim {
namespace {

TEST(MemoryImage, LoadOfUntouchedMemoryIsZero)
{
    MemoryImage image;
    EXPECT_EQ(image.load(0x1234, 8), 0u);
    EXPECT_EQ(image.pageCount(), 0u);
}

TEST(MemoryImage, StoreLoadRoundTrip)
{
    MemoryImage image;
    image.store(0x1000, 8, 0x1122334455667788ULL);
    EXPECT_EQ(image.load(0x1000, 8), 0x1122334455667788ULL);
    EXPECT_EQ(image.load(0x1000, 4), 0x55667788u);
    EXPECT_EQ(image.load(0x1004, 4), 0x11223344u);
    EXPECT_EQ(image.load(0x1007, 1), 0x11u);
}

TEST(MemoryImage, PartialStorePreservesNeighbors)
{
    MemoryImage image;
    image.store(0x2000, 8, ~0ULL);
    image.store(0x2002, 2, 0);
    EXPECT_EQ(image.load(0x2000, 8), 0xffffffff0000ffffULL);
}

TEST(MemoryImage, CrossPageAccess)
{
    MemoryImage image;
    const Addr addr = MemoryImage::page_size - 4;
    image.store(addr, 8, 0xa1b2c3d4e5f60718ULL);
    EXPECT_EQ(image.load(addr, 8), 0xa1b2c3d4e5f60718ULL);
    EXPECT_EQ(image.pageCount(), 2u);
}

TEST(MemoryImage, BulkBytes)
{
    MemoryImage image;
    const char msg[] = "persistency";
    image.writeBytes(0x3000, msg, sizeof(msg));
    char out[sizeof(msg)] = {};
    image.readBytes(out, 0x3000, sizeof(msg));
    EXPECT_STREQ(out, msg);
}

TEST(MemoryImage, RejectsBadSizes)
{
    MemoryImage image;
    EXPECT_THROW(image.load(0, 0), FatalError);
    EXPECT_THROW(image.load(0, 9), FatalError);
    EXPECT_THROW(image.store(0, 16, 0), FatalError);
}

TEST(Allocator, AllocationsAreDisjointAndAligned)
{
    AddressAllocator alloc(0x1000, 4096);
    std::set<Addr> seen;
    for (int i = 0; i < 16; ++i) {
        const Addr a = alloc.allocate(24, 8);
        EXPECT_TRUE(isAligned(a, 8));
        for (Addr b : seen)
            EXPECT_TRUE(a + 24 <= b || b + 24 <= a);
        seen.insert(a);
    }
    EXPECT_EQ(alloc.liveBlocks(), 16u);
}

TEST(Allocator, RespectsAlignment)
{
    AddressAllocator alloc(0x1000, 1 << 16);
    alloc.allocate(8);
    const Addr a = alloc.allocate(64, 256);
    EXPECT_TRUE(isAligned(a, 256));
}

TEST(Allocator, FreeEnablesReuse)
{
    AddressAllocator alloc(0x1000, 256);
    const Addr a = alloc.allocate(128);
    alloc.free(a);
    const Addr b = alloc.allocate(128);
    EXPECT_EQ(a, b);
}

TEST(Allocator, CoalescesAdjacentFreeRanges)
{
    AddressAllocator alloc(0x1000, 256);
    const Addr a = alloc.allocate(64);
    const Addr b = alloc.allocate(64);
    const Addr c = alloc.allocate(64);
    alloc.free(a);
    alloc.free(c);
    alloc.free(b);
    // The whole region should be one free range again.
    const Addr big = alloc.allocate(256);
    EXPECT_EQ(big, 0x1000u);
}

TEST(Allocator, ExhaustionIsFatal)
{
    AddressAllocator alloc(0x1000, 64);
    alloc.allocate(64);
    EXPECT_THROW(alloc.allocate(8), FatalError);
}

TEST(Allocator, DoubleFreeIsFatal)
{
    AddressAllocator alloc(0x1000, 64);
    const Addr a = alloc.allocate(8);
    alloc.free(a);
    EXPECT_THROW(alloc.free(a), FatalError);
}

TEST(Allocator, TracksLiveBytes)
{
    AddressAllocator alloc(0x1000, 1024);
    const Addr a = alloc.allocate(100); // Rounded to 104.
    EXPECT_EQ(alloc.bytesLive(), 104u);
    EXPECT_EQ(alloc.blockSize(a), 104u);
    EXPECT_TRUE(alloc.isAllocated(a));
    alloc.free(a);
    EXPECT_EQ(alloc.bytesLive(), 0u);
    EXPECT_FALSE(alloc.isAllocated(a));
}

TEST(Scheduler, RoundRobinCycles)
{
    RoundRobinPolicy policy(1);
    const std::vector<ThreadId> runnable{0, 1, 2};
    ThreadId current = invalid_thread;
    std::vector<ThreadId> order;
    for (int i = 0; i < 6; ++i) {
        current = policy.pick(runnable, current).thread;
        order.push_back(current);
    }
    EXPECT_EQ(order, (std::vector<ThreadId>{0, 1, 2, 0, 1, 2}));
}

TEST(Scheduler, RoundRobinSkipsFinishedThreads)
{
    RoundRobinPolicy policy(1);
    const std::vector<ThreadId> runnable{0, 2};
    EXPECT_EQ(policy.pick(runnable, 0).thread, 2u);
    EXPECT_EQ(policy.pick(runnable, 2).thread, 0u);
    EXPECT_EQ(policy.pick(runnable, 1).thread, 2u);
}

TEST(Scheduler, RandomIsDeterministicPerSeed)
{
    RandomPolicy a(99, 4);
    RandomPolicy b(99, 4);
    const std::vector<ThreadId> runnable{0, 1, 2, 3};
    for (int i = 0; i < 50; ++i) {
        const auto da = a.pick(runnable, 0);
        const auto db = b.pick(runnable, 0);
        EXPECT_EQ(da.thread, db.thread);
        EXPECT_EQ(da.quantum, db.quantum);
    }
}

TEST(Scheduler, RandomVisitsAllThreads)
{
    RandomPolicy policy(7, 1);
    const std::vector<ThreadId> runnable{0, 1, 2, 3};
    std::set<ThreadId> seen;
    for (int i = 0; i < 200; ++i)
        seen.insert(policy.pick(runnable, 0).thread);
    EXPECT_EQ(seen.size(), 4u);
}

TEST(Engine, SingleThreadBasicOps)
{
    EngineConfig config;
    InMemoryTrace trace;
    ExecutionEngine engine(config, &trace);
    engine.run({[](ThreadCtx &ctx) {
        const Addr a = ctx.pmalloc(16);
        ctx.store(a, 0x1234);
        EXPECT_EQ(ctx.load(a), 0x1234u);
        const Addr v = ctx.vmalloc(8);
        ctx.store(v, 9);
        EXPECT_EQ(ctx.load(v), 9u);
    }});
    EXPECT_GT(engine.eventCount(), 0u);
    // Events: ThreadStart, PMalloc, store, load, store, load, ThreadEnd.
    EXPECT_EQ(trace.size(), 7u);
    EXPECT_EQ(trace.events().front().kind, EventKind::ThreadStart);
    EXPECT_EQ(trace.events().back().kind, EventKind::ThreadEnd);
}

TEST(Engine, SetupRunsAsThreadZero)
{
    EngineConfig config;
    InMemoryTrace trace;
    ExecutionEngine engine(config, &trace);
    Addr shared = 0;
    engine.runSetup([&shared](ThreadCtx &ctx) {
        shared = ctx.pmalloc(8);
        ctx.store(shared, 77);
    });
    engine.run({[shared](ThreadCtx &ctx) {
        EXPECT_EQ(ctx.load(shared), 77u);
    }});
    EXPECT_EQ(trace.events()[0].kind, EventKind::PMalloc);
    EXPECT_EQ(trace.events()[0].thread, 0u);
}

TEST(Engine, RmwSemantics)
{
    EngineConfig config;
    ExecutionEngine engine(config, nullptr);
    engine.run({[](ThreadCtx &ctx) {
        const Addr a = ctx.vmalloc(8);
        ctx.store(a, 10);
        EXPECT_EQ(ctx.rmwExchange(a, 20), 10u);
        EXPECT_EQ(ctx.rmwFetchAdd(a, 5), 20u);
        EXPECT_EQ(ctx.load(a), 25u);
        EXPECT_EQ(ctx.rmwCas(a, 25, 30), 25u); // Success.
        EXPECT_EQ(ctx.load(a), 30u);
        EXPECT_EQ(ctx.rmwCas(a, 99, 40), 30u); // Failure.
        EXPECT_EQ(ctx.load(a), 30u);
    }});
}

TEST(Engine, FailedCasTracesAsLoad)
{
    EngineConfig config;
    InMemoryTrace trace;
    ExecutionEngine engine(config, &trace);
    engine.run({[](ThreadCtx &ctx) {
        const Addr a = ctx.vmalloc(8);
        ctx.store(a, 1);
        ctx.rmwCas(a, 1, 2); // Succeeds -> Rmw.
        ctx.rmwCas(a, 1, 3); // Fails -> Load.
    }});
    std::map<EventKind, int> kinds;
    for (const auto &event : trace.events())
        ++kinds[event.kind];
    EXPECT_EQ(kinds[EventKind::Rmw], 1);
    EXPECT_EQ(kinds[EventKind::Load], 1);
}

TEST(Engine, CopySplitsAtWordBoundaries)
{
    EngineConfig config;
    InMemoryTrace trace;
    ExecutionEngine engine(config, &trace);
    engine.run({[](ThreadCtx &ctx) {
        const Addr a = ctx.pmalloc(32);
        std::uint8_t buf[20];
        for (int i = 0; i < 20; ++i)
            buf[i] = static_cast<std::uint8_t>(i + 1);
        ctx.copyIn(a + 3, buf, 20); // Unaligned start.
        std::uint8_t out[20] = {};
        ctx.copyOut(out, a + 3, 20);
        for (int i = 0; i < 20; ++i)
            EXPECT_EQ(out[i], buf[i]);
    }});
    for (const auto &event : trace.events()) {
        if (!event.isAccess())
            continue;
        EXPECT_LE(event.size, 8);
        // No access crosses an 8-byte boundary.
        EXPECT_EQ(event.addr / 8, (event.addr + event.size - 1) / 8)
            << formatEvent(event);
    }
}

TEST(Engine, CopySimMovesDataWithinSimMemory)
{
    EngineConfig config;
    ExecutionEngine engine(config, nullptr);
    engine.run({[](ThreadCtx &ctx) {
        const Addr src = ctx.pmalloc(16);
        const Addr dst = ctx.pmalloc(16);
        ctx.store(src, 0xabcdef12345678ULL);
        ctx.store(src + 8, 0x11223344u, 4);
        ctx.copySim(dst, src, 12);
        EXPECT_EQ(ctx.load(dst), 0xabcdef12345678ULL);
        EXPECT_EQ(ctx.load(dst + 8, 4), 0x11223344u);
    }});
}

/** Events of each thread appear in program order in the trace. */
TEST(Engine, TraceRespectsProgramOrder)
{
    EngineConfig config;
    config.seed = 123;
    config.quantum = 2;
    InMemoryTrace trace;
    ExecutionEngine engine(config, &trace);

    Addr base = 0;
    engine.runSetup([&base](ThreadCtx &ctx) {
        base = ctx.pmalloc(1024);
    });
    std::vector<ExecutionEngine::WorkerFn> workers;
    for (int t = 0; t < 4; ++t) {
        workers.push_back([base, t](ThreadCtx &ctx) {
            for (int i = 0; i < 50; ++i)
                ctx.store(base + 64 * t, i);
        });
    }
    engine.run(workers);

    std::map<ThreadId, std::uint64_t> last_value;
    std::map<ThreadId, bool> seen_any;
    SeqNum expected_seq = 0;
    for (const auto &event : trace.events()) {
        EXPECT_EQ(event.seq, expected_seq++);
        if (event.kind != EventKind::Store || event.thread == 0)
            continue;
        if (seen_any[event.thread])
            EXPECT_EQ(event.value, last_value[event.thread] + 1);
        last_value[event.thread] = event.value;
        seen_any[event.thread] = true;
    }
}

/** Loads return the most recent prior store in the global order (SC). */
TEST(Engine, TraceIsSequentiallyConsistent)
{
    EngineConfig config;
    config.seed = 77;
    config.quantum = 1;
    InMemoryTrace trace;
    ExecutionEngine engine(config, &trace);

    Addr cell = 0;
    engine.runSetup([&cell](ThreadCtx &ctx) {
        cell = ctx.pmalloc(8);
        ctx.store(cell, 0);
    });
    std::vector<ExecutionEngine::WorkerFn> workers;
    for (int t = 0; t < 3; ++t) {
        workers.push_back([cell, t](ThreadCtx &ctx) {
            for (int i = 0; i < 30; ++i) {
                ctx.load(cell);
                ctx.store(cell, static_cast<std::uint64_t>(t) * 1000 + i);
            }
        });
    }
    engine.run(workers);

    std::uint64_t current = ~0ULL;
    for (const auto &event : trace.events()) {
        if (!event.isAccess() || event.addr != cell)
            continue;
        if (event.kind == EventKind::Store) {
            current = event.value;
        } else if (current != ~0ULL) {
            EXPECT_EQ(event.value, current)
                << "load observed a stale value at seq " << event.seq;
        }
    }
}

TEST(Engine, DeterministicInterleavingPerSeed)
{
    auto run = [](std::uint64_t seed) {
        EngineConfig config;
        config.seed = seed;
        config.quantum = 3;
        InMemoryTrace trace;
        ExecutionEngine engine(config, &trace);
        Addr base = 0;
        engine.runSetup([&base](ThreadCtx &ctx) {
            base = ctx.pmalloc(256);
        });
        std::vector<ExecutionEngine::WorkerFn> workers;
        for (int t = 0; t < 3; ++t) {
            workers.push_back([base, t](ThreadCtx &ctx) {
                for (int i = 0; i < 20; ++i)
                    ctx.store(base + 8 * t, i);
            });
        }
        engine.run(workers);
        std::vector<ThreadId> order;
        for (const auto &event : trace.events())
            order.push_back(event.thread);
        return order;
    };
    EXPECT_EQ(run(5), run(5));
    EXPECT_NE(run(5), run(6));
}

TEST(Engine, MaxEventsGuardsAgainstLivelock)
{
    EngineConfig config;
    config.max_events = 100;
    ExecutionEngine engine(config, nullptr);
    EXPECT_THROW(engine.run({[](ThreadCtx &ctx) {
        const Addr a = ctx.vmalloc(8);
        for (;;)
            ctx.load(a);
    }}), FatalError);
}

TEST(Engine, MaxEventsAbortsAllThreads)
{
    EngineConfig config;
    config.max_events = 200;
    ExecutionEngine engine(config, nullptr);
    std::vector<ExecutionEngine::WorkerFn> workers;
    for (int t = 0; t < 3; ++t) {
        workers.push_back([](ThreadCtx &ctx) {
            const Addr a = ctx.vmalloc(8);
            for (;;)
                ctx.load(a);
        });
    }
    EXPECT_THROW(engine.run(workers), FatalError);
}

TEST(Engine, WorkerExceptionPropagates)
{
    EngineConfig config;
    ExecutionEngine engine(config, nullptr);
    std::vector<ExecutionEngine::WorkerFn> workers;
    workers.push_back([](ThreadCtx &ctx) {
        const Addr a = ctx.vmalloc(8);
        for (int i = 0; i < 10; ++i)
            ctx.store(a, i);
        PERSIM_FATAL("worker gave up");
    });
    workers.push_back([](ThreadCtx &ctx) {
        const Addr a = ctx.vmalloc(8);
        for (int i = 0; i < 1000000; ++i)
            ctx.store(a, i);
    });
    EXPECT_THROW(engine.run(workers), FatalError);
}

TEST(Engine, RunTwiceIsFatal)
{
    EngineConfig config;
    ExecutionEngine engine(config, nullptr);
    engine.run({[](ThreadCtx &) {}});
    EXPECT_THROW(engine.run({[](ThreadCtx &) {}}), FatalError);
}

TEST(Engine, DebugLoadSeesFinalState)
{
    EngineConfig config;
    ExecutionEngine engine(config, nullptr);
    Addr a = 0;
    engine.runSetup([&a](ThreadCtx &ctx) {
        a = ctx.pmalloc(8);
    });
    engine.run({[a](ThreadCtx &ctx) {
        ctx.store(a, 4242);
    }});
    EXPECT_EQ(engine.debugLoad(a), 4242u);
    std::uint8_t bytes[2];
    engine.debugReadBytes(bytes, a, 2);
    EXPECT_EQ(bytes[0], 4242 & 0xff);
}

TEST(Engine, RoundRobinSchedulerWorks)
{
    EngineConfig config;
    config.scheduler = SchedulerKind::RoundRobin;
    config.quantum = 1;
    InMemoryTrace trace;
    ExecutionEngine engine(config, &trace);
    std::vector<ExecutionEngine::WorkerFn> workers;
    for (int t = 0; t < 2; ++t) {
        workers.push_back([](ThreadCtx &ctx) {
            const Addr a = ctx.vmalloc(8);
            for (int i = 0; i < 10; ++i)
                ctx.store(a, i);
        });
    }
    engine.run(workers);
    // With quantum 1 and round-robin, thread ids should alternate for
    // the bulk of the trace.
    int alternations = 0;
    for (std::size_t i = 1; i < trace.size(); ++i)
        alternations += trace.events()[i].thread !=
            trace.events()[i - 1].thread;
    EXPECT_GT(alternations, static_cast<int>(trace.size() / 2));
}

} // namespace
} // namespace persim
