/**
 * @file
 * Tests for the NVRAM device model, buffered-strict drain simulation,
 * and endurance accounting.
 */

#include <gtest/gtest.h>

#include "nvram/device.hh"
#include "nvram/drain_sim.hh"
#include "nvram/endurance.hh"
#include "persistency/timing_engine.hh"
#include "tests/support/trace_builder.hh"

namespace persim {
namespace {

using test::paddr;
using test::TraceBuilder;

PersistLog
logFor(TraceBuilder &builder, const ModelConfig &model)
{
    return builder.analyzeLog(model);
}

TEST(Device, Presets)
{
    EXPECT_LT(NvramConfig::dramLike().persist_latency_ns,
              NvramConfig::sttRam().persist_latency_ns);
    EXPECT_LT(NvramConfig::sttRam().persist_latency_ns,
              NvramConfig::pcmSlc().persist_latency_ns);
    EXPECT_LT(NvramConfig::pcmSlc().persist_latency_ns,
              NvramConfig::pcmMlc().persist_latency_ns);
}

TEST(Device, InfiniteBanksMatchOrderingBound)
{
    TraceBuilder builder;
    builder.store(0, paddr(0)).barrier(0)
           .store(0, paddr(1)).barrier(0)
           .store(0, paddr(2));
    const auto log = logFor(builder, ModelConfig::epoch());
    NvramConfig config;
    config.banks = 0;
    const auto result = replayThroughDevice(log, config);
    EXPECT_DOUBLE_EQ(result.total_ns, result.ordering_bound_ns);
    EXPECT_DOUBLE_EQ(result.total_ns, 3 * config.persist_latency_ns);
    EXPECT_EQ(result.device_writes, 3u);
    EXPECT_EQ(result.bank_stalls, 0u);
}

TEST(Device, SingleBankSerializesConcurrentPersists)
{
    TraceBuilder builder;
    // Four concurrent persists (same epoch, different far-apart
    // blocks so they map to different interleave granules).
    for (int i = 0; i < 4; ++i)
        builder.store(0, paddr(i * 64));
    const auto log = logFor(builder, ModelConfig::epoch());
    NvramConfig config;
    config.banks = 1;
    config.bank_interleave = 256;
    const auto result = replayThroughDevice(log, config);
    EXPECT_DOUBLE_EQ(result.ordering_bound_ns, config.persist_latency_ns);
    EXPECT_DOUBLE_EQ(result.total_ns, 4 * config.persist_latency_ns);
    EXPECT_EQ(result.bank_stalls, 3u);
}

TEST(Device, ManyBanksRecoverConcurrency)
{
    TraceBuilder builder;
    for (int i = 0; i < 4; ++i)
        builder.store(0, paddr(i * 64));
    const auto log = logFor(builder, ModelConfig::epoch());
    NvramConfig config;
    config.banks = 8;
    const auto result = replayThroughDevice(log, config);
    EXPECT_DOUBLE_EQ(result.total_ns, config.persist_latency_ns);
}

TEST(Device, CoalescedPiecesDoNotOccupyBanks)
{
    TraceBuilder builder;
    builder.store(0, paddr(0), 1).store(0, paddr(0), 2)
           .store(0, paddr(0), 3);
    const auto log = logFor(builder, ModelConfig::epoch());
    NvramConfig config;
    config.banks = 1;
    const auto result = replayThroughDevice(log, config);
    EXPECT_EQ(result.device_writes, 1u);
    EXPECT_DOUBLE_EQ(result.total_ns, config.persist_latency_ns);
}

TEST(Drain, UnbufferedStallsEveryPersist)
{
    DrainConfig config;
    config.buffer_depth = 0;
    config.persist_latency_ns = 500.0;
    config.ns_between_persists = 50.0;
    const auto result = simulateDrain(config, 1000);
    // Every persist serializes with execution: ~550ns per persist.
    EXPECT_NEAR(result.total_ns, 1000 * 550.0, 1.0);
    EXPECT_GT(result.stallFraction(), 0.85);
}

TEST(Drain, DeepBufferReachesDrainRate)
{
    DrainConfig config;
    config.buffer_depth = 1 << 20;
    config.persist_latency_ns = 500.0;
    config.ns_between_persists = 50.0;
    const auto result = simulateDrain(config, 1000);
    // The device is the bottleneck: one persist per 500ns, and
    // execution never stalls on the buffer.
    EXPECT_NEAR(result.persistsPerSecond(), 1e9 / 500.0, 1e4);
    EXPECT_DOUBLE_EQ(result.stall_ns, 0.0);
}

TEST(Drain, ExecutionBoundWhenPersistsAreFast)
{
    DrainConfig config;
    config.buffer_depth = 8;
    config.persist_latency_ns = 10.0;
    config.ns_between_persists = 100.0;
    const auto result = simulateDrain(config, 1000);
    EXPECT_NEAR(result.persistsPerSecond(), 1e9 / 100.0, 1e4);
    EXPECT_DOUBLE_EQ(result.stall_ns, 0.0);
}

TEST(Drain, ThroughputMonotoneInBufferDepth)
{
    DrainConfig config;
    config.persist_latency_ns = 500.0;
    config.ns_between_persists = 100.0;
    double prev = 0.0;
    for (std::uint64_t depth : {0, 1, 2, 4, 16, 64}) {
        config.buffer_depth = depth;
        const auto result = simulateDrain(config, 2000);
        EXPECT_GE(result.persistsPerSecond(), prev)
            << "depth " << depth;
        prev = result.persistsPerSecond();
    }
}

TEST(Drain, PersistSyncForcesFullDrain)
{
    DrainConfig config;
    config.buffer_depth = 1 << 20;
    config.persist_latency_ns = 500.0;
    config.ns_between_persists = 50.0;
    config.persists_per_sync = 10;
    const auto with_sync = simulateDrain(config, 1000);
    config.persists_per_sync = 0;
    const auto without = simulateDrain(config, 1000);
    EXPECT_GT(with_sync.stall_ns, 0.0);
    EXPECT_GE(with_sync.total_ns, without.total_ns);
}

TEST(Endurance, CountsPersistentWritesOnly)
{
    TraceBuilder builder;
    builder.store(0, paddr(0))
           .store(0, test::vaddr(0))
           .load(0, paddr(0))
           .rmw(0, paddr(1), 2);
    EnduranceTracker tracker(64);
    builder.trace().replay(tracker);
    EXPECT_EQ(tracker.totalWrites(), 2u);
}

TEST(Endurance, TracksHotBlocks)
{
    TraceBuilder builder;
    for (int i = 0; i < 10; ++i)
        builder.store(0, paddr(0), i); // Hot block.
    builder.store(0, paddr(100));      // Cold block (far away).
    EnduranceTracker tracker(64);
    builder.trace().replay(tracker);
    EXPECT_EQ(tracker.totalWrites(), 11u);
    EXPECT_EQ(tracker.maxBlockWrites(), 10u);
    EXPECT_EQ(tracker.blocksTouched(), 2u);
    EXPECT_EQ(tracker.writesTo(paddr(0)), 10u);
    EXPECT_GT(tracker.imbalance(), 1.5);
}

TEST(Endurance, CoalescingReducesDeviceWrites)
{
    TraceBuilder builder;
    for (int i = 0; i < 10; ++i)
        builder.store(0, paddr(0), i);
    const auto log = builder.analyzeLog(ModelConfig::epoch());
    EXPECT_EQ(log.size(), 10u);
    EXPECT_EQ(countDeviceWrites(log), 1u);

    const auto strict_log = builder.analyzeLog(ModelConfig::strict());
    // Under strict persistency the chain still coalesces (same-block
    // group); raw traffic equals device writes only when constraints
    // block coalescing.
    EXPECT_LE(countDeviceWrites(strict_log), 10u);
}

} // namespace
} // namespace persim
