/**
 * @file
 * Device-fault model tests: the disabled model is byte-identical to
 * the recovery observer's image, every fault class is a deterministic
 * function of its seeds, tearing respects the in-flight window and
 * the atomic write unit, media errors scale with wear, and dropped
 * drains follow the serial-drain law at device-write granularity.
 */

#include <gtest/gtest.h>

#include "nvram/drain_sim.hh"
#include "nvram/faults.hh"
#include "recovery/recovery.hh"
#include "tests/support/trace_builder.hh"

namespace persim {
namespace {

using test::paddr;
using test::TraceBuilder;

/** Hand-built record with an explicit in-flight window. */
PersistRecord
rec(PersistId id, Addr addr, std::uint64_t value, double start,
    double time, std::uint8_t size = 8)
{
    PersistRecord record;
    record.id = id;
    record.addr = addr;
    record.size = size;
    record.value = value;
    record.start = start;
    record.time = time;
    return record;
}

/** Compare two images over every byte the log touches. */
void
expectSameOverLog(const PersistLog &log, const MemoryImage &a,
                  const MemoryImage &b)
{
    for (const PersistRecord &record : log) {
        for (unsigned i = 0; i < record.size; ++i) {
            EXPECT_EQ(a.load(record.addr + i, 1),
                      b.load(record.addr + i, 1))
                << "byte 0x" << std::hex << record.addr + i;
        }
    }
}

TEST(FaultModel, DisabledModelMatchesReconstructImage)
{
    // A multi-thread stochastic log with coalescing, conflicts, and
    // sub-word pieces; at every interesting crash time the disabled
    // model must reproduce reconstructImage byte-for-byte.
    TraceBuilder builder;
    builder.store(0, paddr(0), 0x1111)
           .store(1, paddr(1), 0x2222)
           .barrier(0)
           .store(0, paddr(0), 0x3333)
           .store(0, paddr(2), 0x4444, 4)
           .barrier(1)
           .store(1, paddr(2) + 4, 0x5555, 4)
           .store(1, paddr(3), 0x6666);
    const PersistLog log = stochasticLog(builder.trace(),
                                         ModelConfig::epoch(), 42, 1.0);
    ASSERT_FALSE(log.empty());

    const FaultModel model{FaultConfig{}};
    ASSERT_FALSE(model.config().enabled());
    std::vector<double> crash_times{-1.0, 0.0};
    for (const PersistRecord &record : log) {
        crash_times.push_back(record.time); // Boundary: inclusive.
        crash_times.push_back(record.time + 1e-9);
    }
    for (double t : crash_times) {
        FaultOutcome outcome;
        const MemoryImage faulty = model.crashImage(log, t, 123,
                                                    &outcome);
        expectSameOverLog(log, faulty, reconstructImage(log, t));
        EXPECT_EQ(outcome.total(), 0u);
    }
}

TEST(FaultModel, TearingIsConfinedToTheInFlightWindow)
{
    const std::uint64_t value = 0x8877665544332211ull;
    const PersistLog log{
        rec(0, paddr(0), value, 0.0, 2.0), // In flight at T=1.
        rec(1, paddr(1), value, 0.5, 0.75), // Durable at T=1.
        rec(2, paddr(2), value, 3.0, 4.0), // Not yet started at T=1.
    };

    FaultConfig config;
    config.tear_persists = true;
    config.atomic_write_unit = 4;

    // tear_land_p = 1: every unit of the in-flight piece lands (an
    // early landing, never torn); the unstarted piece stays absent.
    config.tear_land_p = 1.0;
    FaultOutcome all_land;
    const MemoryImage early = FaultModel{config}.crashImage(
        log, 1.0, 7, &all_land);
    EXPECT_EQ(early.load(paddr(0), 8), value);
    EXPECT_EQ(early.load(paddr(1), 8), value);
    EXPECT_EQ(early.load(paddr(2), 8), 0u);
    EXPECT_EQ(all_land.torn_persists, 1u);

    // tear_land_p = 0: nothing of the in-flight piece lands, and a
    // zero-unit tear is not an injection.
    config.tear_land_p = 0.0;
    FaultOutcome none_land;
    const MemoryImage none = FaultModel{config}.crashImage(
        log, 1.0, 7, &none_land);
    EXPECT_EQ(none.load(paddr(0), 8), 0u);
    EXPECT_EQ(none.load(paddr(1), 8), value);
    EXPECT_EQ(none_land.torn_persists, 0u);

    // Durable records never tear regardless of the tear setting.
    config.tear_land_p = 0.0;
    const MemoryImage after = FaultModel{config}.crashImage(log, 5.0,
                                                            7);
    EXPECT_EQ(after.load(paddr(0), 8), value);
    EXPECT_EQ(after.load(paddr(2), 8), value);
}

TEST(FaultModel, TearingLandsWholeAtomicUnits)
{
    // One 8-byte piece over a 4-byte device unit: the only possible
    // partial states expose exactly one intact half.
    const std::uint64_t value = 0x8877665544332211ull;
    const PersistLog log{rec(0, paddr(0), value, 0.0, 2.0)};

    FaultConfig config;
    config.tear_persists = true;
    config.atomic_write_unit = 4;
    const FaultModel model{config};

    bool saw_low_only = false;
    bool saw_high_only = false;
    for (std::uint64_t seed = 0; seed < 64; ++seed) {
        const MemoryImage image = model.crashImage(log, 1.0, seed);
        const std::uint64_t lo = image.load(paddr(0), 4);
        const std::uint64_t hi = image.load(paddr(0) + 4, 4);
        EXPECT_TRUE(lo == 0 || lo == (value & 0xffffffffull));
        EXPECT_TRUE(hi == 0 || hi == (value >> 32));
        saw_low_only |= (lo != 0 && hi == 0);
        saw_high_only |= (lo == 0 && hi != 0);
        // Determinism: the same (log, T, seed) triple replays
        // bit-for-bit.
        expectSameOverLog(log, image,
                          model.crashImage(log, 1.0, seed));
    }
    EXPECT_TRUE(saw_low_only);
    EXPECT_TRUE(saw_high_only);
}

TEST(FaultModel, MediaErrorsScaleWithWear)
{
    // Two wear blocks: a hot one that essentially always fails and a
    // cold one with zero writes that never can.
    const std::uint64_t hot_block = paddr(0) / 64;
    const std::uint64_t cold_block = hot_block + 1;
    FaultConfig config;
    config.media_error_per_write = 1e-3;
    config.wear_block_bytes = 64;
    config.media_kind = MediaFaultKind::StuckAtOne;
    const FaultModel model{
        config, {{hot_block, 1000000}, {cold_block, 0}}};

    // Both blocks hold all-zero bytes, so a stuck-at-1 fault is
    // always visible.
    PersistLog log;
    for (unsigned i = 0; i < 16; ++i)
        log.push_back(rec(i, hot_block * 64 + i * 8, 0, 0.0, 0.5));

    std::uint64_t faults = 0;
    for (std::uint64_t seed = 0; seed < 32; ++seed) {
        FaultOutcome outcome;
        const MemoryImage image = model.crashImage(log, 1.0, seed,
                                                   &outcome);
        faults += outcome.media_errors;
        for (const FaultInjection &injection : outcome.injected) {
            ASSERT_EQ(injection.kind,
                      FaultInjection::Kind::MediaError);
            // The corrupted byte lies inside the hot block, and the
            // stuck-at-1 bit reads back set.
            EXPECT_EQ(injection.addr / 64, hot_block);
            EXPECT_NE(image.load(injection.addr, 1) &
                          (1ull << injection.bit),
                      0u);
        }
    }
    // fail_p = 1 - (1 - 1e-3)^1e6 ~= 1: nearly every seed corrupts.
    EXPECT_GT(faults, 24u);
}

TEST(FaultModel, InvisibleStuckAtFaultIsNotCounted)
{
    // Stuck-at-0 over a block that only ever stored zero bytes can
    // never change the image, so no injection is reported.
    FaultConfig config;
    config.media_error_per_write = 1.0;
    config.media_kind = MediaFaultKind::StuckAtZero;
    const FaultModel model{config, {{paddr(0) / 64, 1000}}};
    const PersistLog log{rec(0, paddr(0), 0, 0.0, 0.5)};
    FaultOutcome outcome;
    model.crashImage(log, 1.0, 3, &outcome);
    EXPECT_EQ(outcome.media_errors, 0u);
}

TEST(FaultModel, DroppedDrainsFollowTheSerialDrainLaw)
{
    const PersistLog log{
        rec(0, paddr(0), 1, 0.0, 1.0),
        rec(1, paddr(1), 2, 0.0, 2.0),
    };
    FaultConfig config;
    config.drop_drain_p = 1.0;

    // Slow drain: both device writes still queue at T=3, and with
    // p=1 both vanish.
    config.drain_latency = 10.0;
    FaultOutcome slow;
    const MemoryImage lost = FaultModel{config}.crashImage(
        log, 3.0, 11, &slow);
    EXPECT_EQ(lost.load(paddr(0), 8), 0u);
    EXPECT_EQ(lost.load(paddr(1), 8), 0u);
    EXPECT_EQ(slow.dropped_drains, 2u);

    // Fast drain: both writes drained before T=3; nothing to drop.
    config.drain_latency = 0.1;
    FaultOutcome fast;
    const MemoryImage kept = FaultModel{config}.crashImage(
        log, 3.0, 11, &fast);
    EXPECT_EQ(kept.load(paddr(0), 8), 1u);
    EXPECT_EQ(kept.load(paddr(1), 8), 2u);
    EXPECT_EQ(fast.dropped_drains, 0u);
}

TEST(FaultModel, DropsWholeCoalescingGroups)
{
    // Record 1 coalesced into record 0: one device write, so both
    // pieces vanish together and the drop counts once.
    PersistRecord founder = rec(0, paddr(0), 1, 0.0, 1.0);
    PersistRecord member = rec(1, paddr(1), 2, 0.0, 1.0);
    member.binding = 0;
    member.binding_source = DepSource::Coalesced;
    const PersistLog log{founder, member};

    FaultConfig config;
    config.drop_drain_p = 1.0;
    config.drain_latency = 10.0;
    FaultOutcome outcome;
    const MemoryImage image = FaultModel{config}.crashImage(
        log, 3.0, 11, &outcome);
    EXPECT_EQ(image.load(paddr(0), 8), 0u);
    EXPECT_EQ(image.load(paddr(1), 8), 0u);
    EXPECT_EQ(outcome.dropped_drains, 1u);
}

TEST(DrainSim, PendingAtCrashTracksTheSerialDrainClock)
{
    // Issues at 1, 2, 3 with unit latency: drains complete at 2, 3,
    // 4. At T=2.5 the first has drained, the second is in the device,
    // and the third has not issued yet.
    const std::vector<double> issues{1.0, 2.0, 3.0};
    const auto pending = pendingAtCrash(issues, 2.5, 1.0);
    ASSERT_EQ(pending.size(), 1u);
    EXPECT_EQ(pending[0], 1u);

    EXPECT_TRUE(pendingAtCrash(issues, 10.0, 1.0).empty());
    EXPECT_TRUE(pendingAtCrash({}, 1.0, 1.0).empty());

    // Back-to-back issues queue behind each other: at T=1.5 the
    // first write is in the device and the rest wait in the buffer.
    const std::vector<double> burst{1.0, 1.0, 1.0};
    EXPECT_EQ(pendingAtCrash(burst, 1.5, 1.0).size(), 3u);
}

} // namespace
} // namespace persim
