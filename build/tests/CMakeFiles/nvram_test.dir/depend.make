# Empty dependencies file for nvram_test.
# This may be replaced when dependencies are built.
