file(REMOVE_RECURSE
  "CMakeFiles/nvram_test.dir/nvram/nvram_test.cc.o"
  "CMakeFiles/nvram_test.dir/nvram/nvram_test.cc.o.d"
  "nvram_test"
  "nvram_test.pdb"
  "nvram_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvram_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
