file(REMOVE_RECURSE
  "CMakeFiles/misc_semantics_test.dir/persistency/misc_semantics_test.cc.o"
  "CMakeFiles/misc_semantics_test.dir/persistency/misc_semantics_test.cc.o.d"
  "misc_semantics_test"
  "misc_semantics_test.pdb"
  "misc_semantics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/misc_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
