# Empty compiler generated dependencies file for producer_consumer_test.
# This may be replaced when dependencies are built.
