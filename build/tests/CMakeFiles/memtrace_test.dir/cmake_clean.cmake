file(REMOVE_RECURSE
  "CMakeFiles/memtrace_test.dir/memtrace/memtrace_test.cc.o"
  "CMakeFiles/memtrace_test.dir/memtrace/memtrace_test.cc.o.d"
  "memtrace_test"
  "memtrace_test.pdb"
  "memtrace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memtrace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
