# Empty dependencies file for bpfs_test.
# This may be replaced when dependencies are built.
