file(REMOVE_RECURSE
  "CMakeFiles/bpfs_test.dir/persistency/bpfs_test.cc.o"
  "CMakeFiles/bpfs_test.dir/persistency/bpfs_test.cc.o.d"
  "bpfs_test"
  "bpfs_test.pdb"
  "bpfs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
