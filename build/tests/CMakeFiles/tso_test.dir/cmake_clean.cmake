file(REMOVE_RECURSE
  "CMakeFiles/tso_test.dir/sim/tso_test.cc.o"
  "CMakeFiles/tso_test.dir/sim/tso_test.cc.o.d"
  "tso_test"
  "tso_test.pdb"
  "tso_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tso_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
