file(REMOVE_RECURSE
  "CMakeFiles/offline_online_test.dir/integration/offline_online_test.cc.o"
  "CMakeFiles/offline_online_test.dir/integration/offline_online_test.cc.o.d"
  "offline_online_test"
  "offline_online_test.pdb"
  "offline_online_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offline_online_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
