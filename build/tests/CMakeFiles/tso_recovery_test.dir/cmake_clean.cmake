file(REMOVE_RECURSE
  "CMakeFiles/tso_recovery_test.dir/integration/tso_recovery_test.cc.o"
  "CMakeFiles/tso_recovery_test.dir/integration/tso_recovery_test.cc.o.d"
  "tso_recovery_test"
  "tso_recovery_test.pdb"
  "tso_recovery_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tso_recovery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
