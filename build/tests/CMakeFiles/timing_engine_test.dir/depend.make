# Empty dependencies file for timing_engine_test.
# This may be replaced when dependencies are built.
