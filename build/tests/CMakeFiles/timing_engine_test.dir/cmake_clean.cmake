file(REMOVE_RECURSE
  "CMakeFiles/timing_engine_test.dir/persistency/timing_engine_test.cc.o"
  "CMakeFiles/timing_engine_test.dir/persistency/timing_engine_test.cc.o.d"
  "timing_engine_test"
  "timing_engine_test.pdb"
  "timing_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timing_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
