file(REMOVE_RECURSE
  "CMakeFiles/tso_property_test.dir/integration/tso_property_test.cc.o"
  "CMakeFiles/tso_property_test.dir/integration/tso_property_test.cc.o.d"
  "tso_property_test"
  "tso_property_test.pdb"
  "tso_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tso_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
