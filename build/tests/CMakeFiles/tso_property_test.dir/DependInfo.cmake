
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/tso_property_test.cc" "tests/CMakeFiles/tso_property_test.dir/integration/tso_property_test.cc.o" "gcc" "tests/CMakeFiles/tso_property_test.dir/integration/tso_property_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bench_util/CMakeFiles/persim_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/recovery/CMakeFiles/persim_recovery.dir/DependInfo.cmake"
  "/root/repo/build/src/nvram/CMakeFiles/persim_nvram.dir/DependInfo.cmake"
  "/root/repo/build/src/pstruct/CMakeFiles/persim_pstruct.dir/DependInfo.cmake"
  "/root/repo/build/src/queue/CMakeFiles/persim_queue.dir/DependInfo.cmake"
  "/root/repo/build/src/persistency/CMakeFiles/persim_persistency.dir/DependInfo.cmake"
  "/root/repo/build/src/sync/CMakeFiles/persim_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/pmem/CMakeFiles/persim_pmem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/persim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/memtrace/CMakeFiles/persim_memtrace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/persim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
