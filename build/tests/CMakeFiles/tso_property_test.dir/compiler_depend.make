# Empty compiler generated dependencies file for tso_property_test.
# This may be replaced when dependencies are built.
