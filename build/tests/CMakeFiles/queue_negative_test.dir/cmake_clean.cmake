file(REMOVE_RECURSE
  "CMakeFiles/queue_negative_test.dir/queue/queue_negative_test.cc.o"
  "CMakeFiles/queue_negative_test.dir/queue/queue_negative_test.cc.o.d"
  "queue_negative_test"
  "queue_negative_test.pdb"
  "queue_negative_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/queue_negative_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
