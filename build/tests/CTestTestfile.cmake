# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/memtrace_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/litmus_test[1]_include.cmake")
include("/root/repo/build/tests/granularity_test[1]_include.cmake")
include("/root/repo/build/tests/bpfs_test[1]_include.cmake")
include("/root/repo/build/tests/classify_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/sync_test[1]_include.cmake")
include("/root/repo/build/tests/pmem_test[1]_include.cmake")
include("/root/repo/build/tests/nvram_test[1]_include.cmake")
include("/root/repo/build/tests/recovery_test[1]_include.cmake")
include("/root/repo/build/tests/queue_test[1]_include.cmake")
include("/root/repo/build/tests/race_detector_test[1]_include.cmake")
include("/root/repo/build/tests/timing_engine_test[1]_include.cmake")
include("/root/repo/build/tests/bench_util_test[1]_include.cmake")
include("/root/repo/build/tests/queue_negative_test[1]_include.cmake")
include("/root/repo/build/tests/offline_online_test[1]_include.cmake")
include("/root/repo/build/tests/filter_test[1]_include.cmake")
include("/root/repo/build/tests/sweep_test[1]_include.cmake")
include("/root/repo/build/tests/producer_consumer_test[1]_include.cmake")
include("/root/repo/build/tests/tso_test[1]_include.cmake")
include("/root/repo/build/tests/hash_map_test[1]_include.cmake")
include("/root/repo/build/tests/log_test[1]_include.cmake")
include("/root/repo/build/tests/tso_recovery_test[1]_include.cmake")
include("/root/repo/build/tests/tso_property_test[1]_include.cmake")
include("/root/repo/build/tests/misc_semantics_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_test[1]_include.cmake")
