file(REMOVE_RECURSE
  "libpersim_common.a"
)
