file(REMOVE_RECURSE
  "CMakeFiles/persim_common.dir/error.cc.o"
  "CMakeFiles/persim_common.dir/error.cc.o.d"
  "CMakeFiles/persim_common.dir/log.cc.o"
  "CMakeFiles/persim_common.dir/log.cc.o.d"
  "CMakeFiles/persim_common.dir/rng.cc.o"
  "CMakeFiles/persim_common.dir/rng.cc.o.d"
  "CMakeFiles/persim_common.dir/stats.cc.o"
  "CMakeFiles/persim_common.dir/stats.cc.o.d"
  "libpersim_common.a"
  "libpersim_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/persim_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
