# Empty dependencies file for persim_common.
# This may be replaced when dependencies are built.
