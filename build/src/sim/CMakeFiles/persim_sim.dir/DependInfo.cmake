
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/address_allocator.cc" "src/sim/CMakeFiles/persim_sim.dir/address_allocator.cc.o" "gcc" "src/sim/CMakeFiles/persim_sim.dir/address_allocator.cc.o.d"
  "/root/repo/src/sim/engine.cc" "src/sim/CMakeFiles/persim_sim.dir/engine.cc.o" "gcc" "src/sim/CMakeFiles/persim_sim.dir/engine.cc.o.d"
  "/root/repo/src/sim/memory_image.cc" "src/sim/CMakeFiles/persim_sim.dir/memory_image.cc.o" "gcc" "src/sim/CMakeFiles/persim_sim.dir/memory_image.cc.o.d"
  "/root/repo/src/sim/scheduler.cc" "src/sim/CMakeFiles/persim_sim.dir/scheduler.cc.o" "gcc" "src/sim/CMakeFiles/persim_sim.dir/scheduler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/persim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/memtrace/CMakeFiles/persim_memtrace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
