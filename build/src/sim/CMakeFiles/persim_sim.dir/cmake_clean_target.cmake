file(REMOVE_RECURSE
  "libpersim_sim.a"
)
