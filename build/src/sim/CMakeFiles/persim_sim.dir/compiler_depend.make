# Empty compiler generated dependencies file for persim_sim.
# This may be replaced when dependencies are built.
