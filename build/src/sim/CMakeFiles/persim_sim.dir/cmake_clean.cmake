file(REMOVE_RECURSE
  "CMakeFiles/persim_sim.dir/address_allocator.cc.o"
  "CMakeFiles/persim_sim.dir/address_allocator.cc.o.d"
  "CMakeFiles/persim_sim.dir/engine.cc.o"
  "CMakeFiles/persim_sim.dir/engine.cc.o.d"
  "CMakeFiles/persim_sim.dir/memory_image.cc.o"
  "CMakeFiles/persim_sim.dir/memory_image.cc.o.d"
  "CMakeFiles/persim_sim.dir/scheduler.cc.o"
  "CMakeFiles/persim_sim.dir/scheduler.cc.o.d"
  "libpersim_sim.a"
  "libpersim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/persim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
