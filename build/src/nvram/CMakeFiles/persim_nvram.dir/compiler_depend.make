# Empty compiler generated dependencies file for persim_nvram.
# This may be replaced when dependencies are built.
