file(REMOVE_RECURSE
  "CMakeFiles/persim_nvram.dir/device.cc.o"
  "CMakeFiles/persim_nvram.dir/device.cc.o.d"
  "CMakeFiles/persim_nvram.dir/drain_sim.cc.o"
  "CMakeFiles/persim_nvram.dir/drain_sim.cc.o.d"
  "CMakeFiles/persim_nvram.dir/endurance.cc.o"
  "CMakeFiles/persim_nvram.dir/endurance.cc.o.d"
  "libpersim_nvram.a"
  "libpersim_nvram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/persim_nvram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
