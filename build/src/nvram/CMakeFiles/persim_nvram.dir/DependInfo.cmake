
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nvram/device.cc" "src/nvram/CMakeFiles/persim_nvram.dir/device.cc.o" "gcc" "src/nvram/CMakeFiles/persim_nvram.dir/device.cc.o.d"
  "/root/repo/src/nvram/drain_sim.cc" "src/nvram/CMakeFiles/persim_nvram.dir/drain_sim.cc.o" "gcc" "src/nvram/CMakeFiles/persim_nvram.dir/drain_sim.cc.o.d"
  "/root/repo/src/nvram/endurance.cc" "src/nvram/CMakeFiles/persim_nvram.dir/endurance.cc.o" "gcc" "src/nvram/CMakeFiles/persim_nvram.dir/endurance.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/persim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/memtrace/CMakeFiles/persim_memtrace.dir/DependInfo.cmake"
  "/root/repo/build/src/persistency/CMakeFiles/persim_persistency.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
