file(REMOVE_RECURSE
  "libpersim_nvram.a"
)
