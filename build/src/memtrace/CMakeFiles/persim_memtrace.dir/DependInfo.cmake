
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/memtrace/event.cc" "src/memtrace/CMakeFiles/persim_memtrace.dir/event.cc.o" "gcc" "src/memtrace/CMakeFiles/persim_memtrace.dir/event.cc.o.d"
  "/root/repo/src/memtrace/filter.cc" "src/memtrace/CMakeFiles/persim_memtrace.dir/filter.cc.o" "gcc" "src/memtrace/CMakeFiles/persim_memtrace.dir/filter.cc.o.d"
  "/root/repo/src/memtrace/sink.cc" "src/memtrace/CMakeFiles/persim_memtrace.dir/sink.cc.o" "gcc" "src/memtrace/CMakeFiles/persim_memtrace.dir/sink.cc.o.d"
  "/root/repo/src/memtrace/trace_io.cc" "src/memtrace/CMakeFiles/persim_memtrace.dir/trace_io.cc.o" "gcc" "src/memtrace/CMakeFiles/persim_memtrace.dir/trace_io.cc.o.d"
  "/root/repo/src/memtrace/trace_stats.cc" "src/memtrace/CMakeFiles/persim_memtrace.dir/trace_stats.cc.o" "gcc" "src/memtrace/CMakeFiles/persim_memtrace.dir/trace_stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/persim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
