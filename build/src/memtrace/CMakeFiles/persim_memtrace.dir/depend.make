# Empty dependencies file for persim_memtrace.
# This may be replaced when dependencies are built.
