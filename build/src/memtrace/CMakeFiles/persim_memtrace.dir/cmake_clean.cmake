file(REMOVE_RECURSE
  "CMakeFiles/persim_memtrace.dir/event.cc.o"
  "CMakeFiles/persim_memtrace.dir/event.cc.o.d"
  "CMakeFiles/persim_memtrace.dir/filter.cc.o"
  "CMakeFiles/persim_memtrace.dir/filter.cc.o.d"
  "CMakeFiles/persim_memtrace.dir/sink.cc.o"
  "CMakeFiles/persim_memtrace.dir/sink.cc.o.d"
  "CMakeFiles/persim_memtrace.dir/trace_io.cc.o"
  "CMakeFiles/persim_memtrace.dir/trace_io.cc.o.d"
  "CMakeFiles/persim_memtrace.dir/trace_stats.cc.o"
  "CMakeFiles/persim_memtrace.dir/trace_stats.cc.o.d"
  "libpersim_memtrace.a"
  "libpersim_memtrace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/persim_memtrace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
