file(REMOVE_RECURSE
  "libpersim_memtrace.a"
)
