# Empty dependencies file for persim_persistency.
# This may be replaced when dependencies are built.
