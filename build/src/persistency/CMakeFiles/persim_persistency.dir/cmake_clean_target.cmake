file(REMOVE_RECURSE
  "libpersim_persistency.a"
)
