
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/persistency/classify.cc" "src/persistency/CMakeFiles/persim_persistency.dir/classify.cc.o" "gcc" "src/persistency/CMakeFiles/persim_persistency.dir/classify.cc.o.d"
  "/root/repo/src/persistency/constraint_graph.cc" "src/persistency/CMakeFiles/persim_persistency.dir/constraint_graph.cc.o" "gcc" "src/persistency/CMakeFiles/persim_persistency.dir/constraint_graph.cc.o.d"
  "/root/repo/src/persistency/model.cc" "src/persistency/CMakeFiles/persim_persistency.dir/model.cc.o" "gcc" "src/persistency/CMakeFiles/persim_persistency.dir/model.cc.o.d"
  "/root/repo/src/persistency/sweep.cc" "src/persistency/CMakeFiles/persim_persistency.dir/sweep.cc.o" "gcc" "src/persistency/CMakeFiles/persim_persistency.dir/sweep.cc.o.d"
  "/root/repo/src/persistency/timing_engine.cc" "src/persistency/CMakeFiles/persim_persistency.dir/timing_engine.cc.o" "gcc" "src/persistency/CMakeFiles/persim_persistency.dir/timing_engine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/persim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/memtrace/CMakeFiles/persim_memtrace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
