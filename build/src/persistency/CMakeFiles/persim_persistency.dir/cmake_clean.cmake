file(REMOVE_RECURSE
  "CMakeFiles/persim_persistency.dir/classify.cc.o"
  "CMakeFiles/persim_persistency.dir/classify.cc.o.d"
  "CMakeFiles/persim_persistency.dir/constraint_graph.cc.o"
  "CMakeFiles/persim_persistency.dir/constraint_graph.cc.o.d"
  "CMakeFiles/persim_persistency.dir/model.cc.o"
  "CMakeFiles/persim_persistency.dir/model.cc.o.d"
  "CMakeFiles/persim_persistency.dir/sweep.cc.o"
  "CMakeFiles/persim_persistency.dir/sweep.cc.o.d"
  "CMakeFiles/persim_persistency.dir/timing_engine.cc.o"
  "CMakeFiles/persim_persistency.dir/timing_engine.cc.o.d"
  "libpersim_persistency.a"
  "libpersim_persistency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/persim_persistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
