file(REMOVE_RECURSE
  "CMakeFiles/persim_pstruct.dir/hash_map.cc.o"
  "CMakeFiles/persim_pstruct.dir/hash_map.cc.o.d"
  "CMakeFiles/persim_pstruct.dir/log.cc.o"
  "CMakeFiles/persim_pstruct.dir/log.cc.o.d"
  "libpersim_pstruct.a"
  "libpersim_pstruct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/persim_pstruct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
