file(REMOVE_RECURSE
  "libpersim_pstruct.a"
)
