# Empty compiler generated dependencies file for persim_pstruct.
# This may be replaced when dependencies are built.
