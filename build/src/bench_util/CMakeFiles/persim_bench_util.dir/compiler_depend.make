# Empty compiler generated dependencies file for persim_bench_util.
# This may be replaced when dependencies are built.
