file(REMOVE_RECURSE
  "libpersim_bench_util.a"
)
