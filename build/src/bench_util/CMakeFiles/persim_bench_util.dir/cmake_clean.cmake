file(REMOVE_RECURSE
  "CMakeFiles/persim_bench_util.dir/queue_workload.cc.o"
  "CMakeFiles/persim_bench_util.dir/queue_workload.cc.o.d"
  "CMakeFiles/persim_bench_util.dir/table.cc.o"
  "CMakeFiles/persim_bench_util.dir/table.cc.o.d"
  "CMakeFiles/persim_bench_util.dir/throughput.cc.o"
  "CMakeFiles/persim_bench_util.dir/throughput.cc.o.d"
  "libpersim_bench_util.a"
  "libpersim_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/persim_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
