file(REMOVE_RECURSE
  "libpersim_recovery.a"
)
