# Empty dependencies file for persim_recovery.
# This may be replaced when dependencies are built.
