file(REMOVE_RECURSE
  "CMakeFiles/persim_recovery.dir/recovery.cc.o"
  "CMakeFiles/persim_recovery.dir/recovery.cc.o.d"
  "libpersim_recovery.a"
  "libpersim_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/persim_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
