# Empty compiler generated dependencies file for persim_queue.
# This may be replaced when dependencies are built.
