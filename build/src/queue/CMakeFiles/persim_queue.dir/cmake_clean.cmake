file(REMOVE_RECURSE
  "CMakeFiles/persim_queue.dir/native_queue.cc.o"
  "CMakeFiles/persim_queue.dir/native_queue.cc.o.d"
  "CMakeFiles/persim_queue.dir/payload.cc.o"
  "CMakeFiles/persim_queue.dir/payload.cc.o.d"
  "CMakeFiles/persim_queue.dir/queue.cc.o"
  "CMakeFiles/persim_queue.dir/queue.cc.o.d"
  "libpersim_queue.a"
  "libpersim_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/persim_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
