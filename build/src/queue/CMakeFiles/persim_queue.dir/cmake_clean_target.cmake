file(REMOVE_RECURSE
  "libpersim_queue.a"
)
