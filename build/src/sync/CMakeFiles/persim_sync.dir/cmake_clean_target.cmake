file(REMOVE_RECURSE
  "libpersim_sync.a"
)
