# Empty compiler generated dependencies file for persim_sync.
# This may be replaced when dependencies are built.
