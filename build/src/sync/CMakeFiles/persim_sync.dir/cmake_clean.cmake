file(REMOVE_RECURSE
  "CMakeFiles/persim_sync.dir/locks.cc.o"
  "CMakeFiles/persim_sync.dir/locks.cc.o.d"
  "CMakeFiles/persim_sync.dir/native_locks.cc.o"
  "CMakeFiles/persim_sync.dir/native_locks.cc.o.d"
  "libpersim_sync.a"
  "libpersim_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/persim_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
