# Empty dependencies file for persim_pmem.
# This may be replaced when dependencies are built.
