file(REMOVE_RECURSE
  "CMakeFiles/persim_pmem.dir/pmem.cc.o"
  "CMakeFiles/persim_pmem.dir/pmem.cc.o.d"
  "libpersim_pmem.a"
  "libpersim_pmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/persim_pmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
