file(REMOVE_RECURSE
  "libpersim_pmem.a"
)
