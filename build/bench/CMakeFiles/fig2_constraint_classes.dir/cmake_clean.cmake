file(REMOVE_RECURSE
  "CMakeFiles/fig2_constraint_classes.dir/fig2_constraint_classes.cc.o"
  "CMakeFiles/fig2_constraint_classes.dir/fig2_constraint_classes.cc.o.d"
  "fig2_constraint_classes"
  "fig2_constraint_classes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_constraint_classes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
