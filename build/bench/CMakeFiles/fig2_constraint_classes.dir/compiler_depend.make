# Empty compiler generated dependencies file for fig2_constraint_classes.
# This may be replaced when dependencies are built.
