# Empty dependencies file for ablation_bpfs.
# This may be replaced when dependencies are built.
