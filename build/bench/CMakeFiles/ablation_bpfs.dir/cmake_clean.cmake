file(REMOVE_RECURSE
  "CMakeFiles/ablation_bpfs.dir/ablation_bpfs.cc.o"
  "CMakeFiles/ablation_bpfs.dir/ablation_bpfs.cc.o.d"
  "ablation_bpfs"
  "ablation_bpfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bpfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
