# Empty dependencies file for fig4_atomic_granularity.
# This may be replaced when dependencies are built.
