file(REMOVE_RECURSE
  "CMakeFiles/fig4_atomic_granularity.dir/fig4_atomic_granularity.cc.o"
  "CMakeFiles/fig4_atomic_granularity.dir/fig4_atomic_granularity.cc.o.d"
  "fig4_atomic_granularity"
  "fig4_atomic_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_atomic_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
