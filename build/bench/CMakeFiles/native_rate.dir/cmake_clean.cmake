file(REMOVE_RECURSE
  "CMakeFiles/native_rate.dir/native_rate.cc.o"
  "CMakeFiles/native_rate.dir/native_rate.cc.o.d"
  "native_rate"
  "native_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/native_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
