# Empty dependencies file for native_rate.
# This may be replaced when dependencies are built.
