file(REMOVE_RECURSE
  "CMakeFiles/endurance_wear.dir/endurance_wear.cc.o"
  "CMakeFiles/endurance_wear.dir/endurance_wear.cc.o.d"
  "endurance_wear"
  "endurance_wear.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/endurance_wear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
