# Empty compiler generated dependencies file for endurance_wear.
# This may be replaced when dependencies are built.
