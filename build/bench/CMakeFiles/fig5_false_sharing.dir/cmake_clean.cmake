file(REMOVE_RECURSE
  "CMakeFiles/fig5_false_sharing.dir/fig5_false_sharing.cc.o"
  "CMakeFiles/fig5_false_sharing.dir/fig5_false_sharing.cc.o.d"
  "fig5_false_sharing"
  "fig5_false_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_false_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
