# Empty dependencies file for fig1_litmus.
# This may be replaced when dependencies are built.
