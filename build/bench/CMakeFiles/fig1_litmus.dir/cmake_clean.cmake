file(REMOVE_RECURSE
  "CMakeFiles/fig1_litmus.dir/fig1_litmus.cc.o"
  "CMakeFiles/fig1_litmus.dir/fig1_litmus.cc.o.d"
  "fig1_litmus"
  "fig1_litmus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_litmus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
