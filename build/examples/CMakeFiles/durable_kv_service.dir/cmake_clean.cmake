file(REMOVE_RECURSE
  "CMakeFiles/durable_kv_service.dir/durable_kv_service.cpp.o"
  "CMakeFiles/durable_kv_service.dir/durable_kv_service.cpp.o.d"
  "durable_kv_service"
  "durable_kv_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/durable_kv_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
