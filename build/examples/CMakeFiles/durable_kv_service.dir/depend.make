# Empty dependencies file for durable_kv_service.
# This may be replaced when dependencies are built.
