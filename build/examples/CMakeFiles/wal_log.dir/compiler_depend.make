# Empty compiler generated dependencies file for wal_log.
# This may be replaced when dependencies are built.
