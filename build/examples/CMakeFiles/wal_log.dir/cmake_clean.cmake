file(REMOVE_RECURSE
  "CMakeFiles/wal_log.dir/wal_log.cpp.o"
  "CMakeFiles/wal_log.dir/wal_log.cpp.o.d"
  "wal_log"
  "wal_log.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wal_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
